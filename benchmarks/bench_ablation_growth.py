"""Ablation — Theorem 1's replica-growth response to saturation.

Section V: when every shuffling replica is attacked (M above the
`log_{1-1/P}(1/P)` threshold), estimation degenerates and no shuffle can
save anyone; "P must be increased".  This ablation pits a fixed
undersized pool against the adaptive-growth engine on the same saturated
attack.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.theory import max_estimable_bots
from repro.core.shuffler import ShuffleEngine
from repro.experiments.tables import render_table

BENIGN, BOTS, START_POOL = 1_000, 400, 8


def run_engine(adaptive: bool, seed: int):
    engine = ShuffleEngine(
        n_replicas=START_POOL,
        planner="greedy",
        rng=np.random.default_rng(seed),
        adaptive_growth=adaptive,
        max_replicas=4_096,
    )
    state = engine.run(
        benign=BENIGN, bots=BOTS, target_fraction=0.8, max_rounds=200
    )
    return engine, state


def test_ablation_theorem1_growth(benchmark, show):
    def sweep():
        return {
            label: run_engine(adaptive, seed=21)
            for label, adaptive in (("fixed", False), ("adaptive", True))
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(render_table(
        [
            {
                "policy": label,
                "final pool": engine.n_replicas,
                "rounds": len(state.rounds),
                "saved fraction": state.saved_fraction,
            }
            for label, (engine, state) in results.items()
        ],
        title=(
            "Ablation — Theorem 1 adaptive growth vs fixed pool "
            f"({BENIGN} benign, {BOTS} bots, starting pool {START_POOL}; "
            f"saturation threshold at P={START_POOL} is "
            f"~{max_estimable_bots(START_POOL):.0f} bots)"
        ),
    ))
    fixed_engine, fixed_state = results["fixed"]
    adaptive_engine, adaptive_state = results["adaptive"]
    # The start pool sits deep past the Theorem 1 saturation threshold.
    assert BOTS > max_estimable_bots(START_POOL)
    # The fixed pool crawls: greedy's singleton groups rescue a trickle
    # (Theorem 1's full saturation assumes a uniform spread), so progress
    # exists but is painfully slow.
    assert fixed_engine.n_replicas == START_POOL
    # Adaptive growth escapes saturation and reaches the same target in a
    # fraction of the rounds.
    assert adaptive_engine.n_replicas > START_POOL
    assert adaptive_state.saved_fraction >= 0.8
    assert len(adaptive_state.rounds) < 0.6 * len(fixed_state.rounds)
