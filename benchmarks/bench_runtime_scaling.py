"""Runtime scaling benchmark — the same grid serial vs 2 vs 4 workers.

Runs a fixed scenario grid through ``repro.runtime`` at 1, 2, and 4
workers, asserts the records are byte-identical across all three, and
writes machine-readable wall times to ``BENCH_runtime.json`` (override
the path with ``BENCH_RUNTIME_JSON``) for CI artifact upload.

Speedup is *reported*, not asserted: it depends on the host's core
count (a single-core runner shows ~1x with process overhead), while the
determinism contract must hold everywhere.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import full_fidelity
from repro.sim import ShuffleScenario
from repro.sim.sweep import sweep, to_csv

WORKER_COUNTS = (1, 2, 4)


def scaling_grid() -> list[ShuffleScenario]:
    bots_axis = (
        (20_000, 40_000, 60_000, 80_000, 100_000, 120_000)
        if full_fidelity()
        else (400, 800, 1_200, 1_600)
    )
    benign = 50_000 if full_fidelity() else 1_000
    replicas = 1_000 if full_fidelity() else 80
    return [
        ShuffleScenario(
            benign=benign,
            bots=bots,
            n_replicas=replicas,
            target_fraction=0.8,
            preload_bots=True,
            max_rounds=2_000,
        )
        for bots in bots_axis
    ]


def test_runtime_scaling(benchmark, show, repetitions):
    grid = scaling_grid()
    wall_times: dict[str, float] = {}
    csv_by_workers: dict[int, str] = {}
    for workers in WORKER_COUNTS:
        begun = time.perf_counter()
        records = sweep(
            grid, repetitions=repetitions, seed=0, workers=workers
        )
        wall_times[str(workers)] = time.perf_counter() - begun
        csv_by_workers[workers] = to_csv(records)

    # The determinism contract: every worker count, byte-identical CSV.
    assert csv_by_workers[2] == csv_by_workers[1]
    assert csv_by_workers[4] == csv_by_workers[1]

    # One serial pass through pytest-benchmark for its comparison table.
    benchmark.pedantic(
        sweep,
        kwargs={"scenarios": grid, "repetitions": repetitions, "seed": 0},
        rounds=1,
        iterations=1,
    )

    serial = wall_times["1"]
    payload = {
        "grid_cells": len(grid),
        "repetitions": repetitions,
        "full_fidelity": full_fidelity(),
        "host_cpu_count": os.cpu_count(),
        "wall_time_s": {
            workers: round(elapsed, 4)
            for workers, elapsed in wall_times.items()
        },
        "speedup_vs_serial": {
            workers: round(serial / elapsed, 3) if elapsed > 0 else None
            for workers, elapsed in wall_times.items()
        },
        "records_identical_across_worker_counts": True,
    }
    out_path = os.environ.get("BENCH_RUNTIME_JSON", "BENCH_runtime.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    show(
        "Runtime scaling — {cells} cells x {reps} repetitions "
        "(host cpus: {cpus})\n".format(
            cells=len(grid),
            reps=repetitions,
            cpus=os.cpu_count(),
        )
        + "\n".join(
            f"  workers={workers}: {wall_times[str(workers)]:.2f} s "
            f"({payload['speedup_vs_serial'][str(workers)]:.2f}x)"
            for workers in WORKER_COUNTS
        )
        + f"\n  written: {out_path}"
    )
