"""Benchmark-suite configuration.

Every benchmark regenerates one paper table/figure and prints the
paper-vs-measured rows.  By default the simulation grids are trimmed so the
whole suite finishes in a few minutes; set ``REPRO_FULL=1`` for the paper's
full grids and repetition counts (Figures 8-10 then take tens of minutes,
matching the original 30-repetition methodology).
"""

from __future__ import annotations

import os

import pytest


def full_fidelity() -> bool:
    """True when the user asked for the paper's full grids."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


@pytest.fixture
def repetitions() -> int:
    """Monte-Carlo repetitions per scenario (paper: 30)."""
    return 30 if full_fidelity() else 3


@pytest.fixture
def show(capsys):
    """Print a figure table to the real terminal from inside a test."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _show
