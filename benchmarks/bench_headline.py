"""Headline benchmark — the abstract's end-to-end claim.

"We can successfully mitigate large-scale DDoS attacks in a small number
of shuffles": 100K persistent bots, 50K benign clients, 1000 shuffling
replicas, 80% saved in ~60 shuffles.
"""

from __future__ import annotations

from repro.experiments.headline import render_headline, run_headline


def test_headline_claim(benchmark, show, repetitions):
    result = benchmark.pedantic(
        run_headline,
        kwargs={"repetitions": repetitions},
        rounds=1,
        iterations=1,
    )
    show(render_headline(result))
    assert result.within_2x_of_paper
    assert result.result.saved_fraction.mean >= 0.8
