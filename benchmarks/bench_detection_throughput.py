"""Detection-path benchmark — sketch vs exact accounting at scale.

Two claims carried by :mod:`repro.detect` are measured here and written
to ``BENCH_detection.json`` (override with ``BENCH_DETECTION_JSON``):

1. **O(1) state** — the sketch detector's memory is flat from 10^3 to
   10^6 distinct clients, while exact accounting (the per-event deque of
   :class:`repro.service.tokens.SaturationMonitor` plus a per-client
   counter dict) grows with both request rate and population.
2. **Throughput** — the vectorized sketch ingestion sustains at least
   5x the exact path's requests/second at 10^6 clients.  Key digests
   are computed once per request at admission (outside the timed
   region, reported separately): per-request detection cost is then
   pure counter arithmetic, batched over whatever the socket drained.

A third test pins behaviour rather than speed: the acceptance-scale
live scenario (200 benign + 20 bots) reaches the same quarantine with
the sketch-backed saturation monitor as with the exact one — same
shuffle count, benign clean fraction >= 0.95 — so the fixed-memory
detector is a verdict-preserving drop-in, not a different defense.

Wall-clock rates are host-dependent; the asserted bounds (flat bytes,
5x ratio) are deliberately coarse so they hold on any CI host.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from benchmarks.conftest import full_fidelity
from repro.detect import SketchParams, SketchWindow, key_digest
from repro.service import (
    LoadConfig,
    ServiceConfig,
    run_scenario_sync,
)
from repro.service.tokens import SaturationMonitor

CLIENT_COUNTS = (1_000, 100_000, 1_000_000)
WINDOW = 0.5
BATCH = 32_768


def out_path() -> str:
    return os.environ.get("BENCH_DETECTION_JSON", "BENCH_detection.json")


def _write_payload(section: str, data) -> None:
    """Merge one section into the shared JSON artifact.

    pytest runs the tests in this file sequentially, so a read-merge-
    write per test is race-free.
    """
    path = out_path()
    payload = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[section] = data
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _make_stream(n_clients: int, n_events: int, rng: np.random.Generator):
    """A saturation-shaped request stream: 20 bots own half the mass,
    the rest spreads uniformly over ``n_clients`` benign ids."""
    n_bots = 20
    is_bot = rng.random(n_events) < 0.5
    idx = np.where(
        is_bot,
        rng.integers(0, n_bots, n_events),
        n_bots + rng.integers(0, n_clients, n_events),
    )
    keys = [
        f"bot-{i:03d}" if i < n_bots else f"c-{i - n_bots}"
        for i in idx
    ]
    throttled = rng.random(n_events) < 0.4
    return keys, throttled


def _exact_pass(keys, throttled) -> tuple[float, int]:
    """The status quo: per-event monitor deque + per-client dict."""
    monitor = SaturationMonitor(WINDOW, 0.3, 20)
    counts: dict[str, int] = {}
    start = time.perf_counter()
    for key, thr in zip(keys, throttled):
        monitor.record(not thr)
        counts[key] = counts.get(key, 0) + 1
    elapsed = time.perf_counter() - start
    # Deque entries are (float, bool) tuples; the dict carries every
    # distinct key.  Both are rate/population-proportional.
    window_events, _ = monitor.counts()
    deque_bytes = sys.getsizeof(monitor._events) + window_events * (
        sys.getsizeof((0.0, False)) + sys.getsizeof(0.0)
    )
    dict_bytes = sys.getsizeof(counts) + sum(
        sys.getsizeof(k) + 28 for k in counts
    )
    return elapsed, deque_bytes + dict_bytes


def _sketch_pass(digests, keys, throttled) -> tuple[float, int]:
    """The new path: batched folds into the fixed-memory window."""
    window = SketchWindow(WINDOW, SketchParams(), epochs=4)
    start = time.perf_counter()
    for lo in range(0, len(digests), BATCH):
        hi = min(lo + BATCH, len(digests))
        window.record_batch(
            time.monotonic(),
            digests[lo:hi],
            throttled=int(throttled[lo:hi].sum()),
            keys=keys[lo:hi],
        )
    elapsed = time.perf_counter() - start
    return elapsed, window.state_bytes()


def _sweep(n_events: int) -> list[dict]:
    rows = []
    for n_clients in CLIENT_COUNTS:
        rng = np.random.default_rng(42 + n_clients)
        keys, throttled = _make_stream(n_clients, n_events, rng)
        digest_start = time.perf_counter()
        digests = np.array(
            [key_digest(k) for k in keys], dtype=np.uint64
        )
        digest_s = time.perf_counter() - digest_start
        exact_s, exact_bytes = _exact_pass(keys, throttled)
        sketch_s, sketch_bytes = _sketch_pass(digests, keys, throttled)
        rows.append({
            "clients": n_clients,
            "events": n_events,
            "exact_rps": round(n_events / exact_s),
            "sketch_rps": round(n_events / sketch_s),
            "speedup": round(exact_s / sketch_s, 2),
            "exact_state_bytes": exact_bytes,
            "sketch_state_bytes": sketch_bytes,
            "digest_precompute_s": round(digest_s, 3),
        })
    return rows


def test_detection_throughput(benchmark, show):
    n_events = 1_000_000 if full_fidelity() else 200_000
    rows = benchmark.pedantic(
        _sweep, args=(n_events,), rounds=1, iterations=1
    )

    # O(1) state: byte-flat across three orders of magnitude of
    # population (identical parameters => identical footprint).
    sketch_sizes = [r["sketch_state_bytes"] for r in rows]
    assert max(sketch_sizes) <= min(sketch_sizes) * 1.1
    # ...while exact accounting grows with the population.
    assert rows[-1]["exact_state_bytes"] > rows[0]["exact_state_bytes"]
    # >= 5x requests/s over exact at N = 10^6.
    assert rows[-1]["speedup"] >= 5.0

    _write_payload("detector", {
        "full_fidelity": full_fidelity(),
        "host_cpu_count": os.cpu_count(),
        "window_s": WINDOW,
        "batch": BATCH,
        "params": {
            "epsilon": SketchParams().epsilon,
            "delta": SketchParams().delta,
            "top_k": SketchParams().top_k,
        },
        "rows": rows,
    })

    lines = [
        "Detection path — sketch vs exact ({n} events/stream)".format(
            n=n_events
        ),
        "  {:>9} {:>12} {:>12} {:>8} {:>12} {:>12}".format(
            "clients", "exact req/s", "sketch req/s", "speedup",
            "exact bytes", "sketch bytes",
        ),
    ]
    for r in rows:
        lines.append(
            "  {clients:>9,} {exact_rps:>12,} {sketch_rps:>12,} "
            "{speedup:>7.1f}x {exact_state_bytes:>12,} "
            "{sketch_state_bytes:>12,}".format(**r)
        )
    lines.append("  written: " + out_path())
    show("\n".join(lines))


def _scenario(detector: str):
    service_config = ServiceConfig(
        n_replicas=10, seed=7, telemetry_port=None, detector=detector
    )
    load_config = LoadConfig(n_benign=200, n_bots=20, seed=11)
    return run_scenario_sync(
        service_config, load_config,
        duration=120.0, target_fraction=0.95,
    )


def test_sketch_monitor_verdict_equivalence(benchmark, show):
    """The sketch monitor reproduces the exact monitor's defense run.

    Acceptance scenario, both detector modes: same quarantine, same
    shuffle count, benign clean fraction >= 0.95 in both.
    """
    exact = _scenario("exact")
    sketch = benchmark.pedantic(
        _scenario, args=("sketch",), rounds=1, iterations=1
    )

    assert exact.quarantined and sketch.quarantined
    assert exact.shuffles_completed == sketch.shuffles_completed
    assert exact.benign_clean_fraction >= 0.95
    assert sketch.benign_clean_fraction >= 0.95

    _write_payload("scenario_equivalence", {
        "n_benign": 200,
        "n_bots": 20,
        "n_replicas": 10,
        "exact": {
            "shuffles": exact.shuffles_completed,
            "clean_fraction": round(exact.benign_clean_fraction, 4),
            "duration_s": round(exact.duration, 2),
        },
        "sketch": {
            "shuffles": sketch.shuffles_completed,
            "clean_fraction": round(sketch.benign_clean_fraction, 4),
            "duration_s": round(sketch.duration, 2),
            "suspected_bots": len(
                sketch.snapshot.get("suspected_bots", [])
            ),
        },
    })

    show(
        "Verdict equivalence — 200 benign + 20 bots on 10 replicas\n"
        "  exact:  {es} shuffles, clean {ec:.3f}\n"
        "  sketch: {ss} shuffles, clean {sc:.3f} "
        "({susp} suspects named)".format(
            es=exact.shuffles_completed,
            ec=exact.benign_clean_fraction,
            ss=sketch.shuffles_completed,
            sc=sketch.benign_clean_fraction,
            susp=len(sketch.snapshot.get("suspected_bots", [])),
        )
    )
