"""Trust-layer benchmark — profile update kernel and storage backends.

Two claims carried by :mod:`repro.trust` are measured here and written
to ``BENCH_trust.json`` (override with ``BENCH_TRUST_JSON``):

1. **Batched updates amortize** — the vectorized
   :meth:`~repro.trust.ProfileTable.observe_batch` kernel sustains a
   multiple of the scalar :meth:`~repro.trust.ProfileTable.observe`
   path's per-request throughput, because the scalar path *is* the
   batch kernel on a one-row view and pays the full numpy dispatch
   cost per request.
2. **Backends are interchangeable at service rates** — memory, sqlite
   and the atomic JSON file all sustain the coordinator's persistence
   pattern (batched ``put_many`` once a sweep, full ``items`` scan on
   restart) far above the detection loop's write rate, so enabling
   durability is a policy choice, not a throughput trade.

Wall-clock rates are host-dependent; the asserted bounds are
deliberately coarse so they hold on any CI host.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import full_fidelity
from repro.trust import (
    JsonFileBackend,
    MemoryBackend,
    ProfileTable,
    SqliteBackend,
    TrustConfig,
    TrustManager,
)


def out_path() -> str:
    return os.environ.get("BENCH_TRUST_JSON", "BENCH_trust.json")


def _write_payload(section: str, data) -> None:
    """Merge one section into the shared JSON artifact.

    pytest runs the tests in this file sequentially, so a read-merge-
    write per test is race-free.
    """
    path = out_path()
    payload = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[section] = data
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# profile update kernel: scalar vs batched
# ----------------------------------------------------------------------

def _scalar_pass(n_clients: int, n_rounds: int) -> float:
    table = ProfileTable(TrustConfig(seed=1))
    ids = [f"c-{i}" for i in range(n_clients)]
    for cid in ids:
        table.ensure(cid, now=0.0)
    start = time.perf_counter()
    for rnd in range(1, n_rounds + 1):
        now = rnd * 0.05
        for cid in ids:
            table.observe(cid, now, violation=False)
    return time.perf_counter() - start


def _batch_pass(n_clients: int, n_rounds: int) -> float:
    table = ProfileTable(TrustConfig(seed=1))
    ids = [f"c-{i}" for i in range(n_clients)]
    for cid in ids:
        table.ensure(cid, now=0.0)
    flags = [False] * n_clients
    start = time.perf_counter()
    for rnd in range(1, n_rounds + 1):
        table.observe_batch(rnd * 0.05, ids, flags)
    return time.perf_counter() - start


def _profile_sweep():
    n_clients = 2_000 if full_fidelity() else 500
    n_rounds = 50 if full_fidelity() else 20
    updates = n_clients * n_rounds
    scalar_s = _scalar_pass(n_clients, n_rounds)
    batch_s = _batch_pass(n_clients, n_rounds)
    return {
        "n_clients": n_clients,
        "n_rounds": n_rounds,
        "updates": updates,
        "scalar_updates_per_s": updates / scalar_s,
        "batch_updates_per_s": updates / batch_s,
        "batch_speedup": scalar_s / batch_s,
    }


def test_profile_update_throughput(benchmark, show):
    row = benchmark.pedantic(_profile_sweep, rounds=1, iterations=1)

    # The batch kernel must actually amortize the numpy dispatch: a
    # conservative 3x floor holds on any host (typically 20-100x).
    assert row["batch_speedup"] >= 3.0

    _write_payload("profiles", {
        "full_fidelity": full_fidelity(),
        "host_cpu_count": os.cpu_count(),
        **row,
    })
    show(
        "trust profile updates/s: "
        f"scalar {row['scalar_updates_per_s']:,.0f}, "
        f"batched {row['batch_updates_per_s']:,.0f} "
        f"({row['batch_speedup']:.1f}x)"
    )


# ----------------------------------------------------------------------
# storage backends: the coordinator's persistence pattern
# ----------------------------------------------------------------------

def _backend_pass(backend, n_profiles: int, n_sweeps: int):
    """One coordinator lifetime: per-sweep batched writes, then the
    restart-path full scan."""
    manager = TrustManager(TrustConfig(seed=1), storage=backend)
    ids = [f"c-{i}" for i in range(n_profiles)]
    flags = [False] * n_profiles

    start = time.perf_counter()
    for sweep in range(1, n_sweeps + 1):
        manager.observe_batch(sweep * 0.05, ids, flags)
        manager.persist()
        backend.put("state", "belief", {"sweep": sweep})
        backend.flush()
    write_s = time.perf_counter() - start

    start = time.perf_counter()
    restored = TrustManager(TrustConfig(seed=1), storage=backend)
    count = restored.restore()
    read_s = time.perf_counter() - start
    assert count == n_profiles

    start = time.perf_counter()
    for cid in ids:
        backend.get("profiles", cid)
    get_s = time.perf_counter() - start

    rows_written = n_profiles * n_sweeps
    return {
        "persisted_rows_per_s": rows_written / write_s,
        "sweeps_per_s": n_sweeps / write_s,
        "restore_rows_per_s": n_profiles / read_s,
        "point_gets_per_s": n_profiles / get_s,
    }


def _backend_sweep(tmp_dir: str):
    n_profiles = 1_000 if full_fidelity() else 250
    n_sweeps = 40 if full_fidelity() else 15
    backends = {
        "memory": MemoryBackend(),
        "sqlite": SqliteBackend(os.path.join(tmp_dir, "bench.db")),
        "file": JsonFileBackend(os.path.join(tmp_dir, "bench.json")),
    }
    rows = {}
    for name, backend in backends.items():
        rows[name] = {
            "n_profiles": n_profiles,
            "n_sweeps": n_sweeps,
            **_backend_pass(backend, n_profiles, n_sweeps),
        }
        backend.close()
    return rows


def test_storage_backend_throughput(benchmark, show, tmp_path):
    rows = benchmark.pedantic(
        _backend_sweep, args=(str(tmp_path),), rounds=1, iterations=1
    )

    # Every backend must clear the detection loop's write rate (one
    # batched persist per 100 ms sweep = 10/s) with headroom.  The
    # JSON file backend rewrites its whole document per flush, so its
    # margin is structurally the thinnest of the three.
    for name, row in rows.items():
        assert row["sweeps_per_s"] >= 30.0, (name, row)

    _write_payload("backends", {
        "full_fidelity": full_fidelity(),
        "host_cpu_count": os.cpu_count(),
        "rows": rows,
    })
    lines = [
        f"{name}: {row['persisted_rows_per_s']:,.0f} rows/s persisted, "
        f"{row['restore_rows_per_s']:,.0f} rows/s restored, "
        f"{row['point_gets_per_s']:,.0f} gets/s"
        for name, row in rows.items()
    ]
    show("trust storage backends:\n  " + "\n  ".join(lines))
