"""Ablation — shuffling vs. pure server expansion (the intro's claim).

"The proposed shuffling-based moving target mechanism enables effective
attack containment using fewer resources than attack dilution strategies
using pure server expansion."

We solve the expansion baseline exactly (replicas needed so the even
spread protects the same benign fraction), price both strategies with the
same cost model, and assert the resource gap at the paper's headline
scale.
"""

from __future__ import annotations

from repro.analysis.cost import compare_costs
from repro.core.expansion import ExpansionPlan
from repro.experiments.tables import render_table


def test_ablation_shuffling_vs_expansion(benchmark, show):
    def solve():
        rows = []
        for benign, bots, shuffles in (
            (10_000, 20_000, 40),
            (50_000, 100_000, 67),
        ):
            shuffling, expansion = compare_costs(
                benign=benign,
                bots=bots,
                target_fraction=0.8,
                shuffles_needed=shuffles,
                n_replicas=1000,
            )
            rows.append((benign, bots, shuffling, expansion))
        return rows

    rows = benchmark.pedantic(solve, rounds=1, iterations=1)
    show(render_table(
        [
            {
                "benign": benign,
                "bots": bots,
                "strategy": cost.strategy,
                "peak instances": cost.peak_instances,
                "instance-hours": cost.instance_hours,
                "launches": cost.launches,
                "dollars": cost.dollars,
            }
            for benign, bots, shuffling, expansion in rows
            for cost in (shuffling, expansion)
        ],
        title=(
            "Ablation — shuffling vs pure expansion at the same 80% "
            "protection target (paper intro claim)"
        ),
    ))
    for _, bots, shuffling, expansion in rows:
        assert expansion.peak_instances > 10 * shuffling.peak_instances
        assert expansion.instance_hours > 10 * shuffling.instance_hours
        assert expansion.dollars > shuffling.dollars


def test_expansion_replica_requirement_kernel(benchmark):
    """Cost of solving the expansion sizing problem itself."""
    plan = benchmark(
        ExpansionPlan.solve, 150_000, 100_000, 0.8
    )
    assert plan.replicas_needed > 100_000
