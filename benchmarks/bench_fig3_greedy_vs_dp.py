"""Figure 3 benchmark — greedy vs optimal DP, one shuffle, 1000 clients.

Regenerates every (P, M) cell of the paper's Figure 3 and asserts its
claim: the greedy curves and the optimal curves overlap (worst gap below
one percentage point of the benign population).
"""

from __future__ import annotations

from repro.experiments.fig3 import render_fig3, run_fig3


def test_fig3_greedy_vs_dp(benchmark, show):
    rows = benchmark(run_fig3)
    show(render_fig3(rows))
    # Paper claim: "the curves denoting respective algorithms almost
    # overlap in all cases".
    worst_gap = max(row.gap for row in rows)
    assert worst_gap <= 0.01
    # Sanity: both axes behave (more replicas help, more bots hurt).
    by_cell = {(r.n_replicas, r.n_bots): r.optimal_saved for r in rows}
    assert by_cell[(200, 50)] > by_cell[(50, 50)]
    assert by_cell[(100, 50)] > by_cell[(100, 500)]
