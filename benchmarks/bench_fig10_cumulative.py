"""Figure 10 benchmark — cumulative saved fraction vs shuffle count.

Asserts the figure's diminishing-returns shape: early shuffles save far
more benign clients than later ones (each successive saved-fraction
checkpoint costs more shuffles than the previous), for both benign
populations.
"""

from __future__ import annotations

from repro.experiments.fig10 import render_fig10, run_fig10


def test_fig10_cumulative_saving(benchmark, show, repetitions):
    curves = benchmark.pedantic(
        run_fig10,
        kwargs={"repetitions": repetitions},
        rounds=1,
        iterations=1,
    )
    show(render_fig10(curves))
    assert len(curves) == 2
    for curve in curves:
        means = [summary.mean for summary in curve.shuffles]
        # Reaching a higher fraction always needs at least as many shuffles.
        assert means == sorted(means)
        marginal = curve.marginal_costs()
        # Diminishing returns: the final 95% step costs more shuffles than
        # the first 10-20% step (the paper's "early shuffles separate more
        # benign clients" observation).
        assert marginal[-1] > marginal[0]
        # And the gap is large: the last decile costs >= 3x the first.
        assert marginal[-1] >= 3 * max(marginal[0], 0.34)
