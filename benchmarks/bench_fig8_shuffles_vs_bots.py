"""Figure 8 benchmark — shuffles to save 80%/95% of benign vs bot count.

Default run uses a trimmed bot-count axis with 3 repetitions; set
``REPRO_FULL=1`` for the paper's full 10-point axis with 30 repetitions.
Asserts the figure's three claims: slow growth in the bot population
(10x bots < 3x shuffles), more benign clients cost more shuffles, and the
95% target costs substantially more than 80%.
"""

from __future__ import annotations

from benchmarks.conftest import full_fidelity
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.sim.scenarios import FIG8_BOT_COUNTS


def test_fig8_shuffles_vs_bots(benchmark, show, repetitions):
    bot_counts = (
        FIG8_BOT_COUNTS if full_fidelity()
        else (10_000, 30_000, 100_000)
    )
    rows = benchmark.pedantic(
        run_fig8,
        kwargs={"bot_counts": bot_counts, "repetitions": repetitions},
        rounds=1,
        iterations=1,
    )
    show(render_fig8(rows))
    by_key = {
        (r.benign, r.target, r.bots): r.shuffles.mean for r in rows
    }
    hi_bots = bot_counts[-1]
    for benign in (10_000, 50_000):
        for target in (0.8, 0.95):
            series = [
                by_key[(benign, target, bots)] for bots in bot_counts
            ]
            # Shuffle count rises with the bot population...
            assert series[-1] >= series[0]
            # ...but sublinearly.  The paper's "10x bots < 3x shuffles"
            # worst-case bound reproduces at the 80% target; for the 95%
            # target our reproduction's worst case is ~3.4x (recorded in
            # EXPERIMENTS.md), so the strict bound is asserted where it
            # reproduces and a loose still-sublinear bound elsewhere.
            limit = 3.0 if target == 0.8 else 4.0
            assert series[-1] < limit * series[0]
        # 95% is substantially costlier than 80% at the heavy end.
        assert (
            by_key[(benign, 0.95, hi_bots)]
            > 1.4 * by_key[(benign, 0.8, hi_bots)]
        )
    # More benign clients -> more shuffles (same bots, same target).
    assert (
        by_key[(50_000, 0.8, hi_bots)] > by_key[(10_000, 0.8, hi_bots)]
    )
    # The abstract's headline cell: ~60 shuffles (2x shape tolerance).
    headline = by_key[(50_000, 0.8, hi_bots)]
    assert 30 <= headline <= 120
