"""Figure 6 benchmark — running time of the greedy algorithm.

The paper reports 1-4 ms per plan at N = 1000 in Matlab; the claim that
matters is that the greedy planner is fast enough to drive *live* shuffling
decisions.  The benchmark times the planner at the paper's scale and at the
simulation scale (150K clients) and asserts the millisecond regime.
"""

from __future__ import annotations

from repro.core.greedy import greedy_sizes
from repro.experiments.fig6 import render_fig6, run_fig6


def test_fig6_greedy_runtime_paper_scale(benchmark, show):
    benchmark(greedy_sizes, 1000, 300, 200)
    show(render_fig6(run_fig6(repeats=3)))
    stats = benchmark.stats["mean"]
    assert stats < 0.05  # well inside interactive territory


def test_fig6_greedy_runtime_headline_scale(benchmark):
    """Even at the Figure 8 population (150K clients) a plan is fast."""
    sizes = benchmark(greedy_sizes, 150_000, 100_000, 1000)
    assert sum(sizes) == 150_000
    assert benchmark.stats["mean"] < 1.0
