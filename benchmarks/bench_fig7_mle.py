"""Figure 7 benchmark — MLE attack-scale estimation accuracy.

Regenerates the paper's Figure 7 (10,000 clients, 100 shuffling replicas,
real bot counts up to 350, repeated runs with 99% CIs) and asserts both of
its regimes: accurate estimates while bot-free replicas remain, and the
blow-up to the upper bound once (nearly) every replica is attacked.
"""

from __future__ import annotations

from repro.experiments.fig7 import render_fig7, run_fig7


def test_fig7_mle_accuracy(benchmark, show, repetitions):
    repeats = max(10, repetitions * 4)  # cheap enough to run many
    rows = benchmark.pedantic(
        run_fig7, kwargs={"repeats": repeats}, rounds=1, iterations=1
    )
    show(render_fig7(rows))
    for row in rows:
        if row.attacked_fraction.mean < 0.9:
            # Informative regime: the estimate tracks the truth.
            assert abs(row.relative_error) < 0.35
        if row.attacked_fraction.mean > 0.99:
            # Saturated regime (paper's right edge): gross overestimation.
            assert row.estimate.mean > 1.5 * row.real_bots
    # The attacked fraction rises monotonically with the real bot count.
    fractions = [row.attacked_fraction.mean for row in rows]
    assert all(b >= a - 0.02 for a, b in zip(fractions, fractions[1:]))
