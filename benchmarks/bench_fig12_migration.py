"""Figure 12 benchmark — client migration time between two replicas.

Regenerates the prototype measurement (10..60 concurrent clients, 246 KB
page, 15 repetitions, 95% CIs) on the calibrated emulation and asserts the
paper's reported envelope: all 60 clients migrate in under 5 seconds, the
per-client mean stays in the 1-2.5 s band, and the total grows much faster
with the client count than the mean (serialized single-threaded pushes).
"""

from __future__ import annotations

from repro.cloudsim.migration import MigrationModel
from repro.experiments.fig12 import render_fig12, run_fig12


def test_fig12_migration_time(benchmark, show):
    rows = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    show(render_fig12(rows))
    totals = [row.total_time.mean for row in rows]
    per_client = [row.per_client.mean for row in rows]
    # Both curves rise with the client count.
    assert totals == sorted(totals)
    assert all(b >= a - 0.05 for a, b in zip(per_client, per_client[1:]))
    # Paper's envelope at 60 clients.
    assert totals[-1] < 5.0
    assert 1.0 <= per_client[-1] <= 2.5
    # The total grows faster than the mean (serialization effect).
    total_growth = totals[-1] / totals[0]
    mean_growth = per_client[-1] / per_client[0]
    assert total_growth > mean_growth


def test_fig12_single_migration_kernel(benchmark, rng_seed=0):
    """Raw cost of simulating one 60-client migration."""
    import numpy as np

    model = MigrationModel()
    rng = np.random.default_rng(rng_seed)
    benchmark(model.simulate_once, 60, rng)
