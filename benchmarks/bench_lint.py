"""reprolint whole-tree latency benchmark.

The static-analysis gate only stays in the default developer loop (and
in CI on every push) while a full ``--project`` run over ``src/repro``
is interactive-fast.  This benchmark times the complete 18-rule run —
all file rules plus the P1-P10 whole-program passes, which parse every
module, build the import and call graphs, and run five concurrency
dataflow analyses — and fails if the min-of-repeats wall time crosses
``TIME_LIMIT_S``.

Writes ``BENCH_lint.json`` (override with ``BENCH_LINT_JSON``) for CI
artifact upload.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.devtools import lint_project

TIME_LIMIT_S = 30.0
REPEATS = 3

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def test_whole_tree_project_lint_is_interactive(benchmark, show):
    report = lint_project([SRC])  # warm-up: imports, bytecode caches
    assert report.ok, "benchmark expects a clean tree"

    samples = []
    for _ in range(REPEATS):
        begun = time.perf_counter()
        report = lint_project([SRC])
        samples.append(time.perf_counter() - begun)
    best = min(samples)

    # One extra pass through pytest-benchmark for its table.
    benchmark.pedantic(
        lint_project, args=([SRC],), rounds=1, iterations=1
    )

    rule_count = len(report.rules) + len(report.project_rules)
    assert rule_count == 18
    assert best <= TIME_LIMIT_S, (
        f"whole-tree lint took {best:.2f} s "
        f"(limit {TIME_LIMIT_S} s) — the gate is no longer interactive"
    )

    payload = {
        "files_checked": report.files_checked,
        "rules_active": rule_count,
        "repeats": REPEATS,
        "wall_time_s": {
            "best": round(best, 4),
            "samples": [round(s, 4) for s in samples],
        },
        "limit_s": TIME_LIMIT_S,
    }
    out_path = os.environ.get("BENCH_LINT_JSON", "BENCH_lint.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    show(
        "reprolint whole-tree latency "
        f"(min of {REPEATS})\n"
        f"  files:  {report.files_checked}\n"
        f"  rules:  {rule_count}\n"
        f"  best:   {best:.2f} s (limit {TIME_LIMIT_S:.0f} s)\n"
        f"  written: {out_path}"
    )
