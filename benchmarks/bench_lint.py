"""reprolint whole-tree latency benchmark.

The static-analysis gate only stays in the default developer loop (and
in CI on every push) while a full ``--project`` run over ``src/repro``
is interactive-fast.  This benchmark times the complete 22-rule run —
all file rules plus the P1-P14 whole-program passes, which parse every
module, build the import, call-graph, concurrency, and numeric-domain
indices — and fails if the min-of-repeats wall time crosses
``TIME_LIMIT_S``.  The per-stage timing breakdown (index builds vs.
each P-pass) from the fastest run is written alongside the totals.

Writes ``BENCH_lint.json`` (override with ``BENCH_LINT_JSON``) for CI
artifact upload.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.devtools import lint_project

TIME_LIMIT_S = 30.0
REPEATS = 3

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
P14_BASELINE = REPO_ROOT / ".reprolint-p14-baseline.json"


def test_whole_tree_project_lint_is_interactive(benchmark, show):
    # warm-up: imports, bytecode caches
    report = lint_project([SRC], baseline_path=P14_BASELINE)
    assert report.ok, "benchmark expects a clean tree"

    samples = []
    best_timings: dict[str, float] = {}
    best = float("inf")
    for _ in range(REPEATS):
        begun = time.perf_counter()
        report = lint_project([SRC], baseline_path=P14_BASELINE)
        elapsed = time.perf_counter() - begun
        samples.append(elapsed)
        if elapsed < best:
            best = elapsed
            best_timings = dict(report.timings)

    # One extra pass through pytest-benchmark for its table.
    benchmark.pedantic(
        lint_project,
        args=([SRC],),
        kwargs={"baseline_path": P14_BASELINE},
        rounds=1,
        iterations=1,
    )

    rule_count = len(report.rules) + len(report.project_rules)
    assert rule_count == 22
    assert best <= TIME_LIMIT_S, (
        f"whole-tree lint took {best:.2f} s "
        f"(limit {TIME_LIMIT_S} s) — the gate is no longer interactive"
    )
    # The breakdown must cover both shared indices and every P-pass.
    assert "program_index" in best_timings
    assert "numeric_index" in best_timings
    pass_keys = [k for k in best_timings if k.startswith("pass_")]
    assert len(pass_keys) == len(report.project_rules)

    payload = {
        "files_checked": report.files_checked,
        "rules_active": rule_count,
        "repeats": REPEATS,
        "wall_time_s": {
            "best": round(best, 4),
            "samples": [round(s, 4) for s in samples],
        },
        "stage_breakdown_s": {
            key: round(value, 4)
            for key, value in sorted(best_timings.items())
        },
        "limit_s": TIME_LIMIT_S,
    }
    out_path = os.environ.get("BENCH_LINT_JSON", "BENCH_lint.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    slowest = sorted(
        (k for k in best_timings if k.startswith("pass_")),
        key=lambda k: -best_timings[k],
    )[:3]
    show(
        "reprolint whole-tree latency "
        f"(min of {REPEATS})\n"
        f"  files:  {report.files_checked}\n"
        f"  rules:  {rule_count}\n"
        f"  best:   {best:.2f} s (limit {TIME_LIMIT_S:.0f} s)\n"
        f"  index:  program {best_timings['program_index']:.2f} s, "
        f"numeric {best_timings['numeric_index']:.2f} s\n"
        + "".join(
            f"  {key}: {best_timings[key]:.2f} s\n" for key in slowest
        )
        + f"  written: {out_path}"
    )
