"""Figure 9 benchmark — shuffles vs number of shuffling replicas.

Default run sweeps four replica counts with 3 repetitions; ``REPRO_FULL=1``
runs the paper's 900..2000 grid with 30 repetitions.  Asserts the figure's
claim: the shuffle count drops steadily as replicas are added.
"""

from __future__ import annotations

from benchmarks.conftest import full_fidelity
from repro.experiments.fig9 import render_fig9, run_fig9
from repro.sim.scenarios import FIG9_REPLICA_COUNTS


def test_fig9_shuffles_vs_replicas(benchmark, show, repetitions):
    replica_counts = (
        FIG9_REPLICA_COUNTS if full_fidelity()
        else (900, 1200, 1600, 2000)
    )
    rows = benchmark.pedantic(
        run_fig9,
        kwargs={
            "replica_counts": replica_counts,
            "repetitions": repetitions,
        },
        rounds=1,
        iterations=1,
    )
    show(render_fig9(rows))
    by_key = {
        (r.benign, r.target, r.n_replicas): r.shuffles.mean for r in rows
    }
    for benign in (10_000, 50_000):
        for target in (0.8, 0.95):
            series = [
                by_key[(benign, target, p)] for p in replica_counts
            ]
            # Monotone non-increasing in the replica count (small noise
            # tolerated on the trimmed grid).
            for fewer, more in zip(series, series[1:]):
                assert more <= fewer * 1.10
            # End-to-end the drop is substantial.
            assert series[-1] < series[0]
