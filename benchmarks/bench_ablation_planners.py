"""Ablation — which planner drives the multi-round defense best?

Figures 3-4 compare the planners on a *single* shuffle; this ablation runs
the full multi-round control loop with each planner on an identical attack
and compares shuffles-to-target, quantifying how much the plan quality
compounds over rounds (the even baseline's per-round deficit multiplies).
"""

from __future__ import annotations

from repro.experiments.tables import render_table
from repro.sim.shuffle_sim import ShuffleScenario, run_scenario

SCENARIO = dict(
    benign=2_000,
    bots=800,
    n_replicas=100,
    target_fraction=0.8,
    preload_bots=True,  # constant pressure isolates the planner effect
    max_rounds=3_000,
)


def run_planner(planner: str, repetitions: int):
    return run_scenario(
        ShuffleScenario(planner=planner, **SCENARIO),
        repetitions=repetitions,
        seed=11,
    )


def test_ablation_planners(benchmark, show, repetitions):
    def sweep():
        return {
            planner: run_planner(planner, repetitions)
            for planner in ("greedy", "even")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(render_table(
        [
            {
                "planner": planner,
                "shuffles": result.shuffles.format(1),
                "saved fraction": result.saved_fraction.format(3),
            }
            for planner, result in results.items()
        ],
        title=(
            "Ablation — multi-round defense by planner "
            "(2K benign, 800 preloaded bots, 100 replicas, 80% target)"
        ),
    ))
    # With 8x more bots than replicas, the even planner's near-zero
    # per-shuffle yield compounds into a dramatically longer mitigation.
    assert (
        results["even"].mean_shuffles
        > 2 * results["greedy"].mean_shuffles
    )
    # Greedy still converges in a bounded number of rounds.
    assert all(run.reached_target for run in results["greedy"].runs)
