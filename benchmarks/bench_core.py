"""Vectorized-core benchmark: latency gates and scalar-vs-vector speedups.

Two consumers:

- ``python benchmarks/bench_core.py [--quick] [--json PATH]`` — the CI
  ``core-bench`` step.  Measures estimate/plan latency through the
  unified :mod:`repro.core.api` seam at growing (N, P) scales, measures
  the speedup of each vectorized kernel over its frozen scalar seed
  (``benchmarks/scalar_core.py``), writes ``BENCH_core.json``, and
  **fails** (exit 1) if the gated scale misses the 1-second budget —
  plan + estimate at N=10^5/P=10^2 under ``--quick``, N=10^6/P=10^3
  on the full run.
- ``pytest benchmarks/bench_core.py`` — the same latency cells through
  pytest-benchmark's statistics machinery.

The 1-second budget is the paper's own bar: shuffling decisions are
"runtime algorithms" (Section IV-C) that must keep up with a
few-seconds-per-shuffle control loop (Figure 12).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.scalar_core import (  # noqa: E402
    scalar_attacked_count_pmf,
    scalar_combine,
    scalar_mle_m_hat,
    scalar_optimal_assign,
)
from repro.core.api import EstimateRequest, PlanRequest, estimate, plan
from repro.core.dp import optimal_assign
from repro.core.dp_fast import _Node, _combine
from repro.core.estimator import _estimate_mle, attacked_count_pmf

#: (n_clients, n_replicas) latency cells, smallest first.  The third
#: field marks the cell whose latency is *gated* at 1 s in CI.
SCALES = (
    (1_000, 10, False),
    (10_000, 32, False),
    (100_000, 100, True),  # --quick gate
    (1_000_000, 1_000, True),  # full-run gate
)

GATE_SECONDS = 1.0


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _cell(n_clients: int, n_replicas: int) -> dict[str, float | int]:
    """Plan + estimate latency at one (N, P) scale via the api seam."""
    n_bots = max(1, n_clients // 100)
    n_attacked = max(1, int(0.6 * n_replicas))
    plan_seconds = _time(
        lambda: plan(
            PlanRequest(
                n_clients=n_clients,
                n_bots=n_bots,
                n_replicas=n_replicas,
                method="greedy",
            )
        )
    )
    estimate_seconds = _time(
        lambda: estimate(
            EstimateRequest(
                n_attacked=n_attacked,
                n_replicas=n_replicas,
                upper_bound=n_clients,
                method="mle",
            )
        )
    )
    return {
        "n_clients": n_clients,
        "n_replicas": n_replicas,
        "n_bots": n_bots,
        "n_attacked": n_attacked,
        "plan_seconds": plan_seconds,
        "estimate_seconds": estimate_seconds,
        "total_seconds": plan_seconds + estimate_seconds,
    }


def _speedups() -> list[dict[str, float | str]]:
    """Vectorized kernel vs frozen scalar seed, equal work each side."""
    rows: list[dict[str, float | str]] = []

    # Occupancy MLE past _EXACT_SWEEP_LIMIT: the scalar seed sweeps
    # every candidate m; the hybrid closed-form + grid-search path is
    # where the vectorized estimator earns its keep.
    scalar = _time(lambda: scalar_mle_m_hat(150, 256, 100_000))
    vector = _time(lambda: _estimate_mle(150, 256, 100_000))
    rows.append(
        {
            "kernel": "estimate_mle(x=150, P=256, upper=1e5)",
            "scalar_seconds": scalar,
            "vector_seconds": vector,
            "speedup": scalar / max(vector, 1e-12),
        }
    )

    # Poisson-binomial convolution over a wide plan.
    sizes = np.full(2_000, 50, dtype=np.int64)
    scalar = _time(
        lambda: scalar_attacked_count_pmf(sizes, 100_000, 1_000)
    )
    vector = _time(lambda: attacked_count_pmf(sizes, 100_000, 1_000))
    rows.append(
        {
            "kernel": "attacked_count_pmf(P=2e3, N=1e5)",
            "scalar_seconds": scalar,
            "vector_seconds": vector,
            "speedup": scalar / max(vector, 1e-12),
        }
    )

    # (max,+) convolution at dp_fast's paper scale.
    rng = np.random.default_rng(20140623)
    uv = rng.uniform(0.0, 1_000.0, size=4_001)
    vv = rng.uniform(0.0, 1_000.0, size=4_001)
    scalar = _time(lambda: scalar_combine(uv, vv))
    vector = _time(
        lambda: _combine(
            _Node(values=uv, n_replicas=1),
            _Node(values=vv, n_replicas=1),
        )
    )
    rows.append(
        {
            "kernel": "dp_fast._combine(size=4e3)",
            "scalar_seconds": scalar,
            "vector_seconds": vector,
            "speedup": scalar / max(vector, 1e-12),
        }
    )

    # Algorithm 1 tables (small N: the scalar nest is seconds already).
    scalar = _time(lambda: scalar_optimal_assign(60, 12, 4))
    vector = _time(lambda: optimal_assign(60, 12, 4))
    rows.append(
        {
            "kernel": "dp.optimal_assign(N=60, M=12, P=4)",
            "scalar_seconds": scalar,
            "vector_seconds": vector,
            "speedup": scalar / max(vector, 1e-12),
        }
    )
    return rows


def run(quick: bool) -> dict[str, object]:
    cells = []
    for n_clients, n_replicas, gated in SCALES:
        if quick and n_clients > 100_000:
            continue
        cell = _cell(n_clients, n_replicas)
        cell["gated"] = gated
        cells.append(cell)
    return {
        "benchmark": "core",
        "quick": quick,
        "gate_seconds": GATE_SECONDS,
        "cells": cells,
        "speedups": _speedups(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="stop at N=1e5/P=1e2 (the CI gate scale)",
    )
    parser.add_argument(
        "--json", default="BENCH_core.json",
        help="output path (default: %(default)s)",
    )
    options = parser.parse_args(argv)

    report = run(options.quick)
    Path(options.json).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    failed = False
    for cell in report["cells"]:  # type: ignore[union-attr]
        flag = ""
        if cell["gated"]:
            over = cell["total_seconds"] > GATE_SECONDS
            flag = "  [GATE " + ("FAIL]" if over else "OK]")
            failed = failed or over
        print(
            f"N={cell['n_clients']:>9,} P={cell['n_replicas']:>5,}  "
            f"plan {cell['plan_seconds']*1e3:8.1f} ms  "
            f"estimate {cell['estimate_seconds']*1e3:8.1f} ms{flag}"
        )
    print()
    for row in report["speedups"]:  # type: ignore[union-attr]
        print(
            f"{row['kernel']:<40} scalar {row['scalar_seconds']*1e3:8.1f}"
            f" ms  vector {row['vector_seconds']*1e3:8.1f} ms  "
            f"speedup {row['speedup']:6.1f}x"
        )
    print(f"\nwrote {options.json}")
    return 1 if failed else 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same cells, statistical timing)
# ---------------------------------------------------------------------------


def test_core_gate_quick(benchmark):
    """Plan + estimate at the CI gate scale stays under one second."""

    def both():
        cell = _cell(100_000, 100)
        return cell["total_seconds"]

    total = benchmark.pedantic(both, rounds=3, iterations=1)
    assert total < GATE_SECONDS


def test_core_estimate_paper_scale(benchmark):
    """MLE at N=10^6, P=10^3 — the hybrid grid-search path."""
    request = EstimateRequest(
        n_attacked=600, n_replicas=1_000, upper_bound=1_000_000,
        method="mle",
    )
    result = benchmark.pedantic(
        estimate, args=(request,), rounds=3, iterations=1
    )
    assert result.m_hat >= 600
    assert benchmark.stats["mean"] < GATE_SECONDS


def test_core_plan_paper_scale(benchmark):
    """Greedy planning at N=10^6, P=10^3 through the api seam."""
    request = PlanRequest(
        n_clients=1_000_000, n_bots=10_000, n_replicas=1_000,
        method="greedy",
    )
    shuffle = benchmark.pedantic(
        plan, args=(request,), rounds=3, iterations=1
    )
    assert sum(shuffle.group_sizes) == 1_000_000
    assert benchmark.stats["mean"] < GATE_SECONDS


if __name__ == "__main__":
    raise SystemExit(main())
