"""Figure 5 benchmark — running time of the paper-literal DP (Algorithm 1).

The paper measured up to ~2.5 x 10^8 ms (tens of hours) at N = 1000 in
Matlab.  We benchmark Algorithm 1 directly at a scaled-down size, then
reproduce the figure's *message* from the measured growth exponent: the
extrapolated N = 1000 runtime lands in the hours-and-up regime that makes
the DP unusable online.
"""

from __future__ import annotations

from repro.core.dp import optimal_assign
from repro.experiments.fig5 import (
    extrapolate_to,
    fit_growth_exponent,
    render_fig5,
    run_fig5,
)


def test_fig5_dp_runtime_kernel(benchmark):
    """Wall-clock of one representative Algorithm 1 invocation."""
    benchmark.pedantic(
        optimal_assign, args=(60, 12, 4), rounds=3, iterations=1
    )


def test_fig5_dp_runtime_scaling(benchmark, show):
    rows = benchmark.pedantic(
        run_fig5,
        kwargs={"client_counts": (40, 60, 80, 100),
                "replica_counts": (4, 8)},
        rounds=1,
        iterations=1,
    )
    show(render_fig5(rows))
    # Runtime rises steeply and monotonically with N at fixed P...
    for replicas in (4, 8):
        series = [r.seconds for r in rows if r.n_replicas == replicas]
        assert series == sorted(series)
    exponent = fit_growth_exponent(rows)
    assert exponent > 2.5  # strongly super-quadratic, as the paper shows
    # ...and the paper's "tens of hours at N=1000" order of magnitude
    # follows from the fitted power law (anything >= ~1 hour qualifies;
    # Matlab overheads made the authors' constant far worse than ours).
    projected = extrapolate_to(rows, 1000)
    assert projected > 3600.0
