"""Ablation — what does *not knowing M* cost the defense?

The paper's planners assume the persistent-bot count is known; Section V
supplies the MLE that makes the system deployable.  This ablation runs the
same attack with (a) an oracle that knows the true count, (b) the exact
occupancy MLE, and (c) the closed-form moment estimator — and measures the
shuffle premium paid for estimation.
"""

from __future__ import annotations

from repro.experiments.tables import render_table
from repro.sim.shuffle_sim import ShuffleScenario, run_scenario

SCENARIO = dict(
    benign=2_000,
    bots=500,
    n_replicas=100,
    target_fraction=0.8,
    preload_bots=True,
    max_rounds=2_000,
)


def test_ablation_estimators(benchmark, show, repetitions):
    def sweep():
        return {
            estimator: run_scenario(
                ShuffleScenario(estimator=estimator, **SCENARIO),
                repetitions=max(repetitions, 3),
                seed=13,
            )
            for estimator in ("oracle", "mle", "moment")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(render_table(
        [
            {
                "estimator": estimator,
                "shuffles": result.shuffles.format(1),
                "saved fraction": result.saved_fraction.format(3),
            }
            for estimator, result in results.items()
        ],
        title=(
            "Ablation — shuffles to the 80% target by bot-count knowledge "
            "(2K benign, 500 preloaded bots, 100 replicas)"
        ),
    ))
    oracle = results["oracle"].mean_shuffles
    for estimator in ("mle", "moment"):
        measured = results[estimator].mean_shuffles
        # Estimation is not free in this bot-heavy, small-pool regime:
        # most rounds see nearly every replica attacked, so the estimate
        # is frequently degenerate and the planner over-provisions the
        # quarantine bucket.  The measured premium is ~70% over the
        # oracle; the defense still converges every run.
        assert measured <= 2.5 * oracle
        assert all(run.reached_target for run in results[estimator].runs)
