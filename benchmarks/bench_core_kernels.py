"""Microbenchmarks of the computational kernels.

Not a paper figure — these guard the performance properties the rest of
the harness depends on: planning and estimation must stay far below the
few-seconds-per-shuffle budget (Figure 12) even at the largest simulated
populations, or the "runtime algorithm" premise of Section IV-C breaks.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import EstimateRequest, estimate
from repro.core.combinatorics import expected_saved_single_many
from repro.core.dp_fast import dp_fast_value
from repro.core.estimator import occupancy_pmf
from repro.core.objective import single_replica_optimum


def test_kernel_objective_scan_150k(benchmark):
    """f(x) over every x at the Figure 8 population."""
    xs = np.arange(1, 150_001, dtype=np.int64)
    result = benchmark(expected_saved_single_many, 150_000, 100_000, xs)
    assert result.size == 150_000
    assert benchmark.stats["mean"] < 0.1


def test_kernel_single_replica_optimum(benchmark):
    omega, value = benchmark(single_replica_optimum, 150_000, 100_000)
    assert 1 <= omega <= 5
    assert benchmark.stats["mean"] < 0.1


def test_kernel_dp_fast_paper_scale(benchmark):
    """Optimal plan value at Figure 3's largest cell."""
    value = benchmark.pedantic(
        dp_fast_value, args=(1000, 500, 200), rounds=3, iterations=1
    )
    assert value > 0
    assert benchmark.stats["mean"] < 2.0


def test_kernel_occupancy_pmf(benchmark):
    pmf = benchmark(occupancy_pmf, 500, 100)
    assert pmf.sum() == np.float64(1.0) or abs(pmf.sum() - 1.0) < 1e-9


def test_kernel_moment_estimator(benchmark):
    request = EstimateRequest(
        n_attacked=700, n_replicas=1000, upper_bound=150_000,
        method="moment",
    )
    result = benchmark(estimate, request)
    assert result.m_hat > 0
    assert benchmark.stats["mean"] < 1e-3


def test_kernel_hypergeometric_sampling(benchmark):
    """One round's bot-placement draw at headline scale."""
    rng = np.random.default_rng(1)
    sizes = np.full(1000, 150, dtype=np.int64)

    def draw():
        return rng.multivariate_hypergeometric(sizes, 100_000)

    bots = benchmark(draw)
    assert bots.sum() == 100_000
    assert benchmark.stats["mean"] < 0.1
