"""Ablation — bot-arrival dynamics: build-up vs. preloaded attacks.

The paper's Section VI-A simulations build the botnet up via a Poisson
arrival process (5000 bots per 3 shuffles), which makes early shuffles far
more productive (Figure 10's shape) and caps the calibrated shuffle
counts.  This ablation quantifies how much harder the same attack is when
every bot is present from round one — the worst case the paper's
discussion acknowledges ("bot-generated DDoS traffic can 'catch' the
moving replica servers instantly").

Also validates the mean-field predictor (repro.analysis.convergence)
against the preloaded simulation it models.
"""

from __future__ import annotations

from repro.analysis.convergence import predict_shuffles
from repro.experiments.tables import render_table
from repro.sim.shuffle_sim import ShuffleScenario, run_scenario

BENIGN, BOTS, REPLICAS = 10_000, 30_000, 1_000


def test_ablation_arrivals(benchmark, show, repetitions):
    def sweep():
        results = {}
        for label, preload in (("build-up", False), ("preloaded", True)):
            results[label] = run_scenario(
                ShuffleScenario(
                    benign=BENIGN,
                    bots=BOTS,
                    n_replicas=REPLICAS,
                    target_fraction=0.8,
                    preload_bots=preload,
                ),
                repetitions=repetitions,
                seed=23,
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    predicted = predict_shuffles(BENIGN, BOTS, REPLICAS, 0.8)
    show(render_table(
        [
            {
                "arrivals": label,
                "shuffles": result.shuffles.format(1),
                "saved": result.saved_fraction.format(3),
            }
            for label, result in results.items()
        ]
        + [
            {
                "arrivals": "preloaded (mean-field prediction)",
                "shuffles": predicted,
                "saved": "-",
            }
        ],
        title=(
            "Ablation — bot arrival dynamics "
            f"({BENIGN} benign, {BOTS} bots, {REPLICAS} replicas, 80%)"
        ),
    ))
    build_up = results["build-up"].mean_shuffles
    preloaded = results["preloaded"].mean_shuffles
    # Instant full-strength attacks cost more shuffles than ramped ones.
    assert preloaded >= build_up
    # The analytic predictor tracks the preloaded simulation.
    assert predicted is not None
    assert abs(predicted - preloaded) <= max(3.0, 0.3 * preloaded)
