"""Frozen scalar reference implementations of the core kernels.

These are verbatim copies of the *pre-vectorization* bodies of
``repro.core.estimator``, ``repro.core.dp`` and ``repro.core.dp_fast``
(the per-element Python loops the vectorized rewrite replaced).  They
exist for two callers:

- ``tests/core/test_vectorized_equivalence.py`` pins the vectorized
  kernels bit-identical (or, for the dp tables, allclose) against them;
- ``benchmarks/bench_core.py`` measures the speedup of the vectorized
  paths over them.

Do not "improve" these: their value is that they never change.  They are
deliberately outside ``src/repro`` so the P14 scalar-loop pass does not
see them.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.combinatorics import (
    expected_saved_single_many,
    hypergeometric_pmf_vector,
    survival_probabilities,
)

__all__ = [
    "scalar_occupancy_pmf",
    "scalar_occupancy_likelihoods",
    "scalar_mle_m_hat",
    "scalar_attacked_count_pmf",
    "scalar_weighted_m_hat",
    "scalar_combine",
    "scalar_optimal_assign",
]


def scalar_occupancy_pmf(n_balls: int, n_bins: int) -> np.ndarray:
    """Seed ``occupancy_pmf``: per-ball windowed DP update."""
    row = np.zeros(n_bins + 1, dtype=np.float64)
    row[0] = 1.0
    stay = np.arange(n_bins + 1, dtype=np.float64) / n_bins
    grow = (n_bins - np.arange(n_bins + 1, dtype=np.float64) + 1) / n_bins
    for _ in range(n_balls):
        shifted = np.empty_like(row)
        shifted[0] = 0.0
        shifted[1:] = row[:-1]
        row = row * stay + shifted * grow[: n_bins + 1]
    return row


def scalar_occupancy_likelihoods(
    n_attacked: int, n_bins: int, upper: int
) -> np.ndarray:
    """Seed ``occupancy_likelihoods``: one DP sweep, scalar column reads."""
    row = np.zeros(n_bins + 1, dtype=np.float64)
    row[0] = 1.0
    stay = np.arange(n_bins + 1, dtype=np.float64) / n_bins
    grow = (n_bins - np.arange(n_bins + 1, dtype=np.float64) + 1) / n_bins
    likelihoods = np.zeros(upper + 1, dtype=np.float64)
    likelihoods[0] = row[n_attacked]
    for m in range(1, upper + 1):
        shifted = np.empty_like(row)
        shifted[0] = 0.0
        shifted[1:] = row[:-1]
        row = row * stay + shifted * grow
        likelihoods[m] = row[n_attacked]
    return likelihoods


def scalar_mle_m_hat(
    n_attacked: int, n_replicas: int, upper_bound: int
) -> tuple[int, float]:
    """Seed MLE core: exhaustive sweep argmax over ``m >= n_attacked``.

    Returns ``(m_hat, log_likelihood)`` for the non-degenerate regime
    (``0 < n_attacked < n_replicas``) — the only regime where the seed
    did real work.
    """
    likelihoods = scalar_occupancy_likelihoods(
        n_attacked, n_replicas, upper_bound
    )
    m_hat = n_attacked + int(np.argmax(likelihoods[n_attacked:]))
    peak = float(likelihoods[m_hat])
    return m_hat, (math.log(peak) if peak > 0 else float("-inf"))


def scalar_attacked_count_pmf(
    sizes: Sequence[int] | np.ndarray, n_clients: int, n_bots: int
) -> np.ndarray:
    """Seed ``attacked_count_pmf``: filled-window sequential convolution."""
    xs = np.asarray(sizes, dtype=np.int64)
    q = 1.0 - survival_probabilities(n_clients, n_bots, xs)
    pmf = np.zeros(xs.size + 1, dtype=np.float64)
    pmf[0] = 1.0
    filled = 0
    for qi in q:
        if qi == 0.0:
            continue
        filled += 1
        pmf[1 : filled + 1] = (
            pmf[1 : filled + 1] * (1.0 - qi) + pmf[:filled] * qi
        )
        pmf[0] *= 1.0 - qi
    return pmf


def scalar_weighted_m_hat(
    n_attacked: int,
    sizes: Sequence[int] | np.ndarray,
    n_clients: int,
    candidates: int = 64,
) -> int:
    """Seed weighted-MLE search: geometric grid + exhaustive local window.

    Non-degenerate regime only (``0 < n_attacked < nonempty``), no prior.
    """
    xs = np.asarray(sizes, dtype=np.int64)

    def objective(m: int) -> float:
        pmf = scalar_attacked_count_pmf(xs, n_clients, m)
        value = float(pmf[n_attacked])
        return math.log(value) if value > 0 else float("-inf")

    lo, hi = n_attacked, n_clients
    grid = np.unique(
        np.geomspace(max(lo, 1), hi, num=min(candidates, hi - lo + 1))
        .round()
        .astype(np.int64)
    )
    grid = grid[(grid >= lo) & (grid <= hi)]
    if grid.size == 0:
        grid = np.array([lo], dtype=np.int64)
    coarse_best = max(grid, key=objective)
    position = int(np.searchsorted(grid, coarse_best))
    left = int(grid[position - 1]) if position > 0 else lo
    right = int(grid[position + 1]) if position + 1 < grid.size else hi
    window = range(max(lo, left), min(hi, right) + 1)
    return int(max(window, key=objective))


def scalar_combine(
    uv: np.ndarray, vv: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Seed ``dp_fast._combine``: per-``n`` (max,+) convolution loop.

    Returns ``(values, args)`` exactly as the seed's ``_Node`` carried
    them.
    """
    size = uv.size
    vals = np.empty(size, dtype=np.float64)
    arg = np.empty(size, dtype=np.int64)
    for n in range(size):
        candidates = uv[: n + 1] + vv[n::-1]
        a = int(np.argmax(candidates))
        vals[n] = candidates[a]
        arg[n] = a
    return vals, arg


def scalar_leaf_values(n_clients: int, n_bots: int) -> np.ndarray:
    """The dp_fast leaf vector (shared kernel, kept for bench symmetry)."""
    xs = np.arange(0, n_clients + 1, dtype=np.int64)
    return expected_saved_single_many(n_clients, n_bots, xs)


def scalar_optimal_assign(
    n_clients: int, n_bots: int, n_replicas: int
) -> tuple[np.ndarray, np.ndarray]:
    """Seed ``dp.optimal_assign``: the paper-literal four-deep loop nest.

    Returns ``(save_no, assign_no)`` tables with the seed's exact
    accumulation order (``pr @ rest`` per candidate split).
    """
    shape = (n_clients + 1, n_bots + 1, n_replicas)
    save_no = np.zeros(shape, dtype=np.float64)
    assign_no = np.zeros(shape, dtype=np.int64)

    for i in range(n_clients + 1):
        save_no[i, 0, 0] = float(i)

    for k in range(1, n_replicas):
        prev = save_no[:, :, k - 1]
        for i in range(n_clients + 1):
            if i == 0:
                continue
            for j in range(min(i, n_bots) + 1):
                if j == 0:
                    save_no[i, j, k] = float(i)
                    assign_no[i, j, k] = i
                    continue
                best_value = -1.0
                best_a = 0
                for a in range(1, i):
                    pr = hypergeometric_pmf_vector(i, j, a)
                    b_hi = pr.size - 1  # = min(a, j)
                    value = pr[0] * a
                    rest = prev[i - a, j - b_hi : j + 1][::-1]
                    value += float(pr @ rest)
                    if value > best_value:
                        best_value = value
                        best_a = a
                if best_a == 0:
                    save_no[i, j, k] = save_no[i, j, 0]
                else:
                    save_no[i, j, k] = best_value
                    assign_no[i, j, k] = best_a
    return save_no, assign_no
