"""Figure 4 benchmark — greedy vs naive even distribution.

Regenerates the paper's Figure 4 grid and asserts the crossover claim:
even distribution is competitive only while bots are fewer than replicas
and collapses once they clearly outnumber them.
"""

from __future__ import annotations

from repro.experiments.fig4 import render_fig4, run_fig4


def test_fig4_greedy_vs_even(benchmark, show):
    rows = benchmark(run_fig4)
    show(render_fig4(rows))
    for row in rows:
        # Greedy dominates the baseline everywhere (the paper's curves).
        assert row.greedy_saved >= row.even_saved - 1e-9
        if row.n_bots <= row.n_replicas // 2:
            # Below the crossover the two are close...
            assert row.even_fraction > 0.8 * row.greedy_fraction
        if row.n_bots >= 3 * row.n_replicas:
            # ...far beyond it the naive strategy saves almost nobody.
            assert row.even_fraction < 0.05
            assert row.greedy_fraction > 2 * row.even_fraction
