"""Observability overhead benchmark — fig. 8 quick grid, three ways.

Runs the same trimmed Figure 8 grid (a) as shipped, with every
``instruments=`` seam left at ``None``, (b) again identically (the
"disabled" pass — same code, so the ratio bounds the no-op cost plus
measurement noise), and (c) with a process-wide
:func:`repro.obs.set_default_instruments` bundle installed so every
engine, sweep cell, and grid task records metrics and spans.

Asserts the contract documented in docs/observability.md: disabled
overhead <= 5%, fully enabled <= 15%, on min-of-repeats wall times.
Writes ``BENCH_obs.json`` (override with ``BENCH_OBS_JSON``) for CI
artifact upload.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import full_fidelity
from repro.experiments.fig8 import run_fig8
from repro.obs import Instruments, set_default_instruments

DISABLED_LIMIT = 1.05
ENABLED_LIMIT = 1.15
MIN_REPEATS = 3
MAX_REPEATS = 12


def quick_fig8_kwargs() -> dict:
    if full_fidelity():
        return {
            "bot_counts": (10_000, 50_000, 100_000),
            "benign_counts": (10_000,),
            "targets": (0.8,),
            "repetitions": 10,
        }
    return {
        "bot_counts": (20_000, 50_000),
        "benign_counts": (10_000,),
        "targets": (0.8,),
        "repetitions": 3,
    }


def measure(
    kwargs: dict, passes: dict[str, Instruments | None]
) -> tuple[dict[str, float], int]:
    """Min-of-repeats CPU time per pass, interleaved round-robin.

    Interleaving cancels slow drift (frequency scaling, cache state);
    ``process_time`` ignores scheduler preemption, which at the quick
    grid's ~0.2 s scale would otherwise dominate the ratios. The repeat
    count is adaptive: a min-estimator only improves with samples, so
    on a noisy host we keep sampling (up to ``MAX_REPEATS``) until the
    ratios settle under their limits, and a genuinely slow build still
    fails after the cap.
    """
    best = {name: float("inf") for name in passes}
    repeats = 0
    while repeats < MAX_REPEATS:
        for name, bundle in passes.items():
            previous = set_default_instruments(bundle)
            try:
                begun = time.process_time()
                run_fig8(seed=0, **kwargs)
                best[name] = min(best[name], time.process_time() - begun)
            finally:
                set_default_instruments(previous)
        repeats += 1
        if repeats >= MIN_REPEATS and (
            best["disabled"] <= DISABLED_LIMIT * best["baseline"]
            and best["enabled"] <= ENABLED_LIMIT * best["baseline"]
        ):
            break
    return best, repeats


def test_obs_overhead(benchmark, show):
    kwargs = quick_fig8_kwargs()

    run_fig8(seed=0, **kwargs)  # warm-up: imports, allocator, caches
    enabled_bundle = Instruments.create(source="bench")
    timings, repeats = measure(
        kwargs,
        {
            "baseline": None,
            "disabled": None,
            "enabled": enabled_bundle,
        },
    )
    baseline_s = timings["baseline"]
    disabled_s = timings["disabled"]
    enabled_s = timings["enabled"]

    disabled_ratio = disabled_s / baseline_s
    enabled_ratio = enabled_s / baseline_s

    # One extra baseline pass through pytest-benchmark for its table.
    benchmark.pedantic(
        run_fig8, kwargs={"seed": 0, **kwargs}, rounds=1, iterations=1
    )

    # The enabled pass really recorded the span tree and counters.
    rounds = len(enabled_bundle.spans.named("shuffle_round"))
    assert rounds > 0

    assert disabled_ratio <= DISABLED_LIMIT, (
        f"disabled instrumentation costs {disabled_ratio:.3f}x "
        f"(limit {DISABLED_LIMIT}x)"
    )
    assert enabled_ratio <= ENABLED_LIMIT, (
        f"enabled instrumentation costs {enabled_ratio:.3f}x "
        f"(limit {ENABLED_LIMIT}x)"
    )

    payload = {
        "grid": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in kwargs.items()
        },
        "repeats": repeats,
        "full_fidelity": full_fidelity(),
        "cpu_time_s": {
            "baseline": round(baseline_s, 4),
            "disabled": round(disabled_s, 4),
            "enabled": round(enabled_s, 4),
        },
        "overhead_ratio": {
            "disabled": round(disabled_ratio, 4),
            "enabled": round(enabled_ratio, 4),
        },
        "limits": {"disabled": DISABLED_LIMIT, "enabled": ENABLED_LIMIT},
        "enabled_shuffle_round_spans": rounds,
    }
    out_path = os.environ.get("BENCH_OBS_JSON", "BENCH_obs.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    show(
        "Observability overhead — fig. 8 quick grid "
        f"(min of {repeats})\n"
        f"  baseline: {baseline_s:.2f} s\n"
        f"  disabled: {disabled_s:.2f} s ({disabled_ratio:.3f}x, "
        f"limit {DISABLED_LIMIT}x)\n"
        f"  enabled:  {enabled_s:.2f} s ({enabled_ratio:.3f}x, "
        f"limit {ENABLED_LIMIT}x)\n"
        f"  written: {out_path}"
    )
