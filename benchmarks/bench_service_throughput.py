"""Live-service benchmark — the paper's loop over real sockets.

Runs the acceptance-scale attack scenario (200 benign clients + 20
persistent insider bots on a 10-replica pool; trimmed when quick)
against the live :mod:`repro.service` defense, asserts the qualitative
paper claims — quarantine within the oracle-derived shuffle budget,
benign clients restored onto bot-free replicas — and writes
machine-readable throughput/convergence numbers to
``BENCH_service.json`` (override with ``BENCH_SERVICE_JSON``) for CI
artifact upload.

Wall-clock throughput is *reported*, not asserted: it depends on the
host's scheduler and core count, while the convergence contract must
hold everywhere.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import full_fidelity
from repro.service import (
    LoadConfig,
    ServiceConfig,
    run_scenario_sync,
    shuffle_budget,
)


def scenario_configs() -> tuple[ServiceConfig, LoadConfig]:
    if full_fidelity():
        n_benign, n_bots, n_replicas = 400, 40, 10
    else:
        n_benign, n_bots, n_replicas = 200, 20, 10
    return (
        ServiceConfig(n_replicas=n_replicas, seed=7, telemetry_port=None),
        LoadConfig(n_benign=n_benign, n_bots=n_bots, seed=11),
    )


def test_service_throughput(benchmark, show):
    service_config, load_config = scenario_configs()
    budget = shuffle_budget(
        load_config.n_benign, load_config.n_bots,
        service_config.n_replicas,
    )

    report = benchmark.pedantic(
        run_scenario_sync,
        args=(service_config, load_config),
        kwargs={"duration": 120.0, "target_fraction": 0.95},
        rounds=1,
        iterations=1,
    )

    # The paper's qualitative claims, asserted live.
    assert report.quarantined
    assert not report.budget_exhausted
    assert report.shuffles_completed <= budget
    assert report.benign_clean_fraction >= 0.95

    benign_total = sum(w.benign_sent for w in report.windows)
    benign_ok = sum(w.benign_ok for w in report.windows)
    rps = benign_total / report.duration if report.duration > 0 else 0.0
    payload = {
        "n_benign": load_config.n_benign,
        "n_bots": load_config.n_bots,
        "n_replicas": service_config.n_replicas,
        "full_fidelity": full_fidelity(),
        "host_cpu_count": os.cpu_count(),
        "budget": budget,
        "shuffles_completed": report.shuffles_completed,
        "quarantined": report.quarantined,
        "benign_clean_fraction": round(report.benign_clean_fraction, 4),
        "duration_s": round(report.duration, 2),
        "benign_requests": benign_total,
        "benign_ok": benign_ok,
        "benign_rps": round(rps, 1),
        "bot_served": report.bot_served,
        "bot_throttled": report.bot_throttled,
        "believed_bots": report.snapshot["believed_bots"],
    }
    out_path = os.environ.get("BENCH_SERVICE_JSON", "BENCH_service.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    show(
        "Live service — {benign} benign + {bots} bots on {p} replicas\n"
        "  quarantined in {shuffles} shuffles (budget {budget}), "
        "clean fraction {clean:.3f}\n"
        "  {reqs} benign requests over {dur:.1f}s (~{rps:.0f} req/s), "
        "bots throttled {throttled}x\n"
        "  written: {path}".format(
            benign=load_config.n_benign,
            bots=load_config.n_bots,
            p=service_config.n_replicas,
            shuffles=report.shuffles_completed,
            budget=budget,
            clean=report.benign_clean_fraction,
            reqs=benign_total,
            dur=report.duration,
            rps=rps,
            throttled=report.bot_throttled,
            path=out_path,
        )
    )
