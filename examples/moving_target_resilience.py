"""Why the moving target is hard to pin down: recon, spoofing, hot spares.

Section VII argues the architecture structurally defeats two side-channel
attack vectors and that hot spares make the reaction faster.  This example
measures all three on the live simulation:

1. **IP spoofing** — a 100K pps flood of forged-source connection
   attempts: the redirect handshake means none of it ever reaches a
   replica.
2. **Reconnaissance scanning** — an attacker probing the cloud's address
   pool: hits are rare, whitelist-rejected, and rot as replicas move.
3. **Hot spares** — pre-booted replacement replicas take instance spin-up
   off the shuffle's critical path.

Run with::

    python examples/moving_target_resilience.py
"""

from __future__ import annotations

from repro.cloudsim import (
    CloudConfig,
    CloudDefenseSystem,
    ReconnaissanceScanner,
    SpoofingFlooder,
)


def spoofing_demo() -> None:
    print("== 1. spoofed-source flood (100K pps for 60 s) ==")
    system = CloudDefenseSystem(CloudConfig(), seed=7)
    system.add_benign_clients(40)
    system.build()
    flooder = SpoofingFlooder(system.ctx, packets_per_second=100_000.0)
    flooder.start()
    report = system.run(duration=60.0)
    replica_flood = sum(
        replica.stats.flood_packets for replica in system.ctx.all_replicas()
    )
    print(f"  packets sent by the attacker: {flooder.packets_sent:,.0f}")
    print(f"  packets that reached any replica: {replica_flood:,.0f}")
    print(f"  replica addresses the attacker learned: "
          f"{flooder.replica_addresses_learned}")
    print(f"  shuffles triggered: {report.shuffles}")
    print(f"  benign success rate: {report.benign_success_overall:.1%}")
    print("  -> the two-way redirect handshake stops spoofing cold\n")


def recon_demo() -> None:
    print("== 2. reconnaissance scan (1000 probes/s, 64K-address pool) ==")
    system = CloudDefenseSystem(CloudConfig(), seed=8)
    system.add_benign_clients(40)
    system.build()
    scanner = ReconnaissanceScanner(
        system.ctx, pool_size=65_536, probes_per_second=1_000.0
    )
    scanner.start()
    system.run(duration=120.0)
    print(f"  probes fired: {scanner.report.probes:,}")
    print(f"  active replicas found: {scanner.report.hits}")
    print(f"  requests a found replica actually served: "
          f"{scanner.report.admitted_requests}")
    print(f"  single-probe hit probability right now: "
          f"{scanner.hit_probability():.5f}")
    print("  -> even lucky hits are whitelist-rejected, and go stale at "
          "the next substitution\n")


def hot_spare_demo() -> None:
    print("== 3. hot spares vs cold boots under attack ==")
    latencies = {}
    for label, spares in (("cold boots", 0), ("hot spares", 8)):
        system = CloudDefenseSystem(
            CloudConfig(hot_spares=spares, boot_delay=5.0), seed=9
        )
        system.add_benign_clients(80)
        system.add_persistent_bots(8)
        system.run(duration=120.0)
        records = [
            record
            for record in system.ctx.coordinator.shuffles
            if record.completed_at is not None and record.n_clients > 0
        ]
        if records:
            mean = sum(
                record.completed_at - record.started_at
                for record in records
            ) / len(records)
            latencies[label] = (len(records), mean)
    for label, (count, mean) in latencies.items():
        print(f"  {label:<11} {count} shuffles, "
              f"mean shuffle wall-clock {mean:.1f} s")
    print("  -> spares take the instance boot delay off the critical path")


def main() -> None:
    spoofing_demo()
    recon_demo()
    hot_spare_demo()


if __name__ == "__main__":
    main()
