"""Stress the defense against the paper's adversary taxonomy.

Section II-B and the Section VII discussion enumerate attacker strategies;
this example runs each against the same protected deployment and compares
the outcomes:

- **naive-only**: a leaked hit-list of the original replica addresses,
  with no bots able to follow the moving targets;
- **persistent network**: insiders reveal every new replica location to a
  flooding botnet;
- **persistent computational**: insiders exhaust replica CPUs with
  expensive requests (no flood at all);
- **on-off**: persistent bots that go quiet whenever they observe a
  shuffle, attempting to blend back in.

Run with::

    python examples/adversary_strategies.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloudsim import CloudConfig, CloudDefenseSystem


@dataclass(frozen=True)
class Outcome:
    name: str
    shuffles: int
    benign_ok: float
    tail_ok: float
    waste: float


def run_strategy(name: str, seed: int = 99) -> Outcome:
    config = CloudConfig(naive_pps=0.0 if name == "computational"
                         else 50_000.0)
    system = CloudDefenseSystem(config, seed=seed)
    system.add_benign_clients(100)

    if name == "naive-only":
        system.build()
        system.botnet.prune_delay = 1e9  # fleet never re-coordinates
        for replica in system.ctx.active_replicas():
            system.botnet.reveal(replica.endpoint.address)
    elif name == "persistent":
        system.add_persistent_bots(10)
    elif name == "computational":
        system.add_persistent_bots(10, computational=True)
    elif name == "on-off":
        system.add_persistent_bots(10, on_off=True, off_duration=40.0)
    else:
        raise ValueError(f"unknown strategy {name!r}")

    report = system.run(duration=200.0)
    return Outcome(
        name=name,
        shuffles=report.shuffles,
        benign_ok=report.benign_success_overall,
        tail_ok=report.benign_success_last_quarter,
        waste=report.naive_waste_ratio,
    )


def main() -> None:
    print("running four adversary strategies against the same deployment "
          "(200 simulated seconds each)...\n")
    outcomes = [
        run_strategy(name)
        for name in ("naive-only", "persistent", "computational", "on-off")
    ]
    print(f"{'strategy':<14} {'shuffles':>8} {'benign ok':>10} "
          f"{'tail ok':>8} {'flood wasted':>13}")
    print("-" * 58)
    for outcome in outcomes:
        print(
            f"{outcome.name:<14} {outcome.shuffles:>8} "
            f"{outcome.benign_ok:>10.1%} {outcome.tail_ok:>8.1%} "
            f"{outcome.waste:>13.1%}"
        )
    print()
    print("readings:")
    print(" - naive-only attacks die after the first substitution: the "
          "hit-list goes stale")
    print(" - persistent attackers force repeated shuffles but the tail "
          "recovers every time")
    print(" - computational insiders are caught by CPU-load detection, "
          "no flood needed")
    print(" - on-off bots merely lower their own attack intensity "
          "(Section VII's argument)")


if __name__ == "__main__":
    main()
