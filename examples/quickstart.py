"""Quickstart: plan and run a shuffling-based moving-target defense.

This walks the library's core API end to end:

1. plan a single shuffle with each algorithm and compare the expected
   number of benign clients saved (paper Equation 1);
2. estimate an unknown bot count from the observable attack signal
   (Section V's MLE);
3. run the full multi-round shuffling control loop until 80% of the
   benign clients are rescued.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ShuffleEngine,
    dp_fast_plan,
    estimate_bots_mle,
    even_plan,
    greedy_plan,
    shuffle_trajectory,
)
from repro.analysis.theory import max_estimable_bots, min_replicas_for_bots


def plan_one_shuffle() -> None:
    """Compare the three planners on one paper-scale instance."""
    n_clients, n_bots, n_replicas = 1000, 200, 100
    print(f"== one shuffle: N={n_clients} clients, M={n_bots} bots, "
          f"P={n_replicas} replicas ==")
    for planner in (greedy_plan, dp_fast_plan, even_plan):
        plan = planner(n_clients, n_bots, n_replicas)
        benign = n_clients - n_bots
        print(f"  {plan.algorithm:8s} expects to save "
              f"{plan.expected_saved:6.1f} of {benign} benign clients "
              f"({plan.expected_saved / benign:.1%})")
    print()


def estimate_attack_scale() -> None:
    """Infer the bot count from how many replicas came under attack."""
    print("== attack-scale estimation (Section V) ==")
    rng = np.random.default_rng(7)
    n_replicas, true_bots = 100, 150
    # Simulate one uniform shuffle: which replicas got a bot?
    hit = rng.integers(0, n_replicas, size=true_bots)
    attacked = len(set(hit.tolist()))
    estimate = estimate_bots_mle(
        attacked, n_replicas, upper_bound=10_000
    )
    print(f"  {attacked}/{n_replicas} replicas attacked "
          f"-> MLE estimate {estimate.m_hat} bots (truth: {true_bots})")
    threshold = max_estimable_bots(n_replicas)
    print(f"  Theorem 1: estimation stays informative up to "
          f"~{threshold:.0f} bots at P={n_replicas};")
    print(f"  to estimate 10,000 bots you would provision "
          f"P >= {min_replicas_for_bots(10_000)} replicas")
    print()


def run_defense() -> None:
    """Multi-round shuffling until 80% of benign clients are saved."""
    print("== multi-round defense: 5,000 benign vs 1,000 persistent bots, "
          "100 shuffling replicas ==")
    engine = ShuffleEngine(
        n_replicas=100,
        planner="greedy",
        estimator="moment",  # plan from the observable signal, no oracle
        rng=np.random.default_rng(42),
    )
    state = engine.run(benign=5_000, bots=1_000, target_fraction=0.8)
    print(f"  saved {state.benign_saved}/{state.benign_initial} benign "
          f"clients in {len(state.rounds)} shuffles")
    checkpoints = {0.25, 0.5, 0.75}
    for round_index, cumulative, fraction in shuffle_trajectory(state):
        passed = {c for c in checkpoints if fraction >= c}
        for checkpoint in sorted(passed):
            print(f"  reached {checkpoint:.0%} saved at shuffle "
                  f"{round_index + 1} ({cumulative} clients)")
        checkpoints -= passed
    final = state.rounds[-1]
    print(f"  final round: {final.n_attacked}/{final.plan.n_replicas} "
          f"replicas still attacked, {final.bots_remaining} bots "
          f"quarantined with {final.benign_remaining} benign stragglers")
    print()


def main() -> None:
    plan_one_shuffle()
    estimate_attack_scale()
    run_defense()


if __name__ == "__main__":
    main()
