"""One operating day of a protected service: three attack waves.

The paper sells the defense as *reactive*: near-zero footprint in quiet
hours, elastic scale-out only while mitigating (Sections II-A & VII).
This example simulates a 24-hour timeline with a morning probe, an
afternoon headline-scale assault, and an evening aftershock, then compares
the replica-hours the reactive strategy consumed against keeping the
mitigation fleet always on.

Run with::

    python examples/operating_day.py
"""

from __future__ import annotations

from repro.sim import AttackWave, CampaignConfig, run_campaign


def main() -> None:
    config = CampaignConfig(
        waves=(
            AttackWave(start_hour=3.5, bots=5_000, benign=20_000),
            AttackWave(
                start_hour=13.0, bots=40_000, benign=20_000,
                target_fraction=0.8,
            ),
            AttackWave(start_hour=20.0, bots=10_000, benign=20_000),
        ),
        horizon_hours=24.0,
        baseline_replicas=4,
        shuffle_replicas=1_000,
        shuffle_seconds=30.0,
    )
    print("simulating a 24-hour campaign against the protected service...\n")
    result = run_campaign(config, seed=7)

    print(f"{'wave':>5}  {'starts':>6}  {'bots':>7}  {'shuffles':>8}  "
          f"{'saved':>6}  {'mitigation':>10}")
    print("-" * 55)
    for index, outcome in enumerate(result.outcomes, start=1):
        print(
            f"{index:>5}  {outcome.wave.start_hour:>5.1f}h  "
            f"{outcome.wave.bots:>7,}  {outcome.shuffles:>8}  "
            f"{outcome.saved_fraction:>6.1%}  "
            f"{outcome.mitigation_hours * 60:>8.1f} min"
        )

    print()
    print(f"replica-hours, reactive defense:  "
          f"{result.replica_hours_reactive:,.0f}")
    print(f"replica-hours, always-on fleet:   "
          f"{result.replica_hours_always_on:,.0f}")
    print(f"maintenance saved by reacting:    "
          f"{result.reactive_saving:.1%}")
    print()
    print("every wave was mitigated in minutes; between waves the service "
          "ran on just")
    print(f"{config.baseline_replicas} baseline replicas - the paper's "
          "'minimum maintenance costs' argument.")


if __name__ == "__main__":
    main()
