"""Capacity planning for a shuffling defense: how many replicas to buy?

Two questions an operator deploying the paper's defense must answer, both
answerable from the library's closed forms and simulators:

1. **Estimability (Theorem 1).**  Attack-scale estimation breaks down when
   every shuffling replica is attacked; the replica pool must satisfy
   ``M <= log_{1-1/P}(1/P)``.  This script prints the minimum pool size
   for a range of anticipated botnet sizes.

2. **Mitigation speed vs cost (Figure 9's trade-off).**  More shuffling
   replicas mean fewer (and therefore faster) shuffles until a target
   fraction of benign clients is rescued.  The script sweeps replica
   budgets for a fixed attack and reports the shuffle counts, giving the
   cost/speed frontier.

Run with::

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.analysis.theory import (
    expected_unattacked_replicas,
    max_estimable_bots,
    min_replicas_for_bots,
)
from repro.sim.shuffle_sim import ShuffleScenario, run_scenario


def estimability_table() -> None:
    print("== Theorem 1: replicas needed to keep attack-scale estimation "
          "informative ==")
    print(f"{'anticipated bots':>16}  {'min replicas':>12}  "
          f"{'E[bot-free] at that P':>22}")
    for bots in (100, 1_000, 10_000, 100_000):
        replicas = min_replicas_for_bots(bots)
        free = expected_unattacked_replicas(replicas, bots)
        print(f"{bots:>16,}  {replicas:>12,}  {free:>22.2f}")
    print()
    for replicas in (100, 1_000, 10_000):
        print(f"  a pool of {replicas:>6,} replicas can estimate up to "
              f"~{max_estimable_bots(replicas):,.0f} bots")
    print()


def mitigation_frontier() -> None:
    print("== mitigation speed vs replica budget "
          "(20K benign, 40K bots, 80% target) ==")
    print(f"{'replicas':>8}  {'shuffles (mean ± 99% CI)':>26}")
    for replicas in (500, 750, 1_000, 1_500, 2_000):
        result = run_scenario(
            ShuffleScenario(
                benign=20_000,
                bots=40_000,
                n_replicas=replicas,
                target_fraction=0.8,
            ),
            repetitions=5,
            seed=1,
        )
        print(f"{replicas:>8,}  {result.shuffles.format(1):>26}")
    print()
    print("each shuffle costs a few seconds of user-perceived latency "
          "(Figure 12), so the")
    print("replica budget directly buys mitigation time - the paper's "
          "cloud-elasticity argument.")


def main() -> None:
    estimability_table()
    mitigation_frontier()


if __name__ == "__main__":
    main()
