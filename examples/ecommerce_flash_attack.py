"""An e-commerce site rides out a combined network + insider DDoS attack.

This is the paper's motivating scenario (Section I: "popular open web
services such as e-commerce ... are among the top targets") played out in
the full discrete-event architecture simulation:

- the storefront runs on a handful of replicas across two cloud domains;
- 150 shoppers browse it with ordinary think times;
- a botnet infiltrates 12 persistent bots that blend with the shoppers,
  betray every replica address they learn, and trigger a 60K pps naive
  flood plus insider computational requests;
- the coordination server detects the overloads, spins up replacement
  replicas at fresh addresses, shuffles the affected shoppers onto them,
  and recycles the bombarded instances.

The run prints a QoS timeline showing service collapse and recovery, then
the defense-side summary.

Run with::

    python examples/ecommerce_flash_attack.py
"""

from __future__ import annotations

from repro.cloudsim import CloudConfig, CloudDefenseSystem


def main() -> None:
    config = CloudConfig(
        n_domains=2,
        initial_replicas_per_domain=2,
        naive_pps=60_000.0,          # strong network flood
        shuffle_replicas=8,
        boot_delay=3.0,
        detection_interval=1.0,
    )
    system = CloudDefenseSystem(config, seed=2014)
    system.add_benign_clients(150, prefix="shopper")
    system.add_persistent_bots(12, prefix="infiltrator")

    print("running 240 simulated seconds of a flash DDoS on the "
          "storefront...\n")
    report = system.run(duration=240.0)

    print("time  ok-rate  latency  attacked/active  shuffles")
    print("----  -------  -------  ---------------  --------")
    for sample in report.samples:
        if int(sample.time) % 10 != 0:
            continue
        print(
            f"{sample.time:4.0f}  {sample.success_ratio:7.1%}  "
            f"{sample.mean_latency * 1000:5.0f}ms  "
            f"{sample.attacked_replicas:7d}/{sample.active_replicas:<7d}  "
            f"{sample.shuffles_completed:8d}"
        )

    print()
    print(report.describe())
    print(f"benign requests succeeded overall:     "
          f"{report.benign_success_overall:.1%}")
    print(f"benign requests succeeded (last 60 s): "
          f"{report.benign_success_last_quarter:.1%}")
    print(f"mean migrations per shopper:           "
          f"{report.benign_migrations:.2f}")
    print(f"flood packets wasted on recycled replicas: "
          f"{report.naive_waste_ratio:.1%}")
    print(f"shoppers still sharing a replica with a bot: "
          f"{report.bots_colocated_benign}/150")

    if report.benign_success_last_quarter > 0.9:
        print("\nthe moving-target defense restored quality of service.")
    else:
        print("\nservice still degraded - try more shuffle replicas.")


if __name__ == "__main__":
    main()
