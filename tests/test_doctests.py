"""Run the executable examples embedded in docstrings.

Docstring examples are API documentation; if they drift from the code
they are worse than no examples.  This collector runs doctest over every
module that carries ``>>>`` snippets.
"""

from __future__ import annotations

import doctest

import pytest

import repro.analysis.theory
import repro.core.combinatorics
import repro.core.estimator
import repro.core.even
import repro.core.greedy

MODULES_WITH_EXAMPLES = [
    repro.analysis.theory,
    repro.core.combinatorics,
    repro.core.estimator,
    repro.core.even,
    repro.core.greedy,
]


@pytest.mark.parametrize(
    "module",
    MODULES_WITH_EXAMPLES,
    ids=lambda module: module.__name__,
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its examples"
    assert results.failed == 0
