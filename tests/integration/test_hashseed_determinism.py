"""Hash-seed independence: the simulation must not depend on PYTHONHASHSEED.

Python randomizes ``str`` hashing per process, so ``set`` iteration and
(pre-3.7) dict order vary between runs.  The reproducibility contract —
enforced statically by reprolint's P3 pass — is that no such order ever
reaches the DES event heap or an RNG draw.  These tests are the dynamic
counterpart: the same seeded simulation, executed in two fresh
interpreters with *different* hash seeds, must produce byte-identical
traces and metrics.

CI runs these as a dedicated job (``-m hashseed``); they are also part
of the default suite because they are cheap (two short subprocesses).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.hashseed

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

CLOUDSIM_DIGEST_SCRIPT = """
import hashlib
import json

from repro.cloudsim import CloudDefenseSystem, Tracer

system = CloudDefenseSystem(seed=7)
tracer = Tracer()
system.ctx.attach_tracer(tracer)
system.add_benign_clients(30)
system.add_persistent_bots(4)
report = system.run(duration=60.0)

metrics = {
    "shuffles": report.shuffles,
    "recycled": report.replicas_recycled,
    "benign_success_overall": round(report.benign_success_overall, 12),
    "benign_success_last_quarter": round(
        report.benign_success_last_quarter, 12
    ),
    "benign_mean_latency": round(report.benign_mean_latency, 12),
    "benign_migrations": round(report.benign_migrations, 12),
    "naive_waste_ratio": round(report.naive_waste_ratio, 12),
    "quarantined_bots": report.quarantined_bots,
    "bots_colocated_benign": report.bots_colocated_benign,
}
payload = tracer.to_jsonl() + "\\n" + json.dumps(metrics, sort_keys=True)
print(hashlib.sha256(payload.encode()).hexdigest())
"""

CAMPAIGN_DIGEST_SCRIPT = """
import hashlib
import json

from repro.sim import AttackWave, CampaignConfig, run_campaign

config = CampaignConfig(
    waves=(
        AttackWave(start_hour=1.0, bots=500, benign=200),
        AttackWave(start_hour=9.0, bots=1500, benign=400),
    ),
    horizon_hours=24.0,
    shuffle_replicas=50,
)
result = run_campaign(config, seed=3)
payload = json.dumps(
    {
        "total_shuffles": result.total_shuffles,
        "replica_hours_reactive": round(result.replica_hours_reactive, 12),
        "reactive_saving": round(result.reactive_saving, 12),
        "outcomes": [
            {
                "shuffles": o.shuffles,
                "saved_fraction": round(o.saved_fraction, 12),
                "mitigation_hours": round(o.mitigation_hours, 12),
            }
            for o in result.outcomes
        ],
    },
    sort_keys=True,
)
print(hashlib.sha256(payload.encode()).hexdigest())
"""


def _digest_under_hashseed(script: str, hash_seed: str) -> str:
    """Run ``script`` in a fresh interpreter with a pinned hash seed."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        check=True,
    )
    digest = completed.stdout.strip()
    assert len(digest) == 64, f"unexpected digest output: {digest!r}"
    return digest


def test_hash_randomization_actually_differs():
    """Sanity: the two environments really do hash strings differently."""
    probe = "print(hash('replica-1'))"
    env_hashes = set()
    for seed in ("1", "2"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        out = subprocess.run(
            [sys.executable, "-c", probe],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        env_hashes.add(out)
    assert len(env_hashes) == 2, (
        "PYTHONHASHSEED had no effect; the determinism tests below "
        "would be vacuous"
    )


def test_cloudsim_trace_is_hashseed_independent():
    digests = {
        _digest_under_hashseed(CLOUDSIM_DIGEST_SCRIPT, seed)
        for seed in ("1", "2")
    }
    assert len(digests) == 1, (
        "cloud simulation trace/metrics differ across PYTHONHASHSEED "
        "values — some set/dict iteration order leaks into event order"
    )


def test_campaign_metrics_are_hashseed_independent():
    digests = {
        _digest_under_hashseed(CAMPAIGN_DIGEST_SCRIPT, seed)
        for seed in ("1", "2")
    }
    assert len(digests) == 1, (
        "campaign metrics differ across PYTHONHASHSEED values"
    )
