"""End-to-end integration tests across the whole stack.

These exercise the complete defense pipeline — DNS, load balancers,
replicas, coordinator, botnet, clients — under the adversary strategies
discussed in paper Sections II-B and VII, and check the system-level
outcomes the paper promises.
"""

from __future__ import annotations

from repro.cloudsim import CloudConfig, CloudDefenseSystem


def attacked_fraction_timeline(report):
    return [
        sample.attacked_replicas / max(1, sample.active_replicas)
        for sample in report.samples
    ]


class TestNaiveOnlyAttack:
    def test_moving_target_evades_static_hitlist(self):
        """A hit-list that is never refreshed is defeated by replacement.

        We emulate naive-only attackers by revealing the initial replica
        addresses once (as if leaked) with no persistent bots to follow
        the moved replicas: after one substitution cycle the flood hits
        only null-routed addresses.
        """
        system = CloudDefenseSystem(CloudConfig(naive_pps=50_000.0), seed=7)
        system.add_benign_clients(60)
        system.build()
        # One-time leak of every current replica address.
        system.botnet.prune_delay = 1e9  # naive fleet never re-coordinates
        for replica in system.ctx.active_replicas():
            system.botnet.reveal(replica.endpoint.address)
        report = system.run(duration=120.0)
        assert report.shuffles >= 1
        # With nobody revealing the new locations, the tail is clean and
        # almost all flood packets are wasted on recycled replicas.
        assert report.benign_success_last_quarter > 0.95
        assert system.botnet.waste_ratio > 0.5


class TestPersistentAttack:
    def test_qos_degrades_then_recovers(self):
        system = CloudDefenseSystem(seed=11)
        system.add_benign_clients(100)
        system.add_persistent_bots(10)
        report = system.run(duration=200.0)
        assert report.shuffles >= 1
        assert report.benign_success_last_quarter > 0.9
        # Moving targets cost the botnet effort: some waste must appear.
        assert report.naive_waste_ratio > 0.0

    def test_defense_disabled_stays_degraded(self):
        """Ablation: without monitoring, the attack persists unmitigated."""
        protected = CloudDefenseSystem(seed=13)
        protected.add_benign_clients(60)
        protected.add_persistent_bots(8)
        protected_report = protected.run(duration=150.0)

        unprotected = CloudDefenseSystem(seed=13)
        unprotected.add_benign_clients(60)
        unprotected.add_persistent_bots(8)
        unprotected.build()
        unprotected.ctx.coordinator.stop_monitoring()
        unprotected_report = unprotected.run(duration=150.0)

        assert unprotected_report.shuffles == 0
        assert (
            protected_report.benign_success_last_quarter
            > unprotected_report.benign_success_last_quarter
        )

    def test_computational_attack_mitigated(self):
        config = CloudConfig(naive_pps=0.0)
        system = CloudDefenseSystem(config, seed=17)
        system.add_benign_clients(60)
        system.add_persistent_bots(8, computational=True)
        report = system.run(duration=200.0)
        assert report.shuffles >= 1
        assert report.benign_success_last_quarter > 0.85


class TestOnOffAttack:
    def test_onoff_bots_only_reduce_intensity(self):
        """Section VII: going quiet buys the attacker nothing structural —
        'they will only lead to a reduced DDoS attack intensity'.

        Benign QoS with on-off bots must be no worse than with always-on
        bots, and the defense must still mitigate whatever attacks do land.
        """
        aggressive = CloudDefenseSystem(seed=19)
        aggressive.add_benign_clients(80)
        aggressive.add_persistent_bots(10)
        aggressive_report = aggressive.run(duration=200.0)

        sneaky = CloudDefenseSystem(seed=19)
        sneaky.add_benign_clients(80)
        sneaky.add_persistent_bots(10, on_off=True, off_duration=40.0)
        sneaky_report = sneaky.run(duration=200.0)

        assert (
            sneaky_report.benign_success_overall
            >= aggressive_report.benign_success_overall - 0.05
        )
        assert sneaky_report.benign_success_last_quarter > 0.9
        assert aggressive_report.benign_success_last_quarter > 0.9


class TestConservation:
    def test_every_benign_client_has_a_home_after_attack(self):
        system = CloudDefenseSystem(seed=23)
        system.add_benign_clients(50)
        system.add_persistent_bots(5)
        system.run(duration=150.0)
        for client in system.benign:
            assert client.replica_endpoint is not None
            replica = system.ctx.replica_at(client.replica_endpoint)
            # Either the replica is alive and the client whitelisted, or
            # the client is mid-rejoin (replica retired moments ago).
            if replica is not None and replica.is_active:
                assert client.client_id in replica.whitelist

    def test_simulator_clock_consistent(self):
        system = CloudDefenseSystem(seed=29)
        system.add_benign_clients(20)
        system.add_persistent_bots(3)
        report = system.run(duration=60.0)
        assert system.ctx.sim.now >= 60.0
        times = [s.time for s in report.samples]
        assert times == sorted(times)
