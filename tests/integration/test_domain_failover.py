"""Domain-level disruption: the multi-domain deployment absorbs it.

The paper deploys across multiple cloud domains precisely so that no
single domain is a point of failure ("deploying multiple load balancers
per cloud domain and having more cloud domains can improve attack
resiliency and fault tolerance", §III-B).  These tests knock out an entire
domain's replicas and check that service continues from the others.
"""

from __future__ import annotations

from repro.cloudsim.system import CloudConfig, CloudDefenseSystem


class TestDomainOutage:
    def test_clients_fail_over_to_surviving_domain(self):
        config = CloudConfig(
            n_domains=2, initial_replicas_per_domain=2, boot_delay=2.0
        )
        system = CloudDefenseSystem(config, seed=71)
        system.add_benign_clients(40)
        system.ctx.sim.run_until(10.0)

        # Annihilate every replica in cloud-0.
        dead_domain = system.ctx.domains[0]
        for replica in list(system.ctx.active_replicas()):
            if replica.endpoint.domain == dead_domain:
                system.ctx.fail_replica(replica)

        report = system.run(duration=90.0)
        # Clients stranded in the dead domain re-entered and resumed.
        stranded_rejoined = sum(
            client.stats.rejoins for client in system.benign
        )
        assert stranded_rejoined > 0
        assert report.benign_success_last_quarter > 0.9
        for client in system.benign:
            assert client.replica_endpoint is not None

    def test_healing_rebuilds_the_dead_domain(self):
        config = CloudConfig(
            n_domains=2, initial_replicas_per_domain=3, boot_delay=1.0
        )
        system = CloudDefenseSystem(config, seed=72)
        system.build()
        dead_domain = system.ctx.domains[1]
        for replica in list(system.ctx.active_replicas()):
            if replica.endpoint.domain == dead_domain:
                system.ctx.fail_replica(replica)
        system.run(duration=30.0)
        rebuilt = [
            replica
            for replica in system.ctx.active_replicas()
            if replica.endpoint.domain == dead_domain
        ]
        assert len(rebuilt) >= config.initial_replicas_per_domain

    def test_attack_during_partial_outage_still_mitigated(self):
        config = CloudConfig(
            n_domains=2, initial_replicas_per_domain=2, boot_delay=1.0
        )
        system = CloudDefenseSystem(config, seed=73)
        system.add_benign_clients(60)
        system.add_persistent_bots(6)
        system.ctx.sim.run_until(15.0)
        # One domain loses half its fleet mid-attack.
        victims = [
            replica
            for replica in system.ctx.active_replicas()
            if replica.endpoint.domain == system.ctx.domains[0]
        ][:1]
        for replica in victims:
            system.ctx.fail_replica(replica)
        report = system.run(duration=150.0)
        assert report.shuffles >= 1
        assert report.benign_success_last_quarter > 0.85
