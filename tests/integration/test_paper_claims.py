"""Integration tests pinning the paper's cross-cutting quantitative claims.

Each test names the paper statement it checks.  Absolute numbers are held
to *shape* tolerances (our substrate is a simulator, not the authors'
Matlab/EC2 testbed); orderings and rough factors are asserted strictly.
"""

from __future__ import annotations

import numpy as np
from repro.core.dp_fast import dp_fast_value
from repro.core.greedy import greedy_plan
from repro.sim.shuffle_sim import ShuffleScenario, run_scenario


class TestAbstractClaims:
    def test_headline_60_shuffles(self):
        """Abstract: 'mitigate ... 100K persistent attackers by saving 80%
        of 50K benign clients in approximately 60 shuffles'."""
        result = run_scenario(
            ShuffleScenario(
                benign=50_000, bots=100_000, n_replicas=1000,
                target_fraction=0.8,
            ),
            repetitions=3,
            seed=1,
        )
        assert 30 <= result.mean_shuffles <= 120
        assert result.saved_fraction.mean >= 0.8


class TestSectionVIClaims:
    def test_tenfold_bots_less_than_threefold_shuffles(self):
        """Fig. 8 text: 'a ten-fold increase in the number of persistent
        bots results in less than three-fold increase in shuffles'."""
        small = run_scenario(
            ShuffleScenario(benign=50_000, bots=10_000, n_replicas=1000,
                            target_fraction=0.8),
            repetitions=3, seed=2,
        )
        large = run_scenario(
            ShuffleScenario(benign=50_000, bots=100_000, n_replicas=1000,
                            target_fraction=0.8),
            repetitions=3, seed=2,
        )
        ratio = large.mean_shuffles / small.mean_shuffles
        assert ratio < 3.0
        assert ratio > 1.0

    def test_95_percent_costs_at_least_40_percent_more(self):
        """Fig. 8/9 text: saving 95% takes >40% more shuffles than 80%."""
        base = dict(benign=10_000, bots=50_000, n_replicas=1000)
        at80 = run_scenario(
            ShuffleScenario(**base, target_fraction=0.8),
            repetitions=3, seed=3,
        )
        at95 = run_scenario(
            ShuffleScenario(**base, target_fraction=0.95),
            repetitions=3, seed=3,
        )
        assert at95.mean_shuffles > 1.4 * at80.mean_shuffles

    def test_more_replicas_steadily_fewer_shuffles(self):
        """Fig. 9: shuffle count drops steadily as replicas are added."""
        means = []
        for replicas in (900, 1400, 2000):
            result = run_scenario(
                ShuffleScenario(benign=10_000, bots=100_000,
                                n_replicas=replicas, target_fraction=0.8),
                repetitions=3, seed=4,
            )
            means.append(result.mean_shuffles)
        assert means[0] > means[1] > means[2]

    def test_early_shuffles_save_more(self):
        """Fig. 10: 'early shuffles separate more benign clients'."""
        result = run_scenario(
            ShuffleScenario(benign=10_000, bots=100_000, n_replicas=1000,
                            target_fraction=0.95),
            repetitions=3, seed=5,
        )
        per_round = np.array(result.runs[0].saved_per_round, dtype=float)
        half = len(per_round) // 2
        assert per_round[:half].sum() > per_round[half:].sum()


class TestSectionIVClaims:
    def test_greedy_near_optimal_at_paper_scale(self):
        """Fig. 3: greedy and optimal DP curves overlap."""
        for bots in (100, 300, 500):
            for replicas in (50, 200):
                greedy_value = greedy_plan(1000, bots, replicas).expected_saved
                optimal = dp_fast_value(1000, bots, replicas)
                assert greedy_value >= 0.99 * optimal

    def test_even_distribution_fails_when_bots_exceed_replicas(self):
        """Fig. 4: 'saving almost no benign clients when bots >> replicas'."""
        from repro.core.even import even_plan

        plan = even_plan(1000, 500, 100)
        assert plan.expected_saved / 500 < 0.01


class TestSectionVClaims:
    def test_mle_accurate_until_saturation(self):
        """Fig. 7: estimation accurate 'unless nearly all shuffling replica
        servers are under attack'."""
        from repro.experiments.fig7 import run_fig7

        rows = run_fig7(
            n_clients=10_000, n_replicas=100,
            bot_counts=(50, 100, 200, 600), repeats=10, seed=6,
        )
        for row in rows[:3]:
            assert abs(row.relative_error) < 0.35
        assert rows[-1].estimate.mean > 1.5 * rows[-1].real_bots

    def test_theorem1_predicts_saturation(self):
        """Theorem 1 threshold separates the two Fig. 7 regimes."""
        from repro.analysis.theory import max_estimable_bots

        threshold = max_estimable_bots(100)
        rows_below = 100 * (1 - 1 / 100) ** (threshold * 0.5)
        rows_above = 100 * (1 - 1 / 100) ** (threshold * 2.0)
        assert rows_below > 1.0  # expected bot-free replicas exist
        assert rows_above < 1.0  # everything attacked w.h.p.
