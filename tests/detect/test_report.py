"""Heavy-hitter reports: obs-event interchange and suspect naming."""

from __future__ import annotations

import json

import pytest

from repro.detect import HeavyHitter, HeavyHitterReport
from repro.obs import Event


def _report(**overrides) -> HeavyHitterReport:
    fields = dict(
        replica_id="r-3",
        time=12.5,
        window=1.0,
        total=200,
        throttled=150,
        top=(
            HeavyHitter(key="bot-1", count=90, error=0),
            HeavyHitter(key="bot-2", count=70, error=10),
            HeavyHitter(key="c-5", count=8, error=3),
        ),
        state_bytes=22_080,
    )
    fields.update(overrides)
    return HeavyHitterReport(**fields)


class TestInterchange:
    def test_event_round_trip_is_lossless(self):
        report = _report()
        event = report.to_event(source="service")
        assert event.kind == "heavy_hitters"
        assert event.source == "service"
        assert HeavyHitterReport.from_event(event) == report

    def test_integer_replica_ids_survive_the_round_trip(self):
        report = _report(replica_id=7)
        restored = HeavyHitterReport.from_event(report.to_event())
        assert restored.replica_id == 7

    def test_payload_is_json_ready(self):
        payload = _report().to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["top"][0] == ["bot-1", 90, 0]

    def test_from_event_rejects_other_kinds(self):
        event = Event(time=1.0, kind="shuffle", data={})
        with pytest.raises(ValueError):
            HeavyHitterReport.from_event(event)

    def test_missing_optional_fields_default(self):
        event = Event(
            time=3.0,
            kind="heavy_hitters",
            data={
                "replica": "r-1", "window": 1.0,
                "total": 10, "throttled": 2,
            },
        )
        report = HeavyHitterReport.from_event(event)
        assert report.top == ()
        assert report.state_bytes == 0


class TestVerdicts:
    def test_throttle_ratio(self):
        assert _report().throttle_ratio == pytest.approx(0.75)
        assert _report(total=0, throttled=0).throttle_ratio == 0.0

    def test_suspects_use_guaranteed_counts_only(self):
        # bot-1: 90/200 guaranteed; bot-2: (70-10)/200 = 0.30;
        # c-5: (8-3)/200 = 0.025 — below a 10% floor.
        assert _report().suspects(min_share=0.1) == ["bot-1", "bot-2"]
        assert _report().suspects(min_share=0.4) == ["bot-1"]

    def test_suspects_on_an_empty_window(self):
        assert _report(total=0, throttled=0, top=()).suspects(0.1) == []
