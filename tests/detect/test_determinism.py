"""Detection state must not depend on PYTHONHASHSEED.

The sketches hash keys with blake2b and multiply-shift coefficients
from a SeedSequence; the space-saving summary breaks ties on the key
itself.  Nothing may consult Python's per-process randomized ``hash()``
— otherwise two replicas (or a replica and the coordinator replaying
its events) could disagree about who the heavy hitters are.  Same
pattern as the cloudsim trace test: one deterministic script, two fresh
interpreters with different hash seeds, byte-identical digests.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.hashseed

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

DETECT_DIGEST_SCRIPT = """
import hashlib
import random

import numpy as np

from repro.detect import (
    CountMinSketch, SketchParams, SketchWindow, SpaceSaving, key_digests,
)

rng = random.Random(1234)
keys = [f"bot-{i % 7}" if i % 3 == 0 else f"c-{i % 400}"
        for i in range(5000)]
rng.shuffle(keys)

# Scalar + batch sketch ingestion, then shard merges in a shuffled
# order — every one of these must be hash-seed blind.
scalar = CountMinSketch(width=136, depth=5)
for key in keys[:1000]:
    scalar.add(key)
batch = CountMinSketch(width=136, depth=5)
batch.add_batch(key_digests(keys))

shards = []
for lo in range(0, 5000, 1000):
    shard = CountMinSketch(width=136, depth=5)
    shard.add_batch(key_digests(keys[lo:lo + 1000]))
    shards.append(shard)
rng.shuffle(shards)
merged = CountMinSketch.merge_all(shards)

summary_shards = []
for lo in range(0, 5000, 1000):
    summary = SpaceSaving(8)
    for key in keys[lo:lo + 1000]:
        summary.add(key)
    summary_shards.append(summary)
rng.shuffle(summary_shards)
summary = SpaceSaving.merge_all(summary_shards)

window = SketchWindow(1.0, SketchParams(), epochs=4)
for step, lo in enumerate(range(0, 5000, 1000)):
    chunk = keys[lo:lo + 1000]
    window.record_batch(
        step * 0.2, key_digests(chunk), throttled=100, keys=chunk
    )
now = 4 * 0.2
report_rows = ";".join(
    f"{h.key}={h.count}~{h.error}" for h in window.heavy_hitters(now)
)

payload = b"|".join([
    scalar.to_bytes(),
    batch.to_bytes(),
    merged.to_bytes(),
    summary.to_bytes(),
    window.hitter_summary(now).to_bytes(),
    str(window.counts(now)).encode(),
    report_rows.encode(),
])
print(hashlib.sha256(payload).hexdigest())
"""


def _digest_under_hashseed(script: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        check=True,
    )
    digest = completed.stdout.strip()
    assert len(digest) == 64, f"unexpected digest output: {digest!r}"
    return digest


def test_detection_state_is_hashseed_independent():
    digests = {
        _digest_under_hashseed(DETECT_DIGEST_SCRIPT, seed)
        for seed in ("1", "2")
    }
    assert len(digests) == 1, (
        "sketch/summary bytes differ across PYTHONHASHSEED values — "
        "some hash()-ordered container leaks into detection state"
    )
