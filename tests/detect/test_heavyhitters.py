"""Space-saving summary: recall, count brackets, deterministic merging."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.detect import HeavyHitter, SpaceSaving

streams = st.lists(
    st.tuples(st.integers(0, 30), st.integers(1, 50)),
    min_size=1, max_size=200,
)


def _replay(stream, capacity: int = 8) -> tuple[SpaceSaving, Counter]:
    summary = SpaceSaving(capacity)
    true: Counter = Counter()
    for idx, count in stream:
        key = f"k-{idx}"
        summary.add(key, count)
        true[key] += count
    return summary, true


class TestGuarantees:
    @given(streams)
    def test_recall_above_guaranteed_threshold(self, stream):
        """Any key whose true count exceeds total/capacity cannot have
        been evicted — the space-saving promise."""
        summary, true = _replay(stream)
        threshold = summary.guaranteed_threshold()
        for key, count in true.items():
            if count > threshold:
                assert key in summary

    @given(streams)
    def test_reported_counts_bracket_the_truth(self, stream):
        summary, true = _replay(stream)
        for hitter in summary.top():
            assert hitter.count >= true[hitter.key]
            assert hitter.count - hitter.error <= true[hitter.key]

    @given(streams)
    def test_total_and_size_bounds(self, stream):
        summary, true = _replay(stream, capacity=4)
        assert summary.total == sum(true.values())
        assert len(summary) <= 4
        assert len(summary.top()) == len(summary)

    def test_untracked_key_estimates_zero(self):
        summary = SpaceSaving(2)
        summary.add("a", 5)
        assert summary.estimate("a") == 5
        assert summary.estimate("never-seen") == 0


class TestEviction:
    def test_newcomer_inherits_the_minimum_as_floor(self):
        summary = SpaceSaving(2)
        summary.add("a", 10)
        summary.add("b", 3)
        summary.add("c", 1)  # evicts b (count 3): c = 3 + 1, error 3
        assert "b" not in summary
        top = summary.top()
        assert top[0] == HeavyHitter(key="a", count=10, error=0)
        assert top[1] == HeavyHitter(key="c", count=4, error=3)

    def test_eviction_ties_break_on_key_not_insertion_order(self):
        summary = SpaceSaving(2)
        summary.add("zz", 2)
        summary.add("aa", 2)
        summary.add("new", 1)  # tie at count 2: evict "aa" (smaller key)
        assert "aa" not in summary
        assert "zz" in summary and "new" in summary

    def test_top_ranks_by_count_then_key(self):
        summary = SpaceSaving(4)
        for key in ("b", "a", "c"):
            summary.add(key, 5)
        summary.add("c", 1)
        assert [h.key for h in summary.top()] == ["c", "a", "b"]
        assert [h.key for h in summary.top(2)] == ["c", "a"]


class TestMerge:
    @given(st.lists(streams, min_size=2, max_size=4))
    def test_merge_is_shard_order_independent(self, shards):
        summaries = [_replay(shard)[0] for shard in shards]
        forward = SpaceSaving.merge_all(summaries)
        backward = SpaceSaving.merge_all(summaries[::-1])
        assert forward.to_bytes() == backward.to_bytes()

    @given(st.lists(streams, min_size=2, max_size=3))
    def test_merge_preserves_total_and_capacity_bound(self, shards):
        summaries = [_replay(shard, capacity=4)[0] for shard in shards]
        merged = SpaceSaving.merge_all(summaries)
        assert merged.total == sum(s.total for s in summaries)
        assert len(merged) <= merged.capacity

    def test_merge_sums_per_key_counts_and_errors(self):
        left = SpaceSaving(4)
        right = SpaceSaving(4)
        left.add("bot", 40)
        right.add("bot", 60)
        right.add("benign", 2)
        merged = left.merge(right)
        assert merged.estimate("bot") == 100
        top = merged.top(1)[0]
        assert top.key == "bot" and top.error == 0

    def test_merge_all_rejects_empty_input(self):
        with pytest.raises(ValueError):
            SpaceSaving.merge_all([])


class TestStateAndValidation:
    def test_reset_restores_empty_state(self):
        summary = SpaceSaving(4)
        empty = summary.to_bytes()
        summary.add("a", 3)
        summary.reset()
        assert summary.to_bytes() == empty
        assert summary.total == 0

    def test_state_bytes_bounded_by_capacity(self):
        summary = SpaceSaving(8)
        for i in range(10_000):
            summary.add(f"client-{i:05d}")
        assert len(summary) == 8
        # 8 keys of ~12 chars + 16 bytes of counters each.
        assert summary.state_bytes() < 8 * (16 + 16)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)
        summary = SpaceSaving(2)
        with pytest.raises(ValueError):
            summary.add("k", -1)

    def test_heavy_hitter_row_shape(self):
        hitter = HeavyHitter(key="bot", count=7, error=2)
        assert hitter.to_list() == ["bot", 7, 2]
