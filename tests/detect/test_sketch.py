"""Count-min sketch: the guarantees the detection path stands on."""

from __future__ import annotations

import math
from collections import Counter

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.detect import CountMinSketch, key_digest, key_digests

# A stream is a list of (key-index, count) pairs; small key spaces force
# collisions, large counts exercise the weighted paths.
streams = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 50)),
    min_size=1, max_size=200,
)


def _true_counts(stream) -> Counter:
    totals: Counter = Counter()
    for idx, count in stream:
        totals[f"k-{idx}"] += count
    return totals


class TestDigests:
    def test_digest_is_stable_and_64_bit(self):
        value = key_digest("client-1")
        assert value == key_digest("client-1")
        assert value == key_digest(b"client-1")
        assert 0 <= value < 2**64

    def test_digest_batch_matches_scalar(self):
        keys = [f"c-{i}" for i in range(10)]
        batch = key_digests(keys)
        assert batch.dtype == np.uint64
        assert [int(d) for d in batch] == [key_digest(k) for k in keys]


class TestGuarantees:
    @given(streams)
    def test_estimate_never_undercounts(self, stream):
        sketch = CountMinSketch(width=32, depth=4)
        for idx, count in stream:
            sketch.add(f"k-{idx}", count)
        for key, true in _true_counts(stream).items():
            assert sketch.estimate(key) >= true

    @given(streams)
    def test_overestimate_within_epsilon_n(self, stream):
        """estimate - true <= e/width * N except with probability
        ~e^-depth per key; blake2b digests are data-independent, so the
        violation budget is the union bound with one key of slack."""
        sketch = CountMinSketch(width=64, depth=5)
        for idx, count in stream:
            sketch.add(f"k-{idx}", count)
        true = _true_counts(stream)
        bound = sketch.error_bound()
        violations = sum(
            1 for key, t in true.items()
            if sketch.estimate(key) - t > bound
        )
        delta = math.exp(-sketch.depth)
        assert violations <= math.ceil(delta * len(true)) + 1

    @given(streams)
    def test_total_tracks_stream_mass(self, stream):
        sketch = CountMinSketch(width=16, depth=3)
        for idx, count in stream:
            sketch.add(f"k-{idx}", count)
        assert sketch.total == sum(count for _, count in stream)

    def test_unseen_key_estimate_is_collision_noise_only(self):
        sketch = CountMinSketch(width=1024, depth=5)
        sketch.add("present", 100)
        # With one key in a wide sketch a disjoint key reads zero.
        assert sketch.estimate("absent") == 0


class TestBatchPath:
    @given(streams)
    def test_batch_estimates_never_undercount(self, stream):
        sketch = CountMinSketch(width=32, depth=4)
        keys = [f"k-{idx}" for idx, _ in stream]
        counts = np.array([c for _, c in stream], dtype=np.int64)
        estimates = sketch.add_batch(key_digests(keys), counts)
        assert estimates.shape == (len(stream),)
        true = _true_counts(stream)
        for key, t in true.items():
            assert sketch.estimate(key) >= t

    @given(streams)
    def test_batch_is_order_independent(self, stream):
        """Duplicates aggregate before the counter update, so any
        permutation of one batch produces byte-identical state."""
        keys = [f"k-{idx}" for idx, _ in stream]
        counts = np.array([c for _, c in stream], dtype=np.int64)
        order = np.arange(len(stream))
        reversed_order = order[::-1]
        forward = CountMinSketch(width=32, depth=4)
        forward.add_batch(key_digests(keys), counts)
        backward = CountMinSketch(width=32, depth=4)
        backward.add_batch(
            key_digests([keys[i] for i in reversed_order]),
            counts[reversed_order],
        )
        assert forward.to_bytes() == backward.to_bytes()

    @given(streams)
    def test_plain_batch_matches_scalar_exactly(self, stream):
        """Without conservative update the counters are pure sums, so
        the scalar and batch paths agree byte for byte."""
        scalar = CountMinSketch(width=32, depth=4, conservative=False)
        for idx, count in stream:
            scalar.add(f"k-{idx}", count)
        batch = CountMinSketch(width=32, depth=4, conservative=False)
        keys = [f"k-{idx}" for idx, _ in stream]
        counts = np.array([c for _, c in stream], dtype=np.int64)
        batch.add_batch(key_digests(keys), counts)
        assert scalar.to_bytes() == batch.to_bytes()

    @given(streams)
    def test_conservative_batch_dominated_by_plain(self, stream):
        """Conservative update never reads higher than the plain sketch
        (that is its point: strictly less overestimate)."""
        plain = CountMinSketch(width=16, depth=3, conservative=False)
        cons = CountMinSketch(width=16, depth=3, conservative=True)
        keys = [f"k-{idx}" for idx, _ in stream]
        counts = np.array([c for _, c in stream], dtype=np.int64)
        digests = key_digests(keys)
        plain.add_batch(digests, counts)
        cons.add_batch(digests, counts)
        for key in {k for k, _ in _true_counts(stream).items()}:
            assert cons.estimate(key) <= plain.estimate(key)

    def test_estimate_batch_matches_scalar_queries(self):
        sketch = CountMinSketch(width=64, depth=4)
        keys = [f"k-{i % 7}" for i in range(50)]
        sketch.add_batch(key_digests(keys))
        digests = key_digests([f"k-{i}" for i in range(10)])
        batch = sketch.estimate_batch(digests)
        assert [int(v) for v in batch] == [
            sketch.estimate_digest(int(d)) for d in digests
        ]

    def test_empty_batch_is_a_no_op(self):
        sketch = CountMinSketch(width=8, depth=2)
        out = sketch.add_batch(np.zeros(0, dtype=np.uint64))
        assert out.size == 0
        assert sketch.total == 0
        assert sketch.estimate_batch(np.zeros(0, dtype=np.uint64)).size == 0


class TestMerge:
    @given(st.lists(streams, min_size=2, max_size=4))
    def test_merge_is_shard_order_independent(self, shards):
        def sketch_of(shard):
            sketch = CountMinSketch(width=32, depth=4)
            for idx, count in shard:
                sketch.add(f"k-{idx}", count)
            return sketch

        sketches = [sketch_of(shard) for shard in shards]
        forward = CountMinSketch.merge_all(sketches)
        backward = CountMinSketch.merge_all(sketches[::-1])
        assert forward.to_bytes() == backward.to_bytes()

    @given(st.lists(streams, min_size=2, max_size=4))
    def test_merged_estimate_covers_combined_stream(self, shards):
        sketches = []
        combined: Counter = Counter()
        for shard in shards:
            sketch = CountMinSketch(width=32, depth=4)
            for idx, count in shard:
                sketch.add(f"k-{idx}", count)
                combined[f"k-{idx}"] += count
            sketches.append(sketch)
        merged = CountMinSketch.merge_all(sketches)
        assert merged.total == sum(s.total for s in sketches)
        for key, true in combined.items():
            assert merged.estimate(key) >= true

    def test_pairwise_merge_leaves_inputs_untouched(self):
        left = CountMinSketch(width=16, depth=3)
        right = CountMinSketch(width=16, depth=3)
        left.add("a", 5)
        right.add("b", 7)
        merged = left.merge(right)
        assert merged.total == 12
        assert left.total == 5 and right.total == 7
        assert merged.estimate("a") >= 5 and merged.estimate("b") >= 7

    def test_incompatible_shapes_refuse_to_merge(self):
        base = CountMinSketch(width=16, depth=3)
        for other in (
            CountMinSketch(width=32, depth=3),
            CountMinSketch(width=16, depth=4),
            CountMinSketch(width=16, depth=3, seed=1),
        ):
            assert not base.compatible(other)
            with pytest.raises(ValueError):
                base.merge(other)
        with pytest.raises(ValueError):
            CountMinSketch.merge_all([])


class TestStateAndValidation:
    def test_reset_restores_empty_state(self):
        sketch = CountMinSketch(width=16, depth=3)
        empty_bytes = sketch.to_bytes()
        sketch.add("a", 10)
        sketch.reset()
        assert sketch.to_bytes() == empty_bytes
        assert sketch.total == 0

    def test_state_bytes_is_fixed_under_load(self):
        sketch = CountMinSketch(width=136, depth=5)
        before = sketch.state_bytes()
        sketch.add_batch(key_digests([f"c-{i}" for i in range(5000)]))
        assert sketch.state_bytes() == before

    def test_seed_changes_the_hash_family(self):
        a = CountMinSketch(width=64, depth=4, seed=0)
        b = CountMinSketch(width=64, depth=4, seed=1)
        digest = key_digest("probe")
        assert a._indices(digest) != b._indices(digest)

    @pytest.mark.parametrize("width,depth", [(0, 1), (1, 0), (-1, 2)])
    def test_rejects_degenerate_shapes(self, width, depth):
        with pytest.raises(ValueError):
            CountMinSketch(width=width, depth=depth)

    def test_rejects_negative_count(self):
        sketch = CountMinSketch(width=8, depth=2)
        with pytest.raises(ValueError):
            sketch.add("k", -1)
