"""Epoch-rotated sketch window: expiry, tallies, fixed memory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detect import SketchParams, SketchWindow, key_digests


def _window(window: float = 1.0, epochs: int = 4) -> SketchWindow:
    return SketchWindow(window, params=SketchParams(), epochs=epochs)


class TestTallies:
    def test_counts_and_throttle_ratio(self):
        window = _window()
        for admitted in (True, False, False, True):
            window.record(0.1, admitted, key="c-1")
        assert window.counts(0.1) == (4, 2)
        assert window.throttle_ratio(0.1) == pytest.approx(0.5)

    def test_record_without_key_moves_tallies_only(self):
        window = _window()
        window.record(0.1, True)
        window.record(0.1, False)
        assert window.counts(0.1) == (2, 1)
        assert window.heavy_hitters(0.1) == []

    def test_batch_and_scalar_tallies_agree(self):
        keys = [f"c-{i % 5}" for i in range(40)]
        throttled = 12
        scalar = _window()
        for i, key in enumerate(keys):
            scalar.record(0.2, i >= throttled, key=key)
        batch = _window()
        batch.record_batch(
            0.2, key_digests(keys), throttled=throttled, keys=keys
        )
        assert batch.counts(0.2) == scalar.counts(0.2) == (40, 12)

    def test_weighted_record_counts_every_packet(self):
        window = _window()
        window.record(0.1, False, key="naive-fleet", count=500)
        assert window.counts(0.1) == (500, 500)
        assert window.estimate(0.1, "naive-fleet") >= 500

    def test_empty_batch_is_a_no_op(self):
        window = _window()
        window.record_batch(0.1, np.zeros(0, dtype=np.uint64))
        assert window.counts(0.1) == (0, 0)


class TestExpiry:
    def test_window_slides_events_out(self):
        window = _window(window=1.0, epochs=4)
        window.record(0.0, False, key="bot")
        assert window.counts(0.5) == (1, 1)
        # One full window later the event has rotated out (resolution
        # is one epoch, so give it the extra quarter).
        assert window.counts(1.5) == (0, 0)
        assert window.estimate(1.5, "bot") == 0
        assert window.heavy_hitters(1.5) == []

    def test_stale_cell_is_cleared_on_reuse(self):
        window = _window(window=1.0, epochs=2)
        window.record(0.0, False, key="old")
        # Far in the future the ring position is reused; the stale
        # tally must not leak into the fresh epoch.
        window.record(10.0, True, key="new")
        assert window.counts(10.0) == (1, 0)

    def test_ring_keeps_exactly_one_window_of_epochs(self):
        window = _window(window=1.0, epochs=4)
        for step in range(8):
            window.record(step * 0.25, False, key="bot")
        # Eight one-event epochs streamed through a four-cell ring:
        # only the last window's worth remains visible.
        assert window.counts(7 * 0.25) == (4, 4)


class TestHeavyHitters:
    def test_flooder_dominates_the_report(self):
        window = _window()
        keys = ["bot-1"] * 60 + [f"c-{i}" for i in range(40)]
        window.record_batch(0.1, key_digests(keys), keys=keys)
        top = window.heavy_hitters(0.1, 1)
        assert top[0].key == "bot-1"
        assert top[0].count >= 60

    def test_scalar_promotion_finds_the_flooder_too(self):
        window = _window()
        for i in range(100):
            key = "bot-1" if i % 2 == 0 else f"c-{i}"
            window.record(0.1, False, key=key)
        top = window.heavy_hitters(0.1, 1)
        assert top and top[0].key == "bot-1"

    def test_hitter_summary_merges_across_epochs(self):
        window = _window(window=1.0, epochs=4)
        for step in range(3):  # same talker across three epochs
            window.record(step * 0.25, False, key="bot", count=30)
        summary = window.hitter_summary(0.75)
        assert summary.estimate("bot") >= 90
        assert summary.total == 90

    def test_batch_without_keys_skips_attribution(self):
        window = _window()
        digests = key_digests(["a"] * 50)
        window.record_batch(0.1, digests, throttled=10)
        assert window.counts(0.1) == (50, 10)
        assert window.heavy_hitters(0.1) == []


class TestStateAndValidation:
    def test_state_bytes_flat_under_load(self):
        window = _window()
        keys = [f"c-{i}" for i in range(2000)]
        window.record_batch(0.1, key_digests(keys), keys=keys)
        loaded = window.state_bytes()
        # Fixed sketch matrices + bounded top-k tables: within a couple
        # hundred bytes of the empty detector, regardless of stream.
        assert loaded - _window().state_bytes() < 4 * 8 * (16 + 16)

    def test_reset_restores_empty_state(self):
        window = _window()
        window.record(0.1, False, key="bot", count=50)
        window.reset()
        assert window.counts(0.1) == (0, 0)
        assert window.heavy_hitters(0.1) == []

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            SketchWindow(0.0)
        with pytest.raises(ValueError):
            SketchWindow(1.0, epochs=0)

    def test_params_sizing_matches_theory(self):
        params = SketchParams(epsilon=0.02, delta=0.01)
        assert params.width == 136  # ceil(e / 0.02)
        assert params.depth == 5  # ceil(ln 100)
        assert params.state_bytes() == 136 * 5 * 8
        with pytest.raises(ValueError):
            SketchParams(epsilon=0.0)
        with pytest.raises(ValueError):
            SketchParams(delta=1.5)
        with pytest.raises(ValueError):
            SketchParams(top_k=0)
