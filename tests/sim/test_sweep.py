"""Tests for the generic sweep utility."""

from __future__ import annotations

import csv
import io

from repro.sim.shuffle_sim import ShuffleScenario
from repro.sim.sweep import sweep, to_csv


def tiny_grid():
    return [
        ShuffleScenario(
            benign=300, bots=bots, n_replicas=40,
            target_fraction=0.8, preload_bots=True, max_rounds=400,
        )
        for bots in (30, 120)
    ]


class TestSweep:
    def test_one_record_per_scenario(self):
        records = sweep(tiny_grid(), repetitions=3, seed=1)
        assert len(records) == 2
        assert records[0]["bots"] == 30
        assert records[1]["bots"] == 120
        assert all(record["repetitions"] == 3 for record in records)

    def test_outcomes_sensible(self):
        records = sweep(tiny_grid(), repetitions=3, seed=2)
        assert (
            records[1]["shuffles_mean"] > records[0]["shuffles_mean"]
        )
        assert all(record["all_reached_target"] for record in records)

    def test_reproducible(self):
        first = sweep(tiny_grid(), repetitions=2, seed=3)
        second = sweep(tiny_grid(), repetitions=2, seed=3)
        assert first == second

    def test_empty_grid(self):
        assert sweep([], repetitions=2) == []

    def test_adjacent_base_seeds_do_not_overlap(self):
        """Regression: the old `seed + index` derivation made
        sweep(seed=0) cell 1 reuse the stream of sweep(seed=1) cell 0.
        Spawned children keep whole grids independent."""
        same_scenario_twice = [tiny_grid()[0], tiny_grid()[0]]
        grid_seed0 = sweep(same_scenario_twice, repetitions=3, seed=0)
        grid_seed1 = sweep(same_scenario_twice, repetitions=3, seed=1)
        assert grid_seed0[1] != grid_seed1[0]

    def test_workers_produce_identical_records(self):
        serial = sweep(tiny_grid(), repetitions=3, seed=6)
        parallel = sweep(tiny_grid(), repetitions=3, seed=6, workers=4)
        assert serial == parallel
        assert to_csv(serial) == to_csv(parallel)

    def test_cache_dir_resumes(self, tmp_path):
        first = sweep(tiny_grid(), repetitions=2, seed=7,
                      cache_dir=tmp_path)
        second = sweep(tiny_grid(), repetitions=2, seed=7,
                       cache_dir=tmp_path)
        assert first == second

    def test_progress_callback_sees_every_cell(self):
        seen = []
        sweep(
            tiny_grid(), repetitions=2, seed=8,
            progress=lambda outcome, done, total: seen.append(
                (done, total)
            ),
        )
        assert seen == [(1, 2), (2, 2)]


class TestCsv:
    def test_round_trip(self):
        records = sweep(tiny_grid(), repetitions=2, seed=4)
        text = to_csv(records)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["bots"] == "30"
        assert float(rows[0]["shuffles_mean"]) > 0

    def test_empty(self):
        assert to_csv([]) == ""


class TestWeightedEstimatorInEngine:
    def test_weighted_estimator_converges(self):
        scenario = ShuffleScenario(
            benign=400, bots=80, n_replicas=40,
            target_fraction=0.8, preload_bots=True,
            estimator="weighted", max_rounds=500,
        )
        records = sweep([scenario], repetitions=2, seed=5)
        assert records[0]["all_reached_target"]
