"""Tests for the Monte-Carlo shuffle-simulation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.shuffle_sim import (
    ShuffleScenario,
    cumulative_saved_curve,
    run_scenario,
    run_scenario_once,
)


def small_scenario(**overrides) -> ShuffleScenario:
    defaults = dict(
        benign=400,
        bots=100,
        n_replicas=50,
        target_fraction=0.8,
        benign_rate=2.0,
        bot_rate=20.0,
        max_rounds=500,
    )
    defaults.update(overrides)
    return ShuffleScenario(**defaults)


class TestRunOnce:
    def test_reaches_target(self, rng):
        record = run_scenario_once(small_scenario(), rng)
        assert record.reached_target
        assert record.saved_fraction >= 0.8

    def test_deterministic_given_seed(self):
        scenario = small_scenario()
        a = run_scenario_once(scenario, np.random.default_rng(99))
        b = run_scenario_once(scenario, np.random.default_rng(99))
        assert a == b

    def test_preload_bots_skips_buildup(self, rng):
        record = run_scenario_once(
            small_scenario(preload_bots=True), rng
        )
        # With all bots present from round one, early rounds save less
        # than the build-up variant's first round.
        assert record.n_shuffles >= 1

    def test_preload_harder_than_buildup(self):
        build = run_scenario_once(
            small_scenario(), np.random.default_rng(5)
        )
        preload = run_scenario_once(
            small_scenario(preload_bots=True), np.random.default_rng(5)
        )
        assert preload.n_shuffles >= build.n_shuffles

    def test_saved_per_round_consistent(self, rng):
        record = run_scenario_once(small_scenario(), rng)
        assert sum(record.saved_per_round) == record.benign_saved
        assert len(record.saved_per_round) == record.n_shuffles

    def test_benign_totals(self, rng):
        record = run_scenario_once(small_scenario(), rng)
        assert record.benign_total >= record.benign_initial == 400
        assert record.saved_fraction_total <= record.saved_fraction


class TestRunScenario:
    def test_summaries(self):
        result = run_scenario(small_scenario(), repetitions=5, seed=1)
        assert result.shuffles.n == 5
        assert result.mean_shuffles > 0
        assert 0.8 <= result.saved_fraction.mean <= 1.0

    def test_reproducible(self):
        first = run_scenario(small_scenario(), repetitions=3, seed=2)
        second = run_scenario(small_scenario(), repetitions=3, seed=2)
        assert first.shuffles.mean == second.shuffles.mean

    def test_different_seeds_differ(self):
        first = run_scenario(small_scenario(), repetitions=3, seed=2)
        second = run_scenario(small_scenario(), repetitions=3, seed=3)
        runs_a = [r.n_shuffles for r in first.runs]
        runs_b = [r.n_shuffles for r in second.runs]
        assert runs_a != runs_b

    def test_validation(self):
        with pytest.raises(ValueError):
            run_scenario(small_scenario(), repetitions=0)


class TestQualitativeShape:
    def test_more_bots_more_shuffles(self):
        # Preload the bot population so the comparison is not masked by
        # the arrival build-up phase (tiny grids finish within it).
        light = run_scenario(
            small_scenario(bots=50, preload_bots=True),
            repetitions=5, seed=4,
        )
        heavy = run_scenario(
            small_scenario(bots=400, preload_bots=True),
            repetitions=5, seed=4,
        )
        assert heavy.mean_shuffles > light.mean_shuffles

    def test_more_replicas_fewer_shuffles(self):
        few = run_scenario(
            small_scenario(n_replicas=25), repetitions=5, seed=5
        )
        many = run_scenario(
            small_scenario(n_replicas=100), repetitions=5, seed=5
        )
        assert many.mean_shuffles < few.mean_shuffles

    def test_higher_target_more_shuffles(self):
        low = run_scenario(
            small_scenario(target_fraction=0.8), repetitions=5, seed=6
        )
        high = run_scenario(
            small_scenario(target_fraction=0.95), repetitions=5, seed=6
        )
        assert high.mean_shuffles > low.mean_shuffles


class TestCumulativeCurve:
    def test_monotone_and_bounded(self):
        result = run_scenario(
            small_scenario(target_fraction=0.95), repetitions=5, seed=7
        )
        fractions = (0.2, 0.4, 0.6, 0.8, 0.95)
        summaries = cumulative_saved_curve(result, fractions)
        means = [s.mean for s in summaries]
        assert means == sorted(means)
        assert means[-1] <= result.mean_shuffles + 1e-9

    def test_diminishing_returns(self):
        """Figure 10's shape: later fractions cost more shuffles each."""
        result = run_scenario(
            small_scenario(benign=1000, bots=400, n_replicas=60,
                           target_fraction=0.95),
            repetitions=5,
            seed=8,
        )
        summaries = cumulative_saved_curve(result, (0.3, 0.6, 0.9))
        first_leg = summaries[1].mean - summaries[0].mean
        second_leg = summaries[2].mean - summaries[1].mean
        assert second_leg > first_leg
