"""Tests for the Poisson arrival processes."""

from __future__ import annotations

import pytest

from repro.sim.arrivals import (
    PAPER_BENIGN_RATE,
    PAPER_BOT_RATE,
    PoissonArrivals,
)


class TestPaperRates:
    def test_paper_constants(self):
        assert PAPER_BOT_RATE == pytest.approx(5000 / 3)
        assert PAPER_BENIGN_RATE == pytest.approx(100 / 3)


class TestPoissonArrivals:
    def test_mean_rates(self, rng):
        arrivals = PoissonArrivals(benign_rate=10.0, bot_rate=40.0)
        benign_total = bots_total = 0
        rounds = 2_000
        for index in range(rounds):
            benign, bots = arrivals(index, rng)
            benign_total += benign
            bots_total += bots
        assert benign_total / rounds == pytest.approx(10.0, rel=0.1)
        assert bots_total / rounds == pytest.approx(40.0, rel=0.1)

    def test_caps_respected(self, rng):
        arrivals = PoissonArrivals(
            benign_rate=100.0, bot_rate=100.0,
            benign_cap=250, bot_cap=120,
        )
        for index in range(100):
            arrivals(index, rng)
        assert arrivals.benign_arrived == 250
        assert arrivals.bots_arrived == 120

    def test_zero_rate_never_arrives(self, rng):
        arrivals = PoissonArrivals(benign_rate=0.0, bot_rate=0.0)
        for index in range(50):
            assert arrivals(index, rng) == (0, 0)

    def test_reset(self, rng):
        arrivals = PoissonArrivals(benign_rate=5.0, bot_rate=5.0,
                                   benign_cap=10, bot_cap=10)
        for index in range(20):
            arrivals(index, rng)
        arrivals.reset()
        assert arrivals.benign_arrived == 0
        assert arrivals.bots_arrived == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(benign_rate=-1.0)

    def test_cap_exact_cut(self, rng):
        # The final draw is truncated so the cap is hit exactly.
        arrivals = PoissonArrivals(benign_rate=1000.0, bot_rate=0.0,
                                   benign_cap=137)
        benign, _ = arrivals(0, rng)
        assert benign == 137
        assert arrivals(1, rng) == (0, 0)
