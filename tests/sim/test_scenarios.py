"""Tests pinning the paper's scenario grids."""

from __future__ import annotations

from repro.sim.scenarios import (
    FIG8_BENIGN_COUNTS,
    FIG8_BOT_COUNTS,
    FIG9_REPLICA_COUNTS,
    fig8_scenarios,
    fig9_scenarios,
    fig10_scenarios,
    headline_scenario,
)


class TestGrids:
    def test_fig8_bot_axis_matches_paper(self):
        assert FIG8_BOT_COUNTS[0] == 10_000
        assert FIG8_BOT_COUNTS[-1] == 100_000
        assert len(FIG8_BOT_COUNTS) == 10

    def test_fig8_benign_populations(self):
        assert FIG8_BENIGN_COUNTS == (10_000, 50_000)

    def test_fig9_replica_axis_matches_paper(self):
        assert FIG9_REPLICA_COUNTS[0] == 900
        assert FIG9_REPLICA_COUNTS[-1] == 2_000

    def test_fig8_scenarios_shape(self):
        scenarios = fig8_scenarios()
        assert len(scenarios) == 2 * 2 * 10
        assert all(s.n_replicas == 1000 for s in scenarios)
        assert {s.target_fraction for s in scenarios} == {0.8, 0.95}

    def test_fig9_scenarios_shape(self):
        scenarios = fig9_scenarios()
        assert all(s.bots == 100_000 for s in scenarios)
        assert {s.n_replicas for s in scenarios} == set(FIG9_REPLICA_COUNTS)

    def test_fig10_runs_to_95(self):
        scenarios = fig10_scenarios()
        assert len(scenarios) == 2
        assert all(s.target_fraction == 0.95 for s in scenarios)
        assert all(s.bots == 100_000 for s in scenarios)

    def test_headline(self):
        scenario = headline_scenario()
        assert scenario.benign == 50_000
        assert scenario.bots == 100_000
        assert scenario.n_replicas == 1000
        assert scenario.target_fraction == 0.8

    def test_describe_mentions_parameters(self):
        text = headline_scenario().describe()
        assert "50000" in text
        assert "100000" in text
        assert "greedy" in text
