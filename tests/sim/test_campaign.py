"""Tests for the attack-campaign simulator."""

from __future__ import annotations

import pytest

from repro.sim.campaign import (
    AttackWave,
    CampaignConfig,
    run_campaign,
)


def small_campaign(**overrides) -> CampaignConfig:
    defaults = dict(
        waves=(
            AttackWave(start_hour=2.0, bots=200, benign=800),
            AttackWave(start_hour=10.0, bots=500, benign=800),
            AttackWave(start_hour=18.0, bots=100, benign=800),
        ),
        horizon_hours=24.0,
        baseline_replicas=4,
        shuffle_replicas=80,
        shuffle_seconds=30.0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestConfig:
    def test_unsorted_waves_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            CampaignConfig(
                waves=(
                    AttackWave(start_hour=5.0, bots=10, benign=100),
                    AttackWave(start_hour=1.0, bots=10, benign=100),
                )
            )

    def test_wave_beyond_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            CampaignConfig(
                waves=(AttackWave(start_hour=30.0, bots=10, benign=100),),
                horizon_hours=24.0,
            )


class TestRunCampaign:
    def test_every_wave_mitigated(self):
        result = run_campaign(small_campaign(), seed=1)
        assert len(result.outcomes) == 3
        for outcome in result.outcomes:
            assert outcome.saved_fraction >= outcome.wave.target_fraction
            assert outcome.shuffles > 0
            assert outcome.mitigation_hours > 0

    def test_bigger_waves_cost_more_shuffles(self):
        result = run_campaign(small_campaign(), seed=2)
        by_bots = {o.wave.bots: o.shuffles for o in result.outcomes}
        assert by_bots[500] > by_bots[100]

    def test_reactive_saving_is_large(self):
        """The paper's 'minimum maintenance costs' claim: keeping the
        mitigation fleet always-on would cost far more replica-hours."""
        result = run_campaign(small_campaign(), seed=3)
        assert result.reactive_saving > 0.9
        assert (
            result.replica_hours_reactive
            < result.replica_hours_always_on
        )

    def test_deterministic(self):
        first = run_campaign(small_campaign(), seed=4)
        second = run_campaign(small_campaign(), seed=4)
        assert first.total_shuffles == second.total_shuffles

    def test_summarize_saved(self):
        result = run_campaign(small_campaign(), seed=5)
        summary = result.summarize_saved()
        assert summary.n == 3
        assert summary.mean >= 0.8

    def test_empty_campaign(self):
        result = run_campaign(
            CampaignConfig(waves=(), horizon_hours=24.0), seed=6
        )
        assert result.total_shuffles == 0
        assert result.reactive_saving > 0.9  # baseline vs full fleet
