"""Tests for the attack-campaign simulator."""

from __future__ import annotations

import pytest

import numpy as np

from repro.sim.campaign import (
    AttackWave,
    CampaignConfig,
    run_campaign,
    run_campaign_batch,
)


def small_campaign(**overrides) -> CampaignConfig:
    defaults = dict(
        waves=(
            AttackWave(start_hour=2.0, bots=200, benign=800),
            AttackWave(start_hour=10.0, bots=500, benign=800),
            AttackWave(start_hour=18.0, bots=100, benign=800),
        ),
        horizon_hours=24.0,
        baseline_replicas=4,
        shuffle_replicas=80,
        shuffle_seconds=30.0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestConfig:
    def test_unsorted_waves_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            CampaignConfig(
                waves=(
                    AttackWave(start_hour=5.0, bots=10, benign=100),
                    AttackWave(start_hour=1.0, bots=10, benign=100),
                )
            )

    def test_wave_beyond_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            CampaignConfig(
                waves=(AttackWave(start_hour=30.0, bots=10, benign=100),),
                horizon_hours=24.0,
            )


class TestRunCampaign:
    def test_every_wave_mitigated(self):
        result = run_campaign(small_campaign(), seed=1)
        assert len(result.outcomes) == 3
        for outcome in result.outcomes:
            assert outcome.saved_fraction >= outcome.wave.target_fraction
            assert outcome.shuffles > 0
            assert outcome.mitigation_hours > 0

    def test_bigger_waves_cost_more_shuffles(self):
        result = run_campaign(small_campaign(), seed=2)
        by_bots = {o.wave.bots: o.shuffles for o in result.outcomes}
        assert by_bots[500] > by_bots[100]

    def test_reactive_saving_is_large(self):
        """The paper's 'minimum maintenance costs' claim: keeping the
        mitigation fleet always-on would cost far more replica-hours."""
        result = run_campaign(small_campaign(), seed=3)
        assert result.reactive_saving > 0.9
        assert (
            result.replica_hours_reactive
            < result.replica_hours_always_on
        )

    def test_deterministic(self):
        first = run_campaign(small_campaign(), seed=4)
        second = run_campaign(small_campaign(), seed=4)
        assert first.total_shuffles == second.total_shuffles

    def test_summarize_saved(self):
        result = run_campaign(small_campaign(), seed=5)
        summary = result.summarize_saved()
        assert summary.n == 3
        assert summary.mean >= 0.8

    def test_empty_campaign(self):
        result = run_campaign(
            CampaignConfig(waves=(), horizon_hours=24.0), seed=6
        )
        assert result.total_shuffles == 0
        assert result.reactive_saving > 0.9  # baseline vs full fleet

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(4)
        from_seq = run_campaign(small_campaign(), seed=seq)
        from_int = run_campaign(small_campaign(), seed=4)
        assert from_seq == from_int


class TestRunCampaignBatch:
    def configs(self) -> list[CampaignConfig]:
        return [
            small_campaign(),
            small_campaign(shuffle_replicas=120),
        ]

    def test_one_result_per_config_in_order(self):
        results = run_campaign_batch(self.configs(), seed=7)
        assert len(results) == 2
        # More shuffling replicas mitigate in the same or fewer rounds.
        assert results[1].total_shuffles <= results[0].total_shuffles

    def test_batch_seeds_are_spawned_children(self):
        """Batch i must reproduce run_campaign under spawn child i."""
        results = run_campaign_batch(self.configs(), seed=7)
        children = np.random.SeedSequence(7).spawn(2)
        for config, child, result in zip(
            self.configs(), children, results
        ):
            assert run_campaign(config, seed=child) == result

    def test_parallel_batch_identical(self):
        serial = run_campaign_batch(self.configs(), seed=7)
        parallel = run_campaign_batch(self.configs(), seed=7, workers=2)
        assert serial == parallel

    def test_cache_dir_round_trip(self, tmp_path):
        fresh = run_campaign_batch(
            self.configs(), seed=7, cache_dir=tmp_path
        )
        cached = run_campaign_batch(
            self.configs(), seed=7, cache_dir=tmp_path
        )
        assert fresh == cached
