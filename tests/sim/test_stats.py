"""Tests for the statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import SampleSummary, confidence_interval, summarize


class TestSummarize:
    def test_single_observation(self):
        summary = summarize([3.0])
        assert summary.mean == 3.0
        assert summary.half_width == 0.0
        assert summary.n == 1

    def test_constant_sample(self):
        summary = summarize([5.0] * 10)
        assert summary.mean == 5.0
        assert summary.half_width == 0.0

    def test_known_interval(self):
        # mean 2, std 1, n=4, 95%: t_{0.975,3}=3.1824 -> half = 1.5912
        summary = summarize([1.0, 1.0, 3.0, 3.0], confidence=0.95)
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(np.std([1, 1, 3, 3], ddof=1))
        assert summary.half_width == pytest.approx(
            3.182446 * summary.std / 2.0, rel=1e-5
        )

    def test_higher_confidence_is_wider(self):
        data = [1.0, 2.0, 4.0, 8.0, 9.0]
        assert (
            summarize(data, confidence=0.99).half_width
            > summarize(data, confidence=0.95).half_width
        )

    def test_bounds_accessors(self):
        summary = summarize([1.0, 2.0, 3.0], confidence=0.95)
        assert summary.low == pytest.approx(summary.mean - summary.half_width)
        assert summary.high == pytest.approx(summary.mean + summary.half_width)

    def test_format(self):
        summary = SampleSummary(
            mean=12.345, half_width=1.234, n=5, confidence=0.95, std=1.0
        )
        assert summary.format(1) == "12.3 ± 1.2"

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50),
    )
    def test_mean_inside_interval(self, values):
        summary = summarize(values, confidence=0.99)
        assert summary.low <= summary.mean <= summary.high

    def test_interval_covers_truth(self, rng):
        """95% CI should cover the true mean ~95% of the time."""
        covered = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, size=12)
            summary = summarize(sample, confidence=0.95)
            if summary.low <= 10.0 <= summary.high:
                covered += 1
        assert covered / trials == pytest.approx(0.95, abs=0.04)


class TestConfidenceInterval:
    def test_zero_for_single_sample(self):
        assert confidence_interval(2.0, 1, 0.95) == 0.0

    def test_shrinks_with_n(self):
        wide = confidence_interval(1.0, 4, 0.95)
        narrow = confidence_interval(1.0, 64, 0.95)
        assert narrow < wide
