"""The shared QoS window schema (sim <-> live comparison format)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.sim.qos import QoSWindow, windows_from_dicts, windows_to_dicts


def window(**overrides) -> QoSWindow:
    base = dict(
        time=2.0, benign_sent=20, benign_ok=15, latency_sum=3.0,
        latency_count=18, attacked_replicas=2, active_replicas=10,
        shuffles_completed=1,
    )
    base.update(overrides)
    return QoSWindow(**base)


class TestDerived:
    def test_success_ratio(self):
        assert window().success_ratio == pytest.approx(0.75)
        assert window(benign_sent=0, benign_ok=0).success_ratio == 1.0

    def test_mean_latency_over_all_completed(self):
        # 18 completed measurements but only 15 ok: the 3 failed-but-
        # completed requests stay in the denominator.
        assert window().mean_latency == pytest.approx(3.0 / 18)
        assert window(latency_sum=0.0, latency_count=0).mean_latency == 0.0

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            window().time = 3.0


class TestSerialization:
    def test_round_trip(self):
        samples = [window(), window(time=3.0, shuffles_completed=2)]
        rows = windows_to_dicts(samples)
        assert windows_from_dicts(rows) == samples

    def test_rows_are_json_ready(self):
        encoded = json.dumps(windows_to_dicts([window()]))
        decoded = json.loads(encoded)
        assert decoded[0]["benign_sent"] == 20
        assert decoded[0]["success_ratio"] == pytest.approx(0.75)
        assert decoded[0]["mean_latency"] == pytest.approx(3.0 / 18)

    def test_from_dict_ignores_derived_fields(self):
        row = window().to_dict()
        row["success_ratio"] = 0.0  # stale derived value must not win
        assert QoSWindow.from_dict(row) == window()
