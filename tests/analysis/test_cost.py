"""Tests for the cloud-cost model and the shuffling-vs-expansion claim."""

from __future__ import annotations

import pytest

from repro.analysis.cost import (
    CostModel,
    compare_costs,
    expansion_cost,
    shuffling_cost,
)
from repro.core.expansion import ExpansionPlan


class TestShufflingCost:
    def test_fields(self):
        cost = shuffling_cost(n_replicas=1000, n_shuffles=60)
        assert cost.strategy == "shuffling"
        assert cost.peak_instances == 2000
        assert cost.launches == 1000 * 61
        assert cost.instance_hours > 0
        assert cost.dollars > 0

    def test_steady_replicas_add_to_peak(self):
        base = shuffling_cost(100, 10)
        with_steady = shuffling_cost(100, 10, steady_replicas=50)
        assert with_steady.peak_instances == base.peak_instances + 50

    def test_more_shuffles_cost_more(self):
        cheap = shuffling_cost(1000, 30)
        pricey = shuffling_cost(1000, 120)
        assert pricey.dollars > cheap.dollars


class TestExpansionCost:
    def test_scales_with_duration(self):
        plan = ExpansionPlan.solve(10_000, 1_000, 0.8)
        short = expansion_cost(plan, attack_duration_hours=1.0)
        long = expansion_cost(plan, attack_duration_hours=24.0)
        assert long.instance_hours == pytest.approx(
            24 * short.instance_hours
        )

    def test_describe(self):
        plan = ExpansionPlan.solve(1_000, 100, 0.8)
        text = expansion_cost(plan, 6.0).describe()
        assert "expansion" in text
        assert "instance-hours" in text


class TestPaperResourceClaim:
    def test_shuffling_uses_fewer_resources_than_expansion(self):
        """Intro: shuffling "enables effective attack containment using
        fewer resources than attack dilution strategies using pure server
        expansion" — at the headline scale."""
        shuffling, expansion = compare_costs(
            benign=50_000,
            bots=100_000,
            target_fraction=0.8,
            shuffles_needed=67,
            n_replicas=1000,
        )
        # Expansion must run a replica for nearly every client
        # concurrently (~127K); shuffling peaks at 2x its 1000-pool.
        assert expansion.peak_instances > 30 * shuffling.peak_instances
        assert expansion.dollars > 10 * shuffling.dollars
        assert expansion.instance_hours > 100 * shuffling.instance_hours

    def test_claim_holds_across_price_assumptions(self):
        for model in (
            CostModel(instance_hour=0.01, launch=0.10),
            CostModel(instance_hour=1.00, launch=0.001),
        ):
            shuffling, expansion = compare_costs(
                benign=10_000,
                bots=20_000,
                target_fraction=0.8,
                shuffles_needed=50,
                n_replicas=500,
                model=model,
            )
            assert expansion.dollars > shuffling.dollars
