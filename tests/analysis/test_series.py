"""Tests for the paper reference series and shape helpers."""

from __future__ import annotations

import pytest

from repro.analysis.series import (
    PAPER_FIG3_SAVED_FRACTION,
    PAPER_FIG8_SHUFFLES,
    PAPER_FIG9_SHUFFLES,
    PAPER_FIG12_TOTAL_SECONDS,
    growth_factor,
    shape_correlation,
)


class TestReferenceData:
    def test_fig3_reference_matches_closed_form(self):
        """These anchors are analytic — recompute them from Equation 1."""
        from repro.core.dp_fast import dp_fast_value

        for (replicas, bots), fraction in PAPER_FIG3_SAVED_FRACTION.items():
            value = dp_fast_value(1000, bots, replicas) / (1000 - bots)
            assert value == pytest.approx(fraction, abs=0.002)

    def test_fig8_reference_internally_consistent(self):
        # More bots, more benign, higher target => more shuffles.
        ref = PAPER_FIG8_SHUFFLES
        assert ref[(50_000, 0.8, 100_000)] > ref[(50_000, 0.8, 10_000)]
        assert ref[(50_000, 0.95, 100_000)] > ref[(50_000, 0.8, 100_000)]
        assert ref[(50_000, 0.8, 100_000)] > ref[(10_000, 0.8, 100_000)]

    def test_fig9_reference_monotone(self):
        ref = PAPER_FIG9_SHUFFLES
        for benign in (10_000, 50_000):
            for target in (0.8, 0.95):
                assert ref[(benign, target, 900)] > ref[(benign, target,
                                                         2000)]

    def test_fig12_reference_monotone_and_under_5s(self):
        values = [PAPER_FIG12_TOTAL_SECONDS[n] for n in sorted(
            PAPER_FIG12_TOTAL_SECONDS)]
        assert values == sorted(values)
        assert values[-1] < 5.0


class TestShapeCorrelation:
    def test_perfect_match(self):
        assert shape_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(
            1.0
        )

    def test_inverted(self):
        assert shape_correlation([1, 2, 3], [9, 5, 1]) == pytest.approx(
            -1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            shape_correlation([1, 2], [1, 2])
        with pytest.raises(ValueError):
            shape_correlation([1, 2, 3], [1, 2])
        with pytest.raises(ValueError):
            shape_correlation([1, 1, 1], [1, 2, 3])

    def test_measured_fig12_tracks_paper(self):
        """Cross-module: our Figure 12 curve ranks exactly like the
        paper's."""
        from repro.experiments.fig12 import run_fig12

        counts = tuple(sorted(PAPER_FIG12_TOTAL_SECONDS))
        rows = run_fig12(client_counts=counts, repetitions=5, seed=1)
        paper = [PAPER_FIG12_TOTAL_SECONDS[n] for n in counts]
        measured = [row.total_time.mean for row in rows]
        assert shape_correlation(paper, measured) == pytest.approx(1.0)


class TestGrowthFactor:
    def test_value(self):
        assert growth_factor([10, 15, 30]) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            growth_factor([10])
        with pytest.raises(ValueError):
            growth_factor([0, 10])
