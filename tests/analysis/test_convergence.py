"""Tests for the mean-field convergence predictor."""

from __future__ import annotations

import pytest

from repro.analysis.convergence import predict_shuffles, predict_trajectory
from repro.sim.shuffle_sim import ShuffleScenario, run_scenario


class TestTrajectoryShape:
    def test_monotone_progress(self):
        points = predict_trajectory(1_000, 300, 60, target_fraction=0.9)
        saved = [point.saved_cumulative for point in points]
        assert saved == sorted(saved)
        benign = [point.benign_active for point in points]
        assert benign == sorted(benign, reverse=True)

    def test_diminishing_returns(self):
        """Figure 10's mechanism falls out of the recursion."""
        points = predict_trajectory(2_000, 800, 80, target_fraction=0.9)
        per_round = [point.saved_this_round for point in points]
        assert per_round[0] > per_round[len(per_round) // 2]
        assert per_round[len(per_round) // 2] > per_round[-1]

    def test_no_bots_one_round(self):
        points = predict_trajectory(500, 0, 10, target_fraction=1.0)
        assert len(points) == 1
        assert points[0].saved_cumulative == pytest.approx(500.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_trajectory(100, 10, 5, target_fraction=1.5)


class TestPredictShuffles:
    def test_matches_simulation_mean(self):
        """The predictor lands within ~20% of the Monte-Carlo mean."""
        cases = [
            (1_000, 200, 60),
            (2_000, 800, 100),
            (5_000, 1_000, 100),
        ]
        for benign, bots, replicas in cases:
            predicted = predict_shuffles(benign, bots, replicas, 0.8)
            simulated = run_scenario(
                ShuffleScenario(
                    benign=benign, bots=bots, n_replicas=replicas,
                    target_fraction=0.8, preload_bots=True,
                    max_rounds=3_000,
                ),
                repetitions=5,
                seed=9,
            ).mean_shuffles
            assert predicted is not None
            # Jensen gap + round discreteness dominate at small counts:
            # allow 30% relative or 3 rounds absolute, whichever is looser.
            assert predicted == pytest.approx(simulated, rel=0.3, abs=3)

    def test_more_replicas_fewer_predicted_shuffles(self):
        few = predict_shuffles(5_000, 2_000, 100, 0.8)
        many = predict_shuffles(5_000, 2_000, 400, 0.8)
        assert many < few

    def test_saturation_returns_none(self):
        # 2 replicas vs 500 bots: greedy still isolates 1 client per
        # round at best; at some point the yield underflows the epsilon
        # and the predictor reports saturation or a huge count.
        result = predict_shuffles(100, 500, 2, 0.8)
        assert result is None or result > 50

    def test_headline_scale_prediction(self):
        """Paper headline, no simulation: prediction in the right band.

        The build-up arrival process in the real Figure 8 runs makes the
        simulated count smaller early on; the preloaded mean-field
        prediction must still land in the same band (tens of shuffles).
        """
        predicted = predict_shuffles(50_000, 100_000, 1_000, 0.8)
        assert predicted is not None
        assert 40 <= predicted <= 250
