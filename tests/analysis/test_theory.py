"""Tests for Theorem 1 and the closed-form expectations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import (
    all_attacked_with_high_probability,
    expected_saved_fraction_even,
    expected_unattacked_replicas,
    max_estimable_bots,
    min_replicas_for_bots,
)


class TestExpectedUnattacked:
    def test_no_bots(self):
        assert expected_unattacked_replicas(10, 0) == pytest.approx(10.0)

    def test_formula(self):
        # P (1 - 1/P)^M
        assert expected_unattacked_replicas(4, 3) == pytest.approx(
            4 * (0.75) ** 3
        )

    def test_single_replica(self):
        assert expected_unattacked_replicas(1, 0) == 1.0
        assert expected_unattacked_replicas(1, 5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_unattacked_replicas(0, 3)
        with pytest.raises(ValueError):
            expected_unattacked_replicas(3, -1)

    def test_matches_simulation(self, rng):
        p, m, trials = 20, 30, 5_000
        free_counts = []
        for _ in range(trials):
            bins = rng.integers(0, p, size=m)
            free_counts.append(p - len(set(bins.tolist())))
        expected = expected_unattacked_replicas(p, m)
        assert np.mean(free_counts) == pytest.approx(expected, rel=0.05)


class TestTheorem1:
    def test_threshold_value(self):
        # log_{1-1/P}(1/P) with P=10: ln(0.1)/ln(0.9) ~ 21.85
        assert max_estimable_bots(10) == pytest.approx(21.854, abs=1e-2)

    def test_threshold_is_exactly_e_x_equals_one(self):
        # At M = threshold, E[unattacked] = 1 by construction.
        for p in (5, 20, 100):
            m_star = max_estimable_bots(p)
            expected = p * (1 - 1 / p) ** m_star
            assert expected == pytest.approx(1.0, rel=1e-9)

    @given(st.integers(2, 10_000))
    def test_threshold_grows_with_replicas(self, p):
        assert max_estimable_bots(p + 1) > max_estimable_bots(p)

    def test_high_probability_predicate(self):
        p = 100
        threshold = max_estimable_bots(p)
        assert not all_attacked_with_high_probability(p, int(threshold) - 1)
        assert all_attacked_with_high_probability(p, int(threshold) + 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_estimable_bots(1)


class TestMinReplicas:
    @given(st.integers(0, 5_000))
    @settings(max_examples=30)
    def test_inverse_of_threshold(self, m):
        p = min_replicas_for_bots(m)
        assert max_estimable_bots(p) >= m
        if p > 2:
            assert max_estimable_bots(p - 1) < m

    def test_small_counts(self):
        assert min_replicas_for_bots(0) == 2
        assert min_replicas_for_bots(1) == 2

    def test_paper_scale(self):
        # 100K bots: the defense needs on the order of 10^4 replicas
        # before the MLE regime is informative (P ln P ~ M).
        p = min_replicas_for_bots(100_000)
        assert 5_000 < p < 50_000

    def test_validation(self):
        with pytest.raises(ValueError):
            min_replicas_for_bots(-1)


class TestEvenSavedFraction:
    def test_zero_when_no_benign(self):
        assert expected_saved_fraction_even(10, 10, 5) == 0.0

    def test_matches_even_plan(self):
        from repro.core.even import even_plan

        fraction = expected_saved_fraction_even(1000, 100, 200)
        plan = even_plan(1000, 100, 200)
        assert fraction == pytest.approx(plan.expected_saved / 900)

    def test_collapse_regime(self):
        assert expected_saved_fraction_even(1000, 500, 100) < 0.01
