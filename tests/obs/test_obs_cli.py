"""Tests for the ``repro-obs`` trace inspector CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import ShuffleEngine
from repro.obs import Event, EventLog, Instruments, export_jsonl
from repro.obs.cli import (
    diff_counts,
    heavy_hitter_tables,
    main,
    summarize_events,
    trust_tables,
)


def write_trace(tmp_path, name, events):
    return str(export_jsonl(events, tmp_path / name))


def sample_events():
    return [
        Event(time=0.0, kind="attack_detected", data={"n": 2}),
        Event(time=1.0, kind="shuffle_started", data={}),
        Event(time=4.0, kind="shuffle_completed", data={"duration": 3.0}),
        Event(time=5.0, kind="span",
              data={"span_id": 1, "name": "round", "duration": 0.5}),
    ]


class TestSummarize:
    def test_table_output(self, tmp_path, capsys):
        trace = write_trace(tmp_path, "t.jsonl", sample_events())
        assert main(["summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "4 events" in out
        assert "attack_detected" in out
        assert "time range: 0.000000 .. 5.000000" in out
        assert "round" in out  # span stats section

    def test_json_output_machine_readable(self, tmp_path, capsys):
        trace = write_trace(tmp_path, "t.jsonl", sample_events())
        assert main(["summarize", trace, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] == 4
        assert summary["kinds"]["shuffle_completed"] == 1
        assert summary["spans"]["round"]["count"] == 1

    def test_missing_file_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace file"):
            main(["summarize", str(tmp_path / "absent.jsonl")])

    def test_summarize_recorded_fig8_trace(self, tmp_path, capsys):
        """End to end: record a (scaled-down) fig8-style shuffle run
        through the obs layer, export JSONL, summarize via the CLI."""
        bundle = Instruments.create(source="core")
        engine = ShuffleEngine(
            n_replicas=50,
            planner="greedy",
            rng=np.random.default_rng(0),
            instruments=bundle,
        )
        state = engine.run(
            benign=1_000, bots=500, target_fraction=0.8, max_rounds=200
        )
        trace = write_trace(
            tmp_path, "fig8.jsonl", list(bundle.spans.to_events())
        )
        assert main(["summarize", trace, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["spans"]["shuffle_round"]["count"] == len(
            state.rounds
        )
        assert summary["spans"]["plan"]["count"] == len(state.rounds)


class TestDiff:
    def test_identical_traces_exit_zero(self, tmp_path, capsys):
        left = write_trace(tmp_path, "a.jsonl", sample_events())
        right = write_trace(tmp_path, "b.jsonl", sample_events())
        assert main(["diff", left, right]) == 0
        assert "identical" in capsys.readouterr().out

    def test_differing_counts_exit_one(self, tmp_path, capsys):
        left = write_trace(tmp_path, "a.jsonl", sample_events())
        right = write_trace(tmp_path, "b.jsonl", sample_events()[:2])
        assert main(["diff", left, right]) == 1
        out = capsys.readouterr().out
        assert "shuffle_completed" in out
        assert "(-1)" in out

    def test_diff_counts_helper(self):
        left = [Event(time=0.0, kind="a"), Event(time=1.0, kind="b")]
        right = [Event(time=0.0, kind="a"), Event(time=1.0, kind="c")]
        assert diff_counts(left, right) == {"b": (1, 0), "c": (0, 1)}


class TestTail:
    def test_last_n_events_in_order(self, tmp_path, capsys):
        trace = write_trace(tmp_path, "t.jsonl", sample_events())
        assert main(["tail", trace, "-n", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert "shuffle_completed" in lines[0]
        assert "span" in lines[1]

    def test_kind_filter(self, tmp_path, capsys):
        trace = write_trace(tmp_path, "t.jsonl", sample_events())
        assert main(["tail", trace, "--kind", "shuffle_started"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1
        assert "shuffle_started" in lines[0]


def heavy_hitter_events():
    """Two replicas reporting twice; only the latest report counts."""
    payload = {
        "window": 1.0, "total": 100, "throttled": 80,
        "top": [["bot-1", 60, 0], ["c-9", 8, 3]],
        "state_bytes": 22080,
    }
    stale = {
        "window": 1.0, "total": 10, "throttled": 1,
        "top": [["c-2", 4, 0]], "state_bytes": 22080,
    }
    return [
        Event(time=1.0, kind="heavy_hitters",
              data=dict(stale, replica="r-1"), source="service"),
        Event(time=5.0, kind="heavy_hitters",
              data=dict(payload, replica="r-1"), source="service"),
        Event(time=3.0, kind="heavy_hitters",
              data=dict(payload, replica="r-2", total=40),
              source="service"),
    ]


class TestHeavyHitters:
    def test_latest_report_per_replica(self):
        tables = heavy_hitter_tables(heavy_hitter_events())
        assert sorted(tables) == ["r-1", "r-2"]
        assert tables["r-1"]["time"] == 5.0
        assert tables["r-1"]["total"] == 100
        assert tables["r-1"]["top"][0] == ["bot-1", 60, 0]
        assert tables["r-2"]["total"] == 40

    def test_other_kinds_are_ignored(self):
        assert heavy_hitter_tables(sample_events()) == {}

    def test_summarize_payload_includes_tables(self):
        summary = summarize_events(heavy_hitter_events())
        assert summary["heavy_hitters"]["r-1"]["throttled"] == 80

    def test_table_rendering(self, tmp_path, capsys):
        trace = write_trace(
            tmp_path, "hh.jsonl", heavy_hitter_events()
        )
        assert main(["summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "heavy hitters (latest report per replica)" in out
        assert "replica r-1: 100 requests, 80 throttled" in out
        assert "bot-1" in out
        assert "count<=60" in out

    def test_integer_replica_ids_render(self, tmp_path, capsys):
        """Cloudsim traces carry integer replica ids; the table must
        render them structurally like any other payload."""
        event = Event(
            time=2.0, kind="heavy_hitters",
            data={"replica": 3, "total": 7, "throttled": 2,
                  "top": [["naive-fleet", 7, 0]]},
            source="cloudsim",
        )
        tables = heavy_hitter_tables([event])
        assert tables["3"]["top"] == [["naive-fleet", 7, 0]]
        trace = write_trace(tmp_path, "sim.jsonl", [event])
        assert main(["summarize", trace]) == 0
        assert "naive-fleet" in capsys.readouterr().out


def trust_snapshot_events():
    """Two replicas; r-1 reports twice, only the later snapshot counts."""
    return [
        Event(time=1.0, kind="trust_snapshot",
              data={"replica": "r-1", "clients": 20, "mean_trust": 0.61,
                    "tiers": {"TRUSTED": 0, "WATCH": 20,
                              "THROTTLED": 0, "DENIED": 0}},
              source="service"),
        Event(time=6.0, kind="trust_snapshot",
              data={"replica": "r-1", "clients": 22, "mean_trust": 0.48,
                    "tiers": {"TRUSTED": 4, "WATCH": 12,
                              "THROTTLED": 4, "DENIED": 2}},
              source="service"),
        Event(time=3.0, kind="trust_snapshot",
              data={"replica": "r-2", "clients": 18, "mean_trust": 0.75,
                    "tiers": {"TRUSTED": 10, "WATCH": 8,
                              "THROTTLED": 0, "DENIED": 0}},
              source="service"),
    ]


class TestTrustTiers:
    def test_latest_snapshot_per_replica(self):
        tables = trust_tables(trust_snapshot_events())
        assert sorted(tables) == ["r-1", "r-2"]
        assert tables["r-1"]["time"] == 6.0
        assert tables["r-1"]["clients"] == 22
        assert tables["r-1"]["tiers"]["DENIED"] == 2
        assert tables["r-2"]["mean_trust"] == 0.75

    def test_other_kinds_are_ignored(self):
        assert trust_tables(sample_events()) == {}

    def test_summarize_payload_includes_tables(self):
        summary = summarize_events(trust_snapshot_events())
        assert summary["trust_tiers"]["r-1"]["tiers"]["THROTTLED"] == 4

    def test_table_rendering(self, tmp_path, capsys):
        """The payload renders structurally — this layer never imports
        repro.trust, the event carries everything it needs."""
        trace = write_trace(
            tmp_path, "trust.jsonl", trust_snapshot_events()
        )
        assert main(["summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "trust tiers (latest snapshot per replica):" in out
        assert "replica r-1: 22 clients, mean trust 0.480" in out
        # export_jsonl sorts payload keys, so tiers render sorted.
        assert "DENIED=2, THROTTLED=4, TRUSTED=4, WATCH=12" in out
        assert "replica r-2: 18 clients, mean trust 0.750" in out

    def test_absent_snapshots_render_nothing(self, tmp_path, capsys):
        trace = write_trace(tmp_path, "plain.jsonl", sample_events())
        assert main(["summarize", trace]) == 0
        assert "trust tiers" not in capsys.readouterr().out


class TestSummarizeHelper:
    def test_empty_trace(self):
        summary = summarize_events([])
        assert summary["events"] == 0
        assert summary["time_range"] is None

    def test_sources_counted(self):
        log = EventLog(source="service")
        log.emit(1.0, "tick")
        log.emit(2.0, "tick")
        summary = summarize_events(log.events)
        assert summary["sources"] == {"service": 2}
