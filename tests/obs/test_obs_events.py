"""Tests for the canonical Event record and its byte-compat contract."""

from __future__ import annotations

import json

import pytest

from repro.obs import Event, EventLog


class TestByteCompatibility:
    """Events without ``source`` must serialize exactly like the legacy
    ``cloudsim.trace.TraceEvent`` did."""

    def test_legacy_layout_sorted_keys_rounded_time(self):
        event = Event(time=1.23456789, kind="shuffle_completed",
                      data={"n_clients": 5, "duration": 2.0})
        assert event.to_json() == (
            '{"duration": 2.0, "kind": "shuffle_completed", '
            '"n_clients": 5, "time": 1.234568}'
        )

    def test_source_is_appended_after_legacy_payload(self):
        bare = Event(time=1.0, kind="k", data={"a": 1})
        sourced = Event(time=1.0, kind="k", data={"a": 1}, source="svc")
        legacy = bare.to_json()
        extended = sourced.to_json()
        assert extended.startswith(legacy[:-1])
        assert extended.endswith(', "source": "svc"}')
        assert json.loads(extended)["source"] == "svc"

    def test_round_trip_from_dict(self):
        event = Event(time=2.5, kind="k", data={"x": [1, 2]}, source="s")
        assert Event.from_dict(event.to_dict()) == event

    def test_legacy_record_parses_without_source(self):
        record = json.loads('{"time": 3.0, "kind": "old", "n": 7}')
        event = Event.from_dict(record)
        assert event.source is None
        assert event.data == {"n": 7}


class TestEventLog:
    def test_emit_stamps_source(self):
        log = EventLog(source="cloudsim")
        log.emit(1.0, "tick", n=1)
        assert log.events[0].source == "cloudsim"

    def test_kind_filter_applies_to_append_too(self):
        log = EventLog(kinds=frozenset({"keep"}))
        log.emit(0.0, "keep")
        log.emit(0.0, "drop")
        log.append(Event(time=0.0, kind="drop"))
        assert [event.kind for event in log] == ["keep"]

    def test_capacity_bounds_memory(self):
        log = EventLog(capacity=3)
        for index in range(10):
            log.emit(float(index), "tick")
        assert len(log) == 3
        assert log.dropped == 7

    def test_queries(self):
        log = EventLog()
        log.emit(1.0, "a", x=1)
        log.emit(2.0, "b")
        log.emit(3.0, "a", x=2)
        assert [e.data["x"] for e in log.of_kind("a")] == [1, 2]
        assert [e.kind for e in log.between(1.5, 3.0)] == ["b", "a"]

    def test_jsonl_lines_parse(self):
        log = EventLog(source="test")
        log.emit(1.0, "alpha", value=1)
        log.emit(2.0, "beta")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert json.loads(line)["source"] == "test"


class TestDeprecatedTracerShim:
    def test_old_import_path_still_works(self):
        from repro.cloudsim.trace import TraceEvent, Tracer

        assert TraceEvent is Event
        with pytest.warns(DeprecationWarning, match="repro.obs.EventLog"):
            tracer = Tracer(kinds=frozenset({"x"}), capacity=5)
        assert isinstance(tracer, EventLog)
        tracer.emit(1.0, "x", n=1)
        tracer.emit(1.0, "y", n=2)
        assert [event.kind for event in tracer.events] == ["x"]

    def test_shim_jsonl_is_byte_identical_to_eventlog(self):
        from repro.cloudsim.trace import Tracer

        with pytest.warns(DeprecationWarning):
            tracer = Tracer()
        log = EventLog()
        for sink in (tracer, log):
            sink.emit(1.5, "shuffle_started", n_attacked=2)
        assert tracer.to_jsonl() == log.to_jsonl()
