"""Tests for repro.obs.metrics: counters, gauges, histograms, registry."""

from __future__ import annotations

import json

import pytest

from repro.obs import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests.")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("n_total", "N.")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "outcomes_total", "Outcomes.", ("outcome",)
        )
        counter.inc(outcome="ok")
        counter.inc(outcome="ok")
        counter.inc(outcome="failed")
        assert counter.value(outcome="ok") == 2.0
        assert counter.value(outcome="failed") == 1.0

    def test_unknown_label_rejected(self):
        counter = MetricsRegistry().counter("x_total", "X.", ("a",))
        with pytest.raises(ValueError):
            counter.inc(b="nope")


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("level", "Level.")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value() == 2.0

    def test_inc_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("level", "Level.")
        gauge.inc(3.0)
        gauge.inc(-1.0)
        assert gauge.value() == 2.0


class TestHistogramBucketEdges:
    """The le-semantics corner cases: exact edges, above-top, below-min."""

    def test_observation_on_edge_counts_in_that_bucket(self):
        hist = MetricsRegistry().histogram(
            "t", "T.", buckets=(1.0, 2.0, 5.0)
        )
        hist.observe(1.0)  # exactly on the first edge: le=1.0 bucket
        cumulative = dict(hist.cumulative_buckets())
        assert cumulative[1.0] == 1
        assert cumulative[2.0] == 1

    def test_above_top_edge_lands_in_inf_only(self):
        hist = MetricsRegistry().histogram("t", "T.", buckets=(1.0, 2.0))
        hist.observe(99.0)
        cumulative = hist.cumulative_buckets()
        assert cumulative[-1][0] == float("inf")
        assert cumulative[-1][1] == 1
        assert all(count == 0 for _, count in cumulative[:-1])

    def test_below_first_edge_counts_everywhere(self):
        hist = MetricsRegistry().histogram("t", "T.", buckets=(1.0, 2.0))
        hist.observe(0.5)
        assert [count for _, count in hist.cumulative_buckets()] == [1, 1, 1]

    def test_cumulative_is_monotone_and_ends_at_count(self):
        hist = MetricsRegistry().histogram("t", "T.", buckets=DEFAULT_BUCKETS)
        for value in (0.0005, 0.003, 0.003, 0.2, 7.0, 1000.0):
            hist.observe(value)
        counts = [count for _, count in hist.cumulative_buckets()]
        assert counts == sorted(counts)
        assert counts[-1] == hist.count() == 6
        assert hist.sum() == pytest.approx(1007.2065)

    def test_buckets_must_be_increasing(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", "B.", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "A.")
        second = registry.counter("a_total", "A.")
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing", "T.")
        with pytest.raises(ValueError):
            registry.gauge("thing", "T.")

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name!", "B.")

    def test_to_dict_is_json_ready_and_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("z_gauge", "Z.").set(1.0)
        registry.counter("a_total", "A.").inc()
        dump = registry.to_dict()
        assert list(dump) == sorted(dump)
        json.dumps(dump)  # must not raise

    def test_counter_gauge_histogram_kinds(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("c_total", "C."), Counter)
        assert isinstance(registry.gauge("g", "G."), Gauge)
        assert isinstance(registry.histogram("h", "H."), Histogram)
