"""Tests for repro.obs.spans: nesting, ordering, clock injection."""

from __future__ import annotations

from repro.obs import Span, SpanRecorder


class FakeClock:
    """Deterministic ticking clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestNesting:
    def test_children_point_at_parent(self):
        recorder = SpanRecorder()
        with recorder.span("round") as parent:
            with recorder.span("estimate"):
                pass
            with recorder.span("plan"):
                pass
        children = recorder.children_of(parent)
        assert [span.name for span in children] == ["estimate", "plan"]
        assert all(span.parent_id == parent.span_id for span in children)
        assert recorder.roots() == [parent]

    def test_shuffle_round_tree_shape(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("shuffle_round", round=0):
            with recorder.span("estimate"):
                pass
            with recorder.span("plan"):
                pass
            with recorder.span("shuffle"):
                pass
            with recorder.span("substitute"):
                pass
        lines = recorder.tree_lines()
        assert lines[0].startswith("shuffle_round")
        assert [line.split()[0] for line in lines[1:]] == [
            "estimate", "plan", "shuffle", "substitute",
        ]
        assert all(line.startswith("  ") for line in lines[1:])

    def test_ids_assigned_in_start_order(self):
        recorder = SpanRecorder()
        with recorder.span("a"):
            with recorder.span("b"):
                pass
        with recorder.span("c"):
            pass
        by_name = {span.name: span.span_id for span in recorder.spans}
        assert by_name == {"a": 1, "b": 2, "c": 3}

    def test_mis_nested_exit_recovers(self):
        recorder = SpanRecorder()
        outer = recorder.span("outer")
        inner = recorder.span("inner")
        outer.__enter__(), inner.__enter__()
        outer.__exit__(None, None, None)  # closes inner implicitly
        assert recorder.active_depth == 0
        with recorder.span("next"):
            pass
        assert recorder.named("next")[0].parent_id is None


class TestClockAndDuration:
    def test_injected_clock_measures_duration(self):
        recorder = SpanRecorder(clock=FakeClock(step=2.0))
        with recorder.span("op") as span:
            pass
        assert span.started_at == 0.0
        assert span.ended_at == 2.0
        assert span.duration == 2.0

    def test_zero_clock_default_still_nests(self):
        recorder = SpanRecorder()
        with recorder.span("op") as span:
            pass
        assert span.duration == 0.0
        assert span.finished

    def test_attrs_via_set_land_in_event(self):
        recorder = SpanRecorder()
        with recorder.span("op", phase="x") as span:
            span.set(m_hat=7)
        event = span.to_event()
        assert event.kind == "span"
        assert event.data["phase"] == "x"
        assert event.data["m_hat"] == 7
        assert event.data["name"] == "op"


class TestExportOrdering:
    def test_to_events_sorted_by_start_not_completion(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("parent"):  # starts first, finishes last
            with recorder.span("child"):
                pass
        names = [event.data["name"] for event in recorder.to_events()]
        assert names == ["parent", "child"]

    def test_export_is_hash_seed_independent(self):
        # Same workload, two recorders: identical serialized output.
        def workload(recorder: SpanRecorder) -> list[str]:
            with recorder.span("round", zebra=1, apple=2):
                with recorder.span("inner"):
                    pass
            return [event.to_json() for event in recorder.to_events()]

        first = workload(SpanRecorder(clock=FakeClock()))
        second = workload(SpanRecorder(clock=FakeClock()))
        assert first == second

    def test_capacity_drops_oldest(self):
        recorder = SpanRecorder(capacity=2)
        for index in range(5):
            with recorder.span(f"s{index}"):
                pass
        assert len(recorder) == 2
        assert recorder.dropped == 3
        assert [span.name for span in recorder.spans] == ["s3", "s4"]

    def test_span_dataclass_defaults(self):
        span = Span(span_id=1, name="x", started_at=0.0)
        assert not span.finished
        assert span.duration == 0.0
