"""Tests for JSON/JSONL exporters and the Prometheus text rendering."""

from __future__ import annotations

import json

from repro.obs import (
    Event,
    EventLog,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    events_to_jsonl,
    export_json,
    export_jsonl,
    read_events,
    read_events_text,
    render_prometheus,
)

GOLDEN_PROMETHEUS = """\
# HELP requests_total Requests by outcome.
# TYPE requests_total counter
requests_total{outcome="ok"} 3
requests_total{outcome="throttled"} 1
# HELP round_seconds Round duration.
# TYPE round_seconds histogram
round_seconds_bucket{le="0.1"} 1
round_seconds_bucket{le="1"} 2
round_seconds_bucket{le="+Inf"} 3
round_seconds_sum 5.55
round_seconds_count 3
# HELP tokens Bucket level.
# TYPE tokens gauge
tokens 12.5
"""


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter(
        "requests_total", "Requests by outcome.", ("outcome",)
    )
    counter.inc(3, outcome="ok")
    counter.inc(outcome="throttled")
    registry.gauge("tokens", "Bucket level.").set(12.5)
    hist = registry.histogram(
        "round_seconds", "Round duration.", buckets=(0.1, 1.0)
    )
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


class TestPrometheusText:
    def test_matches_golden_output(self):
        assert render_prometheus(build_registry()) == GOLDEN_PROMETHEUS

    def test_independent_of_update_order(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "round_seconds", "Round duration.", buckets=(0.1, 1.0)
        )
        for value in (5.0, 0.05, 0.5):  # reversed arrival order
            hist.observe(value)
        registry.gauge("tokens", "Bucket level.").set(12.5)
        counter = registry.counter(
            "requests_total", "Requests by outcome.", ("outcome",)
        )
        counter.inc(outcome="throttled")
        counter.inc(3, outcome="ok")
        assert render_prometheus(registry) == GOLDEN_PROMETHEUS

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "C.", ("path",)).inc(
            path='with "quotes"\nand newline'
        )
        text = render_prometheus(registry)
        assert '\\"quotes\\"' in text
        assert "\\n" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_content_type_pins_text_format(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestJsonlRoundTrip:
    def test_events_survive_write_and_read(self, tmp_path):
        events = [
            Event(time=1.0, kind="a", data={"x": 1}, source="sim"),
            Event(time=2.0, kind="b", data={}),
            Event(time=3.0, kind="a", data={"nested": {"y": [1, 2]}}),
        ]
        path = export_jsonl(events, tmp_path / "trace.jsonl")
        assert read_events(path) == events

    def test_event_log_round_trips(self, tmp_path):
        log = EventLog(source="service")
        log.emit(0.5, "sweep", n=1)
        log.emit(1.5, "shuffle", n=2)
        path = export_jsonl(log.events, tmp_path / "log.jsonl")
        recovered = read_events(path)
        assert recovered == log.events

    def test_dict_records_accepted(self):
        text = events_to_jsonl(
            [{"time": 1.0, "kind": "k"}, Event(time=2.0, kind="j")]
        )
        kinds = [e.kind for e in read_events_text(text)]
        assert kinds == ["k", "j"]

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = export_jsonl([], tmp_path / "empty.jsonl")
        assert path.read_text(encoding="utf-8") == ""
        assert read_events(path) == []


class TestExportJson:
    def test_sorted_pretty_newline_terminated(self, tmp_path):
        path = export_json({"b": 1, "a": 2}, tmp_path / "doc.json")
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 2, "b": 1}

    def test_runreport_writer_delegates_here(self, tmp_path):
        """The runtime's RunReport.write_json and obs.export_json must
        produce identical bytes for identical payloads (satellite:
        one writer for every layer)."""
        from repro.runtime.executor import RunReport

        report = RunReport(outcomes=(), workers=1, wall_time_s=0.25)
        report_path = tmp_path / "report.json"
        report.write_json(report_path)
        direct_path = export_json(
            report.to_json_dict(), tmp_path / "direct.json"
        )
        assert report_path.read_bytes() == direct_path.read_bytes()
