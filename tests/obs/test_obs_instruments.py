"""Tests for the uniform ``instruments=`` handle and no-op semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ShuffleEngine
from repro.obs import (
    Instruments,
    get_default_instruments,
    resolve_instruments,
    set_default_instruments,
)


@pytest.fixture(autouse=True)
def clean_default():
    """Never leak a process-wide default across tests."""
    previous = set_default_instruments(None)
    yield
    set_default_instruments(previous)


class TestResolution:
    def test_disabled_by_default(self):
        assert resolve_instruments(None) is None
        assert get_default_instruments() is None

    def test_explicit_handle_wins_over_default(self):
        default = Instruments.create()
        explicit = Instruments.create()
        set_default_instruments(default)
        assert resolve_instruments(explicit) is explicit
        assert resolve_instruments(None) is default

    def test_set_default_returns_previous_for_restore(self):
        first = Instruments.create()
        assert set_default_instruments(first) is None
        second = Instruments.create()
        assert set_default_instruments(second) is first
        assert set_default_instruments(None) is second


class TestDisabledNoOp:
    """``instruments=None`` must leave zero observable footprint."""

    def test_engine_defaults_to_disabled(self):
        engine = ShuffleEngine(n_replicas=10)
        assert engine.instruments is None

    def test_disabled_run_records_nothing_anywhere(self):
        engine = ShuffleEngine(
            n_replicas=20, rng=np.random.default_rng(7)
        )
        engine.run(benign=200, bots=50, max_rounds=10)
        assert get_default_instruments() is None

    def test_disabled_and_enabled_runs_are_identical(self):
        def trajectory(instruments):
            engine = ShuffleEngine(
                n_replicas=20,
                rng=np.random.default_rng(7),
                instruments=instruments,
            )
            state = engine.run(benign=200, bots=50, max_rounds=30)
            return [round_.benign_saved for round_ in state.rounds]

        plain = trajectory(None)
        instrumented = trajectory(Instruments.create())
        assert plain == instrumented

    def test_default_install_enables_engines_built_later(self):
        bundle = Instruments.create(source="core")
        set_default_instruments(bundle)
        engine = ShuffleEngine(
            n_replicas=20, rng=np.random.default_rng(7)
        )
        state = engine.run(benign=200, bots=50, max_rounds=30)
        rounds = bundle.registry.counter("shuffle_rounds_total").value(
            planner="greedy", estimator="oracle"
        )
        assert rounds == len(state.rounds)
        assert len(bundle.spans.named("shuffle_round")) == len(state.rounds)


class TestEnabledChannels:
    def test_span_tree_per_round(self):
        bundle = Instruments.create()
        engine = ShuffleEngine(
            n_replicas=20,
            rng=np.random.default_rng(3),
            instruments=bundle,
        )
        engine.run(benign=100, bots=30, max_rounds=5)
        roots = bundle.spans.roots()
        assert roots, "expected at least one shuffle_round span"
        child_names = {
            span.name
            for root in roots
            for span in bundle.spans.children_of(root)
        }
        assert child_names <= {"estimate", "plan", "shuffle"}
        assert "plan" in child_names
        assert "shuffle" in child_names

    def test_export_state_is_json_ready(self):
        import json

        bundle = Instruments.create(source="test")
        bundle.emit(1.0, "tick", n=1)
        with bundle.spans.span("op"):
            pass
        bundle.registry.counter("c_total", "C.").inc()
        json.dumps(bundle.export_state())
