"""Tests for the paper-literal Algorithm 1 dynamic program."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp import dp_plan, dp_value, optimal_assign
from repro.core.dp_fast import dp_fast_value
from repro.core.greedy import greedy_plan
from repro.core.objective import expected_saved


class TestBaseCases:
    def test_single_replica_no_bots(self):
        assert dp_value(7, 0, 1) == pytest.approx(7.0)

    def test_single_replica_with_bots(self):
        assert dp_value(7, 2, 1) == pytest.approx(0.0)

    def test_no_bots_many_replicas(self):
        assert dp_value(9, 0, 3) == pytest.approx(9.0)

    def test_all_bots(self):
        assert dp_value(6, 6, 3) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            dp_value(5, 6, 2)
        with pytest.raises(ValueError):
            dp_value(5, 1, 0)


class TestKnownValues:
    def test_two_replicas_one_bot_four_clients(self):
        # Static optimum: sizes (1,3) or (2,2) -> E = 1.5 vs 2*2*(1/2)=2.0.
        # Adaptive DP can also react, but with N=4, M=1 the best static
        # split (2,2) already achieves 2.0 and adaptivity adds nothing.
        assert dp_value(4, 1, 2) == pytest.approx(2.0)

    def test_adaptive_value_upper_bounds_static(self):
        # The documented reproduction finding (DESIGN.md §5.2).
        adaptive = dp_value(12, 3, 3)
        static = dp_fast_value(12, 3, 3)
        assert adaptive == pytest.approx(3.0909, abs=1e-3)
        assert static == pytest.approx(3.0545, abs=1e-3)
        assert adaptive > static


class TestOrderings:
    @given(
        st.integers(2, 16),
        st.integers(0, 5),
        st.integers(1, 4),
    )
    @settings(max_examples=30)
    def test_adaptive_geq_static_geq_greedy(self, n, m, p):
        m = min(m, n)
        adaptive = dp_value(n, m, p)
        static = dp_fast_value(n, m, p)
        greedy_value = greedy_plan(n, m, p).expected_saved
        assert adaptive >= static - 1e-9
        assert static >= greedy_value - 1e-9

    @given(st.integers(3, 14), st.integers(1, 4))
    @settings(max_examples=20)
    def test_monotone_in_replicas(self, n, m):
        m = min(m, n)
        values = [dp_value(n, m, p) for p in (1, 2, 3)]
        assert values[0] <= values[1] + 1e-9
        assert values[1] <= values[2] + 1e-9

    @given(st.integers(4, 14))
    @settings(max_examples=15)
    def test_monotone_decreasing_in_bots(self, n):
        values = [dp_value(n, m, 3) for m in range(0, min(5, n))]
        for lighter, heavier in zip(values, values[1:]):
            assert heavier <= lighter + 1e-9


class TestTables:
    def test_tables_shape_and_value(self):
        tables = optimal_assign(10, 2, 3)
        assert tables.save_no.shape == (11, 3, 3)
        assert tables.value() == pytest.approx(dp_value(10, 2, 3))

    def test_assign_entries_are_feasible_splits(self):
        tables = optimal_assign(10, 2, 3)
        for i in range(2, 11):
            for j in range(1, 3):
                for k in range(1, 3):
                    a = tables.assign_no[i, j, k]
                    assert 0 <= a <= i


class TestPlanExtraction:
    def test_plan_is_valid_partition(self):
        plan = dp_plan(12, 3, 4)
        assert sum(plan.group_sizes) == 12
        assert plan.n_replicas == 4
        assert plan.algorithm == "dp"

    def test_plan_value_rescored_with_equation1(self):
        plan = dp_plan(12, 3, 3)
        assert plan.expected_saved == pytest.approx(expected_saved(plan))
        # The honest static score can never exceed the static optimum.
        assert plan.expected_saved <= dp_fast_value(12, 3, 3) + 1e-9

    def test_plan_no_bots(self):
        plan = dp_plan(8, 0, 2)
        assert plan.expected_saved == pytest.approx(8.0)
