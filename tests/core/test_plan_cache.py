"""Tests for the pre-computed plan cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dp_fast import dp_fast_value
from repro.core.plan_cache import PlanCache, _nearest, _repair
from repro.core.shuffler import ShuffleEngine


def make_cache() -> PlanCache:
    cache = PlanCache(
        n_replicas=20,
        client_grid=(100, 200, 400, 800),
        bot_grid=(10, 40, 160),
    )
    cache.precompute()
    return cache


class TestConstruction:
    def test_precompute_counts_cells(self):
        cache = PlanCache(
            n_replicas=5, client_grid=(50, 100), bot_grid=(5, 20)
        )
        assert cache.precompute() == 4
        assert cache.cells == 4
        assert cache.precompute() == 0  # idempotent

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanCache(n_replicas=0, client_grid=(10,), bot_grid=(1,))
        with pytest.raises(ValueError):
            PlanCache(n_replicas=5, client_grid=(), bot_grid=(1,))
        with pytest.raises(ValueError):
            PlanCache(n_replicas=5, client_grid=(20, 10), bot_grid=(1,))

    def test_lookup_before_precompute(self):
        cache = PlanCache(n_replicas=5, client_grid=(50,), bot_grid=(5,))
        with pytest.raises(RuntimeError):
            cache.lookup(50, 5)


class TestLookup:
    def test_exact_cell_is_optimal(self):
        cache = make_cache()
        plan = cache.lookup(200, 40)
        assert plan.algorithm == "cached"
        assert plan.expected_saved == pytest.approx(
            dp_fast_value(200, 40, 20), abs=1e-9
        )

    def test_offgrid_query_near_optimal(self):
        cache = make_cache()
        plan = cache.lookup(215, 35)
        assert plan.n_clients == 215
        assert sum(plan.group_sizes) == 215
        optimal = dp_fast_value(215, 35, 20)
        assert plan.expected_saved >= 0.9 * optimal

    def test_far_offgrid_falls_back_to_greedy(self):
        cache = make_cache()
        plan = cache.lookup(10_000, 500)
        assert plan.algorithm == "greedy"
        assert cache.fallbacks == 1

    def test_replica_mismatch_falls_back(self):
        cache = make_cache()
        plan = cache(300, 40, 99)
        assert plan.algorithm == "greedy"

    def test_counters(self):
        cache = make_cache()
        cache.lookup(200, 40)
        cache.lookup(210, 40)
        assert cache.hits == 2

    def test_validation(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.lookup(100, 200)


class TestAsPlanner:
    def test_drives_the_shuffle_engine(self):
        cache = make_cache()
        engine = ShuffleEngine(
            n_replicas=20,
            planner=cache,
            rng=np.random.default_rng(17),
        )
        state = engine.run(benign=350, bots=50, target_fraction=0.8,
                           max_rounds=400)
        assert state.saved_fraction >= 0.8
        assert cache.hits > 0


class TestHelpers:
    def test_nearest(self):
        grid = (10, 20, 40)
        assert _nearest(grid, 5) == 10
        assert _nearest(grid, 14) == 10
        assert _nearest(grid, 16) == 20
        assert _nearest(grid, 100) == 40
        assert _nearest(grid, 30) == 20  # tie goes low

    def test_repair_adds(self):
        sizes = [5, 5, 90]
        _repair(sizes, 110)
        assert sum(sizes) == 110
        assert sizes[2] == 100  # largest group absorbs

    def test_repair_removes(self):
        sizes = [5, 5, 90]
        _repair(sizes, 80)
        assert sum(sizes) == 80
        assert min(sizes) >= 0

    def test_repair_removes_more_than_largest(self):
        sizes = [4, 4, 4]
        _repair(sizes, 3)
        assert sum(sizes) == 3
        assert all(size >= 0 for size in sizes)
