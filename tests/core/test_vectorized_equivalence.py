"""Bit-identity pins: vectorized kernels vs the frozen scalar seeds.

The vectorized estimator/planner core (whole-array occupancy recurrence,
Toeplitz (max,+) convolution, broadcast DP rows) must reproduce the
historical scalar loops *exactly* where the arithmetic is
order-preserving, and within float tolerance where only the summation
order changed (the Algorithm 1 row broadcast).  The scalar references
live in ``benchmarks/scalar_core.py`` and are frozen — see its module
docstring.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from benchmarks.scalar_core import (  # noqa: E402
    scalar_attacked_count_pmf,
    scalar_combine,
    scalar_mle_m_hat,
    scalar_occupancy_likelihoods,
    scalar_occupancy_pmf,
    scalar_optimal_assign,
    scalar_weighted_m_hat,
)
from repro.core.dp import optimal_assign  # noqa: E402
from repro.core.dp_fast import _Node, _combine  # noqa: E402
from repro.core.estimator import (  # noqa: E402
    _closed_form_threshold,
    _estimate_mle,
    _estimate_weighted,
    _occupancy_log_closed,
    attacked_count_log_pmf,
    attacked_count_pmf,
    occupancy_likelihoods,
    occupancy_log_likelihoods,
    occupancy_pmf,
)


class TestOccupancyBitIdentity:
    @given(st.integers(0, 200), st.integers(1, 60))
    @settings(max_examples=60)
    def test_occupancy_pmf_bit_identical(self, n_balls, n_bins):
        got = occupancy_pmf(n_balls, n_bins)
        want = scalar_occupancy_pmf(n_balls, n_bins)
        assert got.tolist() == want.tolist()

    @given(st.integers(1, 40), st.integers(0, 300))
    @settings(max_examples=60)
    def test_occupancy_likelihoods_bit_identical(self, n_bins, upper):
        n_attacked = min(n_bins, max(0, upper % (n_bins + 1)))
        got = occupancy_likelihoods(n_attacked, n_bins, upper)
        want = scalar_occupancy_likelihoods(n_attacked, n_bins, upper)
        assert got.tolist() == want.tolist()

    @given(st.integers(2, 30), st.integers(1, 400))
    @settings(max_examples=40)
    def test_mle_matches_scalar_sweep(self, n_replicas, upper_extra):
        n_attacked = 1 + (upper_extra % (n_replicas - 1))
        upper_bound = n_attacked + upper_extra
        got = _estimate_mle(n_attacked, n_replicas, upper_bound)
        want_m, want_log = scalar_mle_m_hat(
            n_attacked, n_replicas, upper_bound
        )
        assert got.m_hat == want_m
        assert got.log_likelihood == want_log


class TestAttackedCountBitIdentity:
    sizes_strategy = st.lists(st.integers(0, 40), min_size=1, max_size=25)

    @given(sizes_strategy, st.integers(0, 60))
    @settings(max_examples=60)
    def test_attacked_count_pmf_bit_identical(self, sizes, n_bots):
        n_clients = sum(sizes) + 5
        n_bots = min(n_bots, n_clients)
        got = attacked_count_pmf(sizes, n_clients, n_bots)
        want = scalar_attacked_count_pmf(sizes, n_clients, n_bots)
        assert got.tolist() == want.tolist()

    @given(sizes_strategy, st.integers(1, 60))
    @settings(max_examples=40)
    def test_log_pmf_agrees_with_linear(self, sizes, n_bots):
        n_clients = sum(sizes) + 5
        n_bots = min(n_bots, n_clients)
        linear = attacked_count_pmf(sizes, n_clients, n_bots)
        logged = attacked_count_log_pmf(sizes, n_clients, n_bots)
        # domain: log — compare in linear space.  The two routes order
        # the arithmetic differently (logaddexp vs linear multiply-add)
        # and tiny linear cells lose relative precision to cancellation,
        # so the pin is rtol on the meaningful mass + small atol.
        assert np.allclose(np.exp(logged), linear, rtol=1e-6, atol=1e-12)

    def test_log_pmf_is_normalized(self):
        sizes = [7] * 100 + [0] * 10 + [3] * 40
        logged = attacked_count_log_pmf(sizes, 850, 300)
        total = float(np.logaddexp.reduce(logged[np.isfinite(logged)]))
        assert total == pytest.approx(0.0, abs=1e-9)

    @given(st.integers(1, 15), st.integers(1, 120))
    @settings(max_examples=30)
    def test_weighted_matches_scalar_search(self, n_groups, n_bots):
        sizes = [3 + (i % 5) for i in range(n_groups)]
        n_clients = sum(sizes)
        n_bots = min(n_bots, n_clients)
        pmf = scalar_attacked_count_pmf(sizes, n_clients, n_bots)
        # Pick an observable, non-degenerate X from the model's support.
        n_attacked = int(np.argmax(pmf))
        nonempty = sum(1 for s in sizes if s > 0)
        if n_attacked == 0 or n_attacked >= nonempty:
            return
        got = _estimate_weighted(n_attacked, np.array(sizes), n_clients)
        want = scalar_weighted_m_hat(n_attacked, sizes, n_clients)
        assert got.m_hat == want


class TestClosedFormTail:
    @pytest.mark.parametrize("n_bins", [10, 25])
    @pytest.mark.parametrize("n_attacked", [1, 4, 9])
    def test_closed_form_matches_recurrence_past_threshold(
        self, n_bins, n_attacked
    ):
        if n_attacked > n_bins:
            pytest.skip("x > P")
        threshold = _closed_form_threshold(n_attacked)
        ms = np.arange(threshold, threshold + 40, dtype=np.int64)
        exact = scalar_occupancy_likelihoods(
            n_attacked, n_bins, int(ms.max())
        )[ms]
        closed = np.exp(_occupancy_log_closed(ms, n_attacked, n_bins))
        assert np.allclose(closed, exact, rtol=1e-9, atol=1e-300)

    def test_hybrid_switches_consistently(self):
        # Values straddling the threshold must agree with the exact table
        # on both sides of the switch.
        x, p = 5, 40
        threshold = _closed_form_threshold(x)
        ms = np.arange(threshold - 10, threshold + 10, dtype=np.int64)
        table = scalar_occupancy_likelihoods(x, p, int(ms.max()))
        got = np.exp(occupancy_log_likelihoods(x, p, ms))
        assert np.allclose(got, table[ms], rtol=1e-9)

    def test_grid_search_agrees_with_sweep_at_moderate_scale(self):
        # Force the hybrid path by shrinking the sweep limit.
        import repro.core.estimator as est

        old = est._EXACT_SWEEP_LIMIT
        est._EXACT_SWEEP_LIMIT = 1
        try:
            hybrid = _estimate_mle(30, 100, 50_000)
        finally:
            est._EXACT_SWEEP_LIMIT = old
        sweep = _estimate_mle(30, 100, 50_000)
        assert hybrid.m_hat == sweep.m_hat
        assert hybrid.log_likelihood == pytest.approx(
            sweep.log_likelihood, rel=1e-9
        )


class TestMaxPlusCombine:
    @given(
        st.lists(
            st.floats(0.0, 500.0, allow_nan=False), min_size=1, max_size=80
        ),
        st.lists(
            st.floats(0.0, 500.0, allow_nan=False), min_size=1, max_size=80
        ),
    )
    @settings(max_examples=60)
    def test_combine_bit_identical(self, u_vals, v_vals):
        size = min(len(u_vals), len(v_vals))
        uv = np.asarray(u_vals[:size], dtype=np.float64)
        vv = np.asarray(v_vals[:size], dtype=np.float64)
        got = _combine(
            _Node(values=uv, n_replicas=1), _Node(values=vv, n_replicas=1)
        )
        want_vals, want_arg = scalar_combine(uv, vv)
        assert got.values.tolist() == want_vals.tolist()
        assert got.arg is not None
        assert got.arg.tolist() == want_arg.tolist()

    def test_combine_chunking_boundary(self):
        # Exercise the chunked path: rows-per-chunk smaller than size.
        import repro.core.dp_fast as dpf

        rng = np.random.default_rng(20140623)
        uv = rng.uniform(0, 100, size=257)
        vv = rng.uniform(0, 100, size=257)
        old = dpf._COMBINE_CHUNK
        dpf._COMBINE_CHUNK = 1000  # ~3 rows per chunk at size 257
        try:
            got = _combine(
                _Node(values=uv, n_replicas=1),
                _Node(values=vv, n_replicas=1),
            )
        finally:
            dpf._COMBINE_CHUNK = old
        want_vals, want_arg = scalar_combine(uv, vv)
        assert got.values.tolist() == want_vals.tolist()
        assert got.arg is not None
        assert got.arg.tolist() == want_arg.tolist()


class TestAlgorithmOneTables:
    @pytest.mark.parametrize(
        "n, m, p", [(12, 4, 3), (20, 6, 4), (30, 10, 2), (15, 15, 3)]
    )
    def test_tables_match_scalar_nest(self, n, m, p):
        got = optimal_assign(n, m, p)
        want_save, want_assign = scalar_optimal_assign(n, m, p)
        # The broadcast row changes only the summation order, so values
        # are tolerance-equal, not bit-equal.
        assert np.allclose(got.save_no, want_save, rtol=1e-9, atol=1e-12)
        # Argmaxes must agree wherever the scalar best is not within
        # float noise of the runner-up (ties may legitimately flip).
        diff = got.assign_no != want_assign
        if diff.any():
            for i, j, k in zip(*np.nonzero(diff)):
                assert math.isclose(
                    got.save_no[i, j, k],
                    want_save[i, j, k],
                    rel_tol=1e-9,
                )

    def test_value_large_instance(self):
        got = optimal_assign(60, 12, 4)
        want_save, _ = scalar_optimal_assign(60, 12, 4)
        assert float(
            got.save_no[60, 12, 3]
        ) == pytest.approx(float(want_save[60, 12, 3]), rel=1e-12)


class TestLargeNInvariants:
    def test_mle_at_paper_scale_runs_and_is_sane(self):
        # N = 10^6, P = 10^3: far beyond the exact-sweep budget; the
        # hybrid path must return an informative, in-range estimate.
        result = _estimate_mle(600, 1_000, 1_000_000)
        assert 600 <= result.m_hat <= 1_000_000
        assert math.isfinite(result.log_likelihood)
        # Moment estimate is a consistency anchor (tracks MLE closely).
        raw = math.log1p(-600 / 1000) / math.log1p(-1 / 1000)
        assert abs(result.m_hat - raw) / raw < 0.05

    def test_log_likelihoods_monotone_tail(self):
        # For m far past the mode the likelihood must decay monotonically
        # (unimodality the grid refinement relies on).
        logs = occupancy_log_likelihoods(
            10, 50, np.arange(2_000, 2_200, dtype=np.int64)
        )
        assert np.all(np.diff(logs) < 0)
