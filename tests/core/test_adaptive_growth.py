"""Tests for the Theorem 1 adaptive replica-growth policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.shuffler import ShuffleEngine


def make_engine(**kwargs):
    defaults = dict(
        n_replicas=4,
        planner="greedy",
        rng=np.random.default_rng(5),
    )
    defaults.update(kwargs)
    return ShuffleEngine(**defaults)


class TestConfiguration:
    def test_growth_multiplier_validated(self):
        with pytest.raises(ValueError):
            make_engine(adaptive_growth=True, growth_multiplier=1.0)

    def test_max_replicas_validated(self):
        with pytest.raises(ValueError):
            make_engine(n_replicas=10, max_replicas=5)

    def test_disabled_by_default(self):
        engine = make_engine()
        assert not engine.adaptive_growth


class TestGrowthBehaviour:
    def test_pool_grows_under_saturation(self):
        # 4 replicas vs 100 bots: every replica is attacked every round.
        engine = make_engine(adaptive_growth=True)
        engine.run(benign=200, bots=100, target_fraction=0.5,
                   max_rounds=20)
        assert engine.n_replicas > 4

    def test_fixed_pool_stalls_where_adaptive_recovers(self):
        benign, bots = 300, 150
        fixed = make_engine(rng=np.random.default_rng(9))
        fixed_state = fixed.run(benign=benign, bots=bots,
                                target_fraction=0.6, max_rounds=40)

        adaptive = make_engine(
            adaptive_growth=True, rng=np.random.default_rng(9)
        )
        adaptive_state = adaptive.run(benign=benign, bots=bots,
                                      target_fraction=0.6, max_rounds=40)
        # With P=4 and 150 bots, the fixed pool saves essentially nobody;
        # Theorem 1 growth escapes the saturated regime.
        assert adaptive_state.saved_fraction > fixed_state.saved_fraction
        assert adaptive_state.saved_fraction >= 0.6

    def test_growth_respects_cap(self):
        engine = make_engine(adaptive_growth=True, max_replicas=16)
        engine.run(benign=200, bots=100, target_fraction=0.9,
                   max_rounds=30)
        assert engine.n_replicas <= 16

    def test_no_growth_without_saturation(self):
        engine = make_engine(n_replicas=64, adaptive_growth=True)
        engine.run(benign=100, bots=2, target_fraction=0.9, max_rounds=30)
        assert engine.n_replicas == 64

    def test_growth_matches_theorem1_direction(self):
        """After growth, the expected bot-free replica count recovers."""
        from repro.analysis.theory import expected_unattacked_replicas

        bots = 100
        before = expected_unattacked_replicas(4, bots)
        assert before < 1.0  # saturated per Theorem 1
        engine = make_engine(adaptive_growth=True)
        engine.run(benign=400, bots=bots, target_fraction=0.8,
                   max_rounds=60)
        after = expected_unattacked_replicas(engine.n_replicas, bots)
        assert after > before
