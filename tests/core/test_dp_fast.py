"""Tests for the separable (max,+) dynamic program."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp_fast import dp_fast_plan, dp_fast_sizes, dp_fast_value
from repro.core.even import even_plan
from repro.core.greedy import greedy_plan
from repro.core.objective import expected_saved_sizes


def brute_force_optimum(n: int, m: int, p: int) -> float:
    """Enumerate every partition of n into p ordered non-negative parts."""
    best = -1.0
    for cuts in itertools.combinations_with_replacement(range(n + 1), p - 1):
        parts = []
        prev = 0
        for cut in cuts:
            parts.append(cut - prev)
            prev = cut
        parts.append(n - prev)
        if any(size < 0 for size in parts):
            continue
        best = max(best, expected_saved_sizes(parts, n, m))
    return best


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "n,m,p",
        [
            (6, 0, 2),
            (6, 1, 2),
            (8, 2, 3),
            (9, 3, 3),
            (10, 1, 4),
            (7, 7, 2),
            (12, 4, 2),
        ],
    )
    def test_value_matches_enumeration(self, n, m, p):
        assert dp_fast_value(n, m, p) == pytest.approx(
            brute_force_optimum(n, m, p), abs=1e-9
        )


class TestPlanConsistency:
    @given(
        st.integers(0, 60),
        st.integers(0, 12),
        st.integers(1, 8),
    )
    @settings(max_examples=40)
    def test_sizes_partition_clients(self, n, m, p):
        m = min(m, n)
        sizes = dp_fast_sizes(n, m, p)
        assert len(sizes) == p
        assert sum(sizes) == n
        assert all(size >= 0 for size in sizes)

    @given(
        st.integers(1, 60),
        st.integers(0, 12),
        st.integers(1, 8),
    )
    @settings(max_examples=40)
    def test_plan_value_equals_dp_value(self, n, m, p):
        m = min(m, n)
        plan = dp_fast_plan(n, m, p)
        assert plan.expected_saved == pytest.approx(
            dp_fast_value(n, m, p), abs=1e-9
        )
        assert plan.algorithm == "dp_fast"


class TestDominance:
    @given(
        st.integers(1, 80),
        st.integers(0, 20),
        st.integers(1, 10),
    )
    @settings(max_examples=40)
    def test_dominates_greedy_and_even(self, n, m, p):
        m = min(m, n)
        optimum = dp_fast_value(n, m, p)
        assert optimum >= greedy_plan(n, m, p).expected_saved - 1e-9
        assert optimum >= even_plan(n, m, p).expected_saved - 1e-9

    def test_p_exceeding_clients_isolates_everyone(self):
        # P >= N: every client can get an exclusive replica, so the only
        # losses are the bots themselves.
        n, m = 10, 3
        assert dp_fast_value(n, m, 10) == pytest.approx(n - m)


class TestEdges:
    def test_zero_clients(self):
        assert dp_fast_value(0, 0, 3) == 0.0
        assert dp_fast_sizes(0, 0, 3) == [0, 0, 0]

    def test_single_replica(self):
        assert dp_fast_value(9, 2, 1) == pytest.approx(0.0)
        assert dp_fast_sizes(9, 2, 1) == [9]

    def test_validation(self):
        with pytest.raises(ValueError):
            dp_fast_value(5, 6, 2)
        with pytest.raises(ValueError):
            dp_fast_value(5, 2, 0)
        with pytest.raises(ValueError):
            dp_fast_value(-1, 0, 1)

    def test_paper_scale_runs_fast(self):
        # Figure 3's largest cell: 1000 clients, 200 replicas.
        value = dp_fast_value(1000, 100, 200)
        assert value > 0
