"""Property tests for the log-domain combinatorics helpers at scale.

The estimator chain works in log space precisely so that N on the order
of 10^6 clients does not overflow or underflow; these tests pin that
promise directly.  Every identity here is exercised both on small
instances (where a naive linear-space computation is still exact enough
to compare against) and at magnitudes where the naive form would
overflow a float64 — the log-space helpers must stay finite, ordered,
and inside their ranges throughout.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combinatorics import (
    hypergeometric_pmf,
    hypergeometric_pmf_vector,
    log1mexp,
    log_binomial,
    logsumexp,
    survival_probabilities,
    survival_probability,
)

#: instance scales from toy to paper-sized (10^6 clients)
huge_n = st.integers(10**5, 10**6)


class TestLogBinomial:
    @given(st.integers(0, 60), st.integers(0, 60))
    @settings(max_examples=80)
    def test_matches_exact_math_comb_when_small(self, n, k):
        k = min(k, n)
        exact = math.comb(n, k)
        assert log_binomial(n, k) == pytest.approx(
            math.log(exact), rel=1e-12
        )

    @given(huge_n, st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=40)
    def test_finite_and_symmetric_at_scale(self, n, frac):
        k = int(frac * n)
        value = log_binomial(n, k)
        assert math.isfinite(value)
        # C(n, k) == C(n, n-k) must survive the lgamma formulation.
        assert value == pytest.approx(log_binomial(n, n - k), abs=1e-6)
        # log C(n, k) <= n log 2 (sum of the row of Pascal's triangle).
        assert value <= n * math.log(2.0) + 1e-6

    @given(huge_n)
    @settings(max_examples=20)
    def test_unimodal_peak_at_center(self, n):
        mid = n // 2
        assert log_binomial(n, mid) >= log_binomial(n, mid // 2)
        assert log_binomial(n, mid) >= log_binomial(n, mid + mid // 2)


class TestLogSumExp:
    @given(
        st.lists(
            st.floats(-50.0, 50.0, allow_nan=False), min_size=1,
            max_size=32,
        )
    )
    @settings(max_examples=80)
    def test_matches_naive_when_safe(self, values):
        arr = np.array(values, dtype=np.float64)
        naive = math.log(float(np.sum(np.exp(arr))))
        assert logsumexp(arr) == pytest.approx(naive, rel=1e-12)

    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=80)
    def test_finite_and_bounded_at_extreme_magnitudes(self, values):
        arr = np.array(values, dtype=np.float64)
        result = logsumexp(arr)
        peak = float(np.max(arr))
        # max <= logsumexp <= max + log(len): never overflows, never
        # loses the dominant term, even when naive exp() would be inf.
        assert peak <= result <= peak + math.log(arr.size) + 1e-9

    def test_empty_is_log_of_zero(self):
        assert logsumexp(np.array([])) == float("-inf")

    def test_all_neg_inf_stays_neg_inf(self):
        arr = np.full(16, -np.inf)
        assert logsumexp(arr) == float("-inf")

    @given(st.floats(-1e9, 700.0, allow_nan=False))
    @settings(max_examples=60)
    def test_shift_invariance(self, shift):
        arr = np.array([-1.0, -2.5, -7.0])
        assert logsumexp(arr + shift) == pytest.approx(
            logsumexp(arr) + shift, rel=1e-12, abs=1e-9
        )


class TestLog1mExp:
    @given(st.floats(-50.0, -1e-12, allow_nan=False))
    @settings(max_examples=80)
    def test_is_inverse_of_its_definition(self, x):
        # exp(log1mexp(x)) == 1 - exp(x) on the whole domain,
        # including both branches of the Maechler split.
        assert math.exp(log1mexp(x)) == pytest.approx(
            1.0 - math.exp(x), rel=1e-9, abs=1e-15
        )

    @given(st.floats(-1e9, 0.0, allow_nan=False))
    @settings(max_examples=80)
    def test_range_is_nonpositive(self, x):
        result = log1mexp(x)
        # 1 - exp(x) in [0, 1] for x <= 0 (exp underflows to 0 for very
        # negative x), so its log is in [-inf, 0].
        assert result <= 0.0
        assert not math.isnan(result)

    def test_boundary_zero_is_neg_inf(self):
        assert log1mexp(0.0) == float("-inf")

    def test_positive_input_rejected(self):
        with pytest.raises(ValueError):
            log1mexp(1e-9)

    @given(
        st.floats(-30.0, -1e-9, allow_nan=False),
        st.floats(-30.0, -1e-9, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_monotone_decreasing(self, a, b):
        lo, hi = sorted((a, b))
        # x -> 1 - exp(x) decreases, so log1mexp must too.
        assert log1mexp(lo) >= log1mexp(hi) - 1e-9


class TestSurvivalAtScale:
    @given(huge_n, st.integers(1, 2000))
    @settings(max_examples=30, deadline=None)
    def test_probability_stays_in_unit_interval(self, n, m):
        m = min(m, n)
        xs = np.array([0, 1, m // 2, m], dtype=np.int64)
        probs = survival_probabilities(n, m, xs)
        assert np.all(probs >= 0.0)
        assert np.all(probs <= 1.0)
        assert np.all(np.isfinite(probs))

    @given(huge_n, st.integers(2, 500))
    @settings(max_examples=30, deadline=None)
    def test_monotone_decreasing_in_assignment_size(self, n, m):
        m = min(m, n - 1)
        # A larger group is at least as likely to catch a bot.
        small = survival_probability(n, m, 1)
        large = survival_probability(n, m, min(n - m, 10_000))
        assert small + 1e-12 >= large

    @given(st.integers(2, 200), st.integers(1, 50))
    @settings(max_examples=60)
    def test_matches_exact_ratio_when_small(self, n, m):
        m = min(m, n - 1)
        for x in (0, 1, (n - m) // 2, n - m):
            exact = math.comb(n - x, m) / math.comb(n, m)
            assert survival_probability(n, m, x) == pytest.approx(
                exact, rel=1e-9
            )


class TestHypergeometricAtScale:
    @given(st.integers(10, 500), st.integers(0, 100), st.integers(1, 80))
    @settings(max_examples=60)
    def test_vector_sums_to_one(self, total, marked, draws):
        marked = min(marked, total)
        draws = min(draws, total)
        pmf = hypergeometric_pmf_vector(total, marked, draws)
        assert np.all(pmf >= 0.0)
        assert np.all(pmf <= 1.0)
        assert float(np.sum(pmf)) == pytest.approx(1.0, abs=1e-9)

    @given(huge_n, st.integers(0, 2000), st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_vector_normalized_at_paper_scale(self, total, marked, draws):
        marked = min(marked, total)
        draws = min(draws, total)
        pmf = hypergeometric_pmf_vector(total, marked, draws)
        assert np.all(np.isfinite(pmf))
        assert float(np.sum(pmf)) == pytest.approx(1.0, abs=1e-8)

    @given(huge_n, st.integers(1, 1000), st.integers(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_scalar_agrees_with_vector(self, total, marked, draws):
        marked = min(marked, total)
        draws = min(draws, total)
        pmf = hypergeometric_pmf_vector(total, marked, draws)
        hits = int(np.argmax(pmf))
        # The scalar path uses math.lgamma, the vector path scipy's
        # gammaln where available — at 10^6-sized arguments the two
        # differ in the last ulps, amplified by exp() to ~1e-9 relative.
        assert hypergeometric_pmf(
            total, marked, draws, hits
        ) == pytest.approx(float(pmf[hits]), rel=1e-6)
