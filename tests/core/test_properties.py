"""Cross-cutting property tests over the optimization stack.

These encode the model's structural truths once, over random instances,
rather than per-module examples: dominance orderings, monotonicities, and
conservation laws that must survive any future refactor.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp_fast import dp_fast_value
from repro.core.even import even_plan
from repro.core.greedy import greedy_plan
from repro.core.objective import expected_saved_sizes


small_instances = st.tuples(
    st.integers(1, 120),  # clients
    st.integers(0, 40),  # bots (clipped)
    st.integers(1, 15),  # replicas
)


class TestDominanceChain:
    @given(small_instances)
    @settings(max_examples=60)
    def test_optimal_geq_greedy_geq_even(self, instance):
        n, m, p = instance
        m = min(m, n)
        optimal = dp_fast_value(n, m, p)
        greedy = greedy_plan(n, m, p).expected_saved
        even = even_plan(n, m, p).expected_saved
        assert optimal + 1e-9 >= greedy >= even - 1e-9

    @given(small_instances)
    @settings(max_examples=40)
    def test_objective_bounded_by_benign(self, instance):
        n, m, p = instance
        m = min(m, n)
        assert dp_fast_value(n, m, p) <= (n - m) + 1e-9


class TestMonotonicity:
    @given(st.integers(2, 80), st.integers(0, 20), st.integers(1, 8))
    @settings(max_examples=40)
    def test_optimal_monotone_in_replicas(self, n, m, p):
        m = min(m, n)
        assert (
            dp_fast_value(n, m, p + 1) >= dp_fast_value(n, m, p) - 1e-9
        )

    @given(st.integers(2, 80), st.integers(0, 19), st.integers(1, 8))
    @settings(max_examples=40)
    def test_optimal_monotone_in_bots(self, n, m, p):
        m = min(m, n - 1)
        assert (
            dp_fast_value(n, m + 1, p) <= dp_fast_value(n, m, p) + 1e-9
        )

    @given(st.integers(1, 60), st.integers(0, 15), st.integers(1, 10))
    @settings(max_examples=40)
    def test_greedy_scale_consistency(self, n, m, p):
        """A plan's value never exceeds what P full isolation achieves."""
        m = min(m, n)
        value = greedy_plan(n, m, p).expected_saved
        isolation = dp_fast_value(n, m, n) if n >= 1 else 0.0
        assert value <= isolation + 1e-9


class TestPermutationInvariance:
    @given(
        st.lists(st.integers(0, 30), min_size=2, max_size=8),
        st.integers(0, 10),
        st.integers(0, 2_000),
    )
    @settings(max_examples=40)
    def test_objective_is_symmetric_in_groups(self, sizes, m, seed):
        n = sum(sizes)
        m = min(m, n)
        baseline = expected_saved_sizes(sizes, n, m)
        rng = np.random.default_rng(seed)
        shuffled = list(sizes)
        rng.shuffle(shuffled)
        assert expected_saved_sizes(shuffled, n, m) == pytest.approx(
            baseline
        )

    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=8),
        st.integers(0, 10),
    )
    @settings(max_examples=40)
    def test_empty_groups_are_free(self, sizes, m):
        n = sum(sizes)
        m = min(m, n)
        padded = list(sizes) + [0, 0, 0]
        assert expected_saved_sizes(padded, n, m) == pytest.approx(
            expected_saved_sizes(sizes, n, m)
        )


class TestMergingHurts:
    @given(
        st.lists(st.integers(1, 20), min_size=3, max_size=6),
        st.integers(1, 8),
    )
    @settings(max_examples=40)
    def test_merging_two_groups_never_helps(self, sizes, m):
        """Splitting is (weakly) good: merging the two smallest groups
        cannot increase E[S] when bots are present.

        Follows from f(a) + f(b) >= f(a+b): survival of the merged group
        requires both halves bot-free, so each client's saving
        probability only drops.
        """
        n = sum(sizes)
        m = min(m, n)
        if m == 0:
            return
        merged = sorted(sizes)
        a = merged.pop(0)
        merged[0] += a
        assert (
            expected_saved_sizes(merged, n, m)
            <= expected_saved_sizes(sizes, n, m) + 1e-9
        )
