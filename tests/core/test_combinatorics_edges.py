"""Edge-of-domain and paper-scale stability tests for combinatorics.

Covers the boundary configurations the shuffling model actually hits —
no bots (``M = 0``), all bots (``M = N``), empty replicas (``x_i = 0``),
one replica holding everyone (``x_i = N``) — plus log-space stability at
the paper's largest scale, ``N = 150,000`` (Section VI-A), where exact
binomial coefficients overflow any fixed-width float.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.combinatorics import (
    binomial_ratio,
    expected_saved_single,
    expected_saved_single_many,
    hypergeometric_pmf,
    hypergeometric_pmf_vector,
    log_binomial,
    survival_probabilities,
    survival_probability,
)

PAPER_N = 150_000


class TestNoBots:
    """``M = 0``: every replica is trivially bot-free."""

    def test_survival_is_one_for_every_group_size(self):
        for x in (0, 1, 17, 99, 100):
            assert survival_probability(100, 0, x) == 1.0

    def test_vectorized_matches(self):
        xs = np.array([0, 1, 50, 100])
        np.testing.assert_array_equal(
            survival_probabilities(100, 0, xs), np.ones(4)
        )

    def test_expected_saved_equals_group_size(self):
        assert expected_saved_single(100, 0, 37) == 37.0


class TestAllBots:
    """``M = N``: every nonempty replica is attacked with certainty."""

    def test_nonempty_groups_never_survive(self):
        for x in (1, 50, 100):
            assert survival_probability(100, 100, x) == 0.0

    def test_empty_group_survives(self):
        # C(N - 0, N) / C(N, N) = 1: no clients, nothing to attack.
        assert survival_probability(100, 100, 0) == 1.0

    def test_vectorized_matches_scalar(self):
        xs = np.array([0, 1, 99, 100])
        expected = [survival_probability(100, 100, int(x)) for x in xs]
        np.testing.assert_allclose(
            survival_probabilities(100, 100, xs), expected
        )


class TestGroupSizeBoundaries:
    """``x_i = 0`` and ``x_i = N`` for intermediate bot counts."""

    def test_empty_group_always_survives(self):
        for m in (0, 1, 50, 100):
            assert survival_probability(100, m, 0) == 1.0

    def test_full_group_survives_iff_no_bots(self):
        assert survival_probability(100, 0, 100) == 1.0
        for m in (1, 2, 100):
            assert survival_probability(100, m, 100) == 0.0

    def test_out_of_range_arguments_raise(self):
        with pytest.raises(ValueError):
            survival_probability(100, 5, 101)
        with pytest.raises(ValueError):
            survival_probability(100, 5, -1)
        with pytest.raises(ValueError):
            survival_probability(100, 101, 5)

    def test_binomial_ratio_zero_denominator_raises(self):
        with pytest.raises(ZeroDivisionError):
            binomial_ratio(5, 2, 3, 4)  # C(3, 4) == 0


class TestPaperScaleStability:
    """Log-space results stay finite and within [0, 1] at N = 150,000."""

    def test_log_binomial_is_finite_at_paper_scale(self):
        value = log_binomial(PAPER_N, PAPER_N // 2)
        assert math.isfinite(value)
        # C(150000, 75000) ≈ 10^45150 — hopeless outside log-space.
        assert value > 1e5

    def test_survival_probabilities_valid_at_paper_scale(self):
        m = 100_000  # paper's Figure 9/10 bot counts reach 10^5
        xs = np.array([0, 1, 10, 150, 1_000, 50_000, PAPER_N - m])
        probs = survival_probabilities(PAPER_N, m, xs)
        assert np.isfinite(probs).all()
        assert (probs >= 0.0).all()
        assert (probs <= 1.0).all()
        # Larger groups are strictly more likely to catch a bot.
        assert (np.diff(probs) <= 0).all()

    def test_scalar_and_vector_paths_agree_at_paper_scale(self):
        m = 5_000
        for x in (1, 150, 30_000):
            np.testing.assert_allclose(
                survival_probabilities(PAPER_N, m, np.array([x]))[0],
                survival_probability(PAPER_N, m, x),
                rtol=1e-8,  # gammaln (vector) vs lgamma (scalar) ulps
            )

    def test_expected_saved_finite_at_paper_scale(self):
        xs = np.arange(0, 2_000, 37)
        values = expected_saved_single_many(PAPER_N, 100_000, xs)
        assert np.isfinite(values).all()
        assert (values >= 0.0).all()
        assert (values <= xs).all()

    def test_hypergeometric_pmf_normalised_at_paper_scale(self):
        # Full pmf over a 1500-client replica drawn from 150K clients.
        pmf = hypergeometric_pmf_vector(PAPER_N, 1_000, 1_500)
        assert np.isfinite(pmf).all()
        assert (pmf >= 0.0).all()
        assert (pmf <= 1.0).all()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    def test_hypergeometric_pmf_boundary_hits(self):
        assert hypergeometric_pmf(PAPER_N, 0, 1_000, 0) == 1.0
        assert hypergeometric_pmf(PAPER_N, PAPER_N, 1_000, 1_000) == 1.0
        assert hypergeometric_pmf(PAPER_N, 1, 0, 0) == 1.0
        # Impossible: more hits than draws.
        assert hypergeometric_pmf(PAPER_N, 10, 5, 6) == 0.0
