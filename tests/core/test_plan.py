"""Unit tests for repro.core.plan."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.plan import PlanError, ShufflePlan, validate_partition


class TestShufflePlanValidation:
    def test_valid_plan(self):
        plan = ShufflePlan(group_sizes=(3, 4, 3), n_clients=10, n_bots=2)
        assert plan.n_replicas == 3

    def test_sizes_must_sum_to_clients(self):
        with pytest.raises(PlanError, match="sum"):
            ShufflePlan(group_sizes=(3, 4), n_clients=10, n_bots=2)

    def test_negative_size_rejected(self):
        with pytest.raises(PlanError, match="negative"):
            ShufflePlan(group_sizes=(11, -1), n_clients=10, n_bots=2)

    def test_bots_bounded_by_clients(self):
        with pytest.raises(PlanError, match="n_bots"):
            ShufflePlan(group_sizes=(5, 5), n_clients=10, n_bots=11)

    def test_negative_clients_rejected(self):
        with pytest.raises(PlanError, match="n_clients"):
            ShufflePlan(group_sizes=(), n_clients=-1, n_bots=0)

    def test_empty_plan_is_legal(self):
        plan = ShufflePlan(group_sizes=(), n_clients=0, n_bots=0)
        assert plan.n_replicas == 0

    def test_zero_sized_groups_allowed(self):
        plan = ShufflePlan(group_sizes=(0, 10, 0), n_clients=10, n_bots=1)
        assert plan.nonempty_sizes() == (10,)


class TestFromSizes:
    def test_infers_n_clients(self):
        plan = ShufflePlan.from_sizes([2, 3, 5], n_bots=1)
        assert plan.n_clients == 10
        assert plan.group_sizes == (2, 3, 5)

    def test_coerces_numpy_ints(self):
        plan = ShufflePlan.from_sizes(np.array([2, 3], dtype=np.int64), 1)
        assert all(isinstance(s, int) for s in plan.group_sizes)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=20))
    def test_roundtrip(self, sizes):
        plan = ShufflePlan.from_sizes(sizes, n_bots=0)
        assert list(plan.group_sizes) == sizes
        assert plan.n_clients == sum(sizes)


class TestAccessors:
    def test_sizes_array_is_a_copy(self):
        plan = ShufflePlan.from_sizes([1, 2, 3], 0)
        arr = plan.sizes_array
        arr[0] = 99
        assert plan.group_sizes == (1, 2, 3)

    def test_describe_mentions_algorithm_and_sizes(self):
        plan = ShufflePlan.from_sizes(
            [5, 5, 10], 2, expected_saved=7.5, algorithm="greedy"
        )
        text = plan.describe()
        assert "greedy" in text
        assert "2x5" in text
        assert "1x10" in text
        assert "7.50" in text


class TestValidatePartition:
    def test_accepts_valid(self):
        validate_partition([1, 2, 3], 6)

    def test_rejects_bad_sum(self):
        with pytest.raises(PlanError):
            validate_partition([1, 2, 3], 7)

    def test_rejects_negative(self):
        with pytest.raises(PlanError):
            validate_partition([-1, 7], 6)
