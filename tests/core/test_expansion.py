"""Tests for the pure server-expansion (attack-dilution) baseline."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expansion import (
    ExpansionPlan,
    expansion_replicas_needed,
    expansion_saved_fraction,
)


class TestSavedFraction:
    def test_no_benign(self):
        assert expansion_saved_fraction(10, 10, 5) == 0.0

    def test_no_bots(self):
        assert expansion_saved_fraction(100, 0, 1) == pytest.approx(1.0)

    def test_monotone_in_replicas(self):
        values = [
            expansion_saved_fraction(1000, 100, p)
            for p in (10, 100, 1000, 5000)
        ]
        for fewer, more in zip(values, values[1:]):
            assert more >= fewer - 1e-9

    def test_asymptotics(self):
        # For P >> M, saved fraction ~ (1 - 1/P)^M ~ exp(-M/P).
        n, m, p = 100_000, 1_000, 10_000
        measured = expansion_saved_fraction(n, m, p)
        assert measured == pytest.approx(math.exp(-m / p), rel=0.05)


class TestReplicasNeeded:
    def test_achieves_target(self):
        p = expansion_replicas_needed(10_000, 500, 0.8)
        assert expansion_saved_fraction(10_000, 500, p) >= 0.8
        if p > 1:
            assert expansion_saved_fraction(10_000, 500, p - 1) < 0.8

    def test_scales_with_bots(self):
        few = expansion_replicas_needed(100_000, 1_000, 0.8)
        many = expansion_replicas_needed(100_000, 10_000, 0.8)
        assert many > 5 * few

    def test_dilution_is_expensive(self):
        """The intro's claim, quantified: multiple replicas *per bot* for
        an 80% target (vs. the shuffling defense's fixed small pool)."""
        bots = 2_000
        p = expansion_replicas_needed(bots + 10_000, bots, 0.8)
        assert p > 2 * bots
        assert p < 5 * bots

    def test_headline_scale_dilution(self):
        """At the paper's headline scale (100K bots, 50K benign), pure
        expansion needs a replica for nearly every client."""
        p = expansion_replicas_needed(150_000, 100_000, 0.8)
        assert p > 100_000  # vs. shuffling's pool of 1000

    def test_no_bots_needs_one_replica(self):
        assert expansion_replicas_needed(100, 0, 0.99) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            expansion_replicas_needed(100, 10, 1.5)
        with pytest.raises(ValueError):
            expansion_replicas_needed(10, 10, 0.8)

    def test_max_replicas_guard(self):
        # The target is reachable, just not under the tiny cap.
        with pytest.raises(OverflowError):
            expansion_replicas_needed(100_000, 50_000, 0.99,
                                      max_replicas=64)

    def test_saturates_at_full_isolation(self):
        # P >= N gives every client an exclusive replica: all benign are
        # saved in expectation, so any target below 1.0 is reachable.
        assert expansion_saved_fraction(1_000, 500, 1_000) == pytest.approx(
            1.0
        )

    @given(st.integers(1, 200), st.floats(0.3, 0.95))
    @settings(max_examples=20)
    def test_binary_search_correct(self, bots, target):
        n = bots + 500
        p = expansion_replicas_needed(n, bots, target)
        assert expansion_saved_fraction(n, bots, p) >= target
        if p > 1:
            assert expansion_saved_fraction(n, bots, p - 1) < target


class TestExpansionPlan:
    def test_solve_roundtrip(self):
        plan = ExpansionPlan.solve(5_000, 300, 0.8)
        assert plan.replicas_needed == expansion_replicas_needed(
            5_000, 300, 0.8
        )
        assert plan.achieved_fraction >= 0.8
