"""Tests for attack-scale estimation (occupancy MLE and moment matching)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import (
    estimate_bots_mle,
    estimate_bots_moment,
    occupancy_likelihoods,
    occupancy_pmf,
)


def brute_force_occupancy(n_balls: int, n_bins: int) -> np.ndarray:
    """Occupancy pmf by enumerating all bin assignments (tiny cases)."""
    counts = np.zeros(n_bins + 1)
    total = 0
    for assignment in itertools.product(range(n_bins), repeat=n_balls):
        counts[len(set(assignment))] += 1
        total += 1
    return counts / max(total, 1)


class TestOccupancyPmf:
    @pytest.mark.parametrize("n_balls,n_bins", [(0, 3), (1, 3), (2, 2),
                                                (3, 3), (4, 2), (5, 3)])
    def test_matches_enumeration(self, n_balls, n_bins):
        pmf = occupancy_pmf(n_balls, n_bins)
        reference = brute_force_occupancy(n_balls, n_bins)
        np.testing.assert_allclose(pmf, reference, atol=1e-12)

    @given(st.integers(0, 60), st.integers(1, 25))
    def test_normalized(self, n_balls, n_bins):
        pmf = occupancy_pmf(n_balls, n_bins)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf.min() >= 0.0

    def test_zero_balls(self):
        pmf = occupancy_pmf(0, 4)
        assert pmf[0] == 1.0

    def test_cannot_occupy_more_bins_than_balls(self):
        pmf = occupancy_pmf(3, 10)
        assert pmf[4:].sum() == pytest.approx(0.0, abs=1e-15)

    def test_validation(self):
        with pytest.raises(ValueError):
            occupancy_pmf(3, 0)
        with pytest.raises(ValueError):
            occupancy_pmf(-1, 3)


class TestOccupancyLikelihoods:
    def test_column_matches_pmf(self):
        n_bins, upper, x = 6, 15, 3
        likelihoods = occupancy_likelihoods(x, n_bins, upper)
        for m in range(upper + 1):
            assert likelihoods[m] == pytest.approx(
                occupancy_pmf(m, n_bins)[x]
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            occupancy_likelihoods(7, 6, 10)


class TestMle:
    def test_zero_attacked_means_zero_bots(self):
        estimate = estimate_bots_mle(0, 50, 1000)
        assert estimate.m_hat == 0
        assert not estimate.degenerate

    def test_degenerate_when_all_attacked(self):
        estimate = estimate_bots_mle(50, 50, 5000)
        assert estimate.degenerate
        assert estimate.m_hat == 5000  # collapses to the upper bound

    def test_estimate_at_least_observed(self):
        estimate = estimate_bots_mle(7, 30, 500)
        assert estimate.m_hat >= 7

    def test_accurate_in_informative_regime(self, rng):
        """Figure 7's left region: estimate tracks the truth closely."""
        n_bins, real_bots, trials = 100, 80, 25
        errors = []
        for _ in range(trials):
            bins = rng.integers(0, n_bins, size=real_bots)
            attacked = len(set(bins.tolist()))
            estimate = estimate_bots_mle(attacked, n_bins, 10_000)
            errors.append(estimate.m_hat - real_bots)
        mean_error = np.mean(errors)
        assert abs(mean_error) < 0.25 * real_bots

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_bots_mle(5, 4, 100)
        with pytest.raises(ValueError):
            estimate_bots_mle(5, 10, 3)

    @given(st.integers(1, 15), st.integers(2, 16))
    @settings(max_examples=25)
    def test_mle_maximizes_likelihood(self, x, p):
        if x >= p:
            return
        upper = 60
        estimate = estimate_bots_mle(x, p, upper)
        likelihoods = occupancy_likelihoods(x, p, upper)
        best = max(
            range(x, upper + 1), key=lambda m: likelihoods[m]
        )
        assert likelihoods[estimate.m_hat] == pytest.approx(
            likelihoods[best]
        )


class TestMomentEstimator:
    def test_matches_mle_closely(self, rng):
        n_bins = 100
        for real_bots in (20, 60, 120, 200):
            bins = rng.integers(0, n_bins, size=real_bots)
            attacked = len(set(bins.tolist()))
            if attacked == n_bins:
                continue
            mle = estimate_bots_mle(attacked, n_bins, 100_000)
            moment = estimate_bots_moment(attacked, n_bins, 100_000)
            assert moment.m_hat == pytest.approx(mle.m_hat, rel=0.1, abs=3)

    def test_degenerate_when_all_attacked(self):
        estimate = estimate_bots_moment(20, 20, 777)
        assert estimate.degenerate
        assert estimate.m_hat == 777

    def test_zero(self):
        assert estimate_bots_moment(0, 10, 100).m_hat == 0

    def test_clamped_to_bounds(self):
        estimate = estimate_bots_moment(5, 1000, 5)
        assert estimate.m_hat == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_bots_moment(11, 10, 100)
