"""Tests for the weighted (non-uniform sizes) bot-count estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import (
    attacked_count_pmf,
    estimate_bots_mle,
    estimate_bots_weighted,
)
from repro.core.greedy import greedy_sizes


class TestAttackedCountPmf:
    def test_normalized(self):
        pmf = attacked_count_pmf([5, 5, 10, 0], 20, 3)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf.min() >= 0.0

    def test_no_bots_means_no_attacks(self):
        pmf = attacked_count_pmf([4, 4, 4], 12, 0)
        assert pmf[0] == pytest.approx(1.0)

    def test_empty_replicas_cannot_be_attacked(self):
        pmf = attacked_count_pmf([12, 0, 0], 12, 2)
        # Only the one non-empty replica can be attacked, and it must be.
        assert pmf[1] == pytest.approx(1.0)
        assert pmf[2:].sum() == pytest.approx(0.0, abs=1e-12)

    def test_marginals_exact_for_single_replica(self):
        from repro.core.combinatorics import survival_probability

        pmf = attacked_count_pmf([3, 17], 20, 4)
        # P[X = 0] is exactly both replicas clean only when M=0; here the
        # approximation's X=0 mass must equal prod of survival marginals.
        p_small = survival_probability(20, 4, 3)
        p_big = survival_probability(20, 4, 17)
        assert pmf[0] == pytest.approx(p_small * p_big)

    def test_expectation_is_exact(self, rng):
        """E[X] = sum of marginal attack probabilities holds exactly
        (linearity), even though the joint pmf is approximated."""
        sizes = np.array([2, 2, 2, 2, 12])
        n, m = 20, 3
        trials = 40_000
        total = 0
        for _ in range(trials):
            bots = rng.multivariate_hypergeometric(sizes, m)
            total += int((bots > 0).sum())
        measured_mean = total / trials
        pmf = attacked_count_pmf(sizes, n, m)
        predicted_mean = float(
            (np.arange(pmf.size) * pmf).sum()
        )
        assert measured_mean == pytest.approx(predicted_mean, rel=0.02)

    def test_bulk_shape_at_realistic_scale(self, rng):
        """At defense-sized instances (many replicas) the independence
        approximation tracks the true attacked-count distribution."""
        sizes = np.array([10] * 60 + [400])
        n, m = 1_000, 40
        counts = np.zeros(sizes.size + 1)
        trials = 4_000
        for _ in range(trials):
            bots = rng.multivariate_hypergeometric(sizes, m)
            counts[(bots > 0).sum()] += 1
        measured = counts / trials
        predicted = attacked_count_pmf(sizes, n, m)
        assert np.abs(measured - predicted).max() < 0.08


class TestWeightedEstimator:
    def test_zero_attacked(self):
        estimate = estimate_bots_weighted(0, [5, 5, 5], 15)
        assert estimate.m_hat == 0

    def test_all_nonempty_attacked_is_degenerate(self):
        estimate = estimate_bots_weighted(2, [5, 10, 0], 15)
        assert estimate.degenerate
        assert estimate.m_hat == 15

    def test_validation(self):
        with pytest.raises(ValueError, match="sum"):
            estimate_bots_weighted(1, [5, 5], 11)
        with pytest.raises(ValueError, match="within"):
            estimate_bots_weighted(3, [5, 5], 10)
        with pytest.raises(ValueError, match="non-empty"):
            estimate_bots_weighted(2, [10, 0], 10)

    def test_matches_uniform_mle_on_uniform_sizes(self, rng):
        n_replicas, n_clients = 25, 500
        sizes = [n_clients // n_replicas] * n_replicas
        for true_bots in (10, 30):
            bots = rng.multivariate_hypergeometric(
                np.asarray(sizes), true_bots
            )
            attacked = int((bots > 0).sum())
            if attacked in (0, n_replicas):
                continue
            uniform = estimate_bots_mle(attacked, n_replicas, n_clients)
            weighted = estimate_bots_weighted(attacked, sizes, n_clients)
            assert weighted.m_hat == pytest.approx(
                uniform.m_hat, rel=0.25, abs=4
            )

    def test_recovers_truth_on_greedy_sizes(self, rng):
        """The case the uniform MLE cannot handle: a greedy plan with a
        quarantine bucket."""
        n_clients, true_bots, n_replicas = 1_000, 60, 80
        sizes = greedy_sizes(n_clients, true_bots, n_replicas)
        errors = []
        for _ in range(20):
            bots = rng.multivariate_hypergeometric(
                np.asarray(sizes), true_bots
            )
            attacked = int((bots > 0).sum())
            nonempty = sum(1 for size in sizes if size > 0)
            if attacked in (0, nonempty):
                continue
            estimate = estimate_bots_weighted(attacked, sizes, n_clients)
            errors.append(estimate.m_hat - true_bots)
        assert errors, "expected informative observations"
        assert abs(float(np.mean(errors))) < 0.35 * true_bots

    def test_weighted_beats_uniform_on_skewed_sizes(self, rng):
        """With a huge quarantine bucket, the uniform occupancy MLE is
        systematically biased; the weighted estimator is not."""
        n_clients, true_bots = 1_000, 60
        sizes = greedy_sizes(n_clients, true_bots, 80)
        nonempty = sum(1 for size in sizes if size > 0)
        uniform_errors, weighted_errors = [], []
        for _ in range(25):
            bots = rng.multivariate_hypergeometric(
                np.asarray(sizes), true_bots
            )
            attacked = int((bots > 0).sum())
            if attacked in (0, nonempty):
                continue
            uniform = estimate_bots_mle(attacked, len(sizes), n_clients)
            weighted = estimate_bots_weighted(attacked, sizes, n_clients)
            uniform_errors.append(abs(uniform.m_hat - true_bots))
            weighted_errors.append(abs(weighted.m_hat - true_bots))
        assert np.mean(weighted_errors) <= np.mean(uniform_errors)
