"""Plan cache at the exact query shapes the live coordinator issues.

The :class:`repro.service.coordinator.ServiceCoordinator` queries its
:class:`~repro.core.plan_cache.PlanCache` through the planner protocol
``cache(n_clients, believed, width)`` with shapes no offline sweep
exercises: the Theorem-1 fallback bot count on round one, believed
counts clamped to the (shrinking) population, and widths different from
the cache's ``P`` during endgame dispersion.  These tests pin that
surface with the live defaults of :class:`repro.service.ServiceConfig`.
"""

from __future__ import annotations

import pytest

from repro.core.plan_cache import PlanCache
from repro.service import ServiceConfig
from repro.service.coordinator import theorem1_fallback


@pytest.fixture(scope="module")
def cache() -> PlanCache:
    config = ServiceConfig()
    cache = PlanCache(
        n_replicas=config.n_replicas,
        client_grid=config.plan_client_grid,
        bot_grid=config.plan_bot_grid,
    )
    cache.precompute()
    return cache


def test_round_one_theorem1_query_is_a_cache_hit(cache):
    # Round 1 of the acceptance scenario: 220 clients on the attacked
    # replicas, X = P degenerate, believed = theorem1_fallback(10) = 22.
    believed = theorem1_fallback(10)
    assert believed == 22
    plan = cache(220, believed, 10)
    assert plan.algorithm == "cached"
    assert sum(plan.group_sizes) == 220
    assert plan.expected_saved > 0


def test_zero_bots_saves_everyone(cache):
    # M = 0 is legal at the cache layer (the coordinator clamps believed
    # to >= 1, but the planner protocol admits it).
    plan = cache.lookup(100, 0)
    assert sum(plan.group_sizes) == 100
    assert plan.expected_saved == pytest.approx(100.0)


def test_all_bots_saves_nobody(cache):
    # Endgame clamp: believed == n_clients.  Equation 1 must go to zero
    # — this is exactly the signal the coordinator quarantines on.
    plan = cache.lookup(50, 50)
    assert sum(plan.group_sizes) == 50
    assert plan.expected_saved == pytest.approx(0.0)


def test_dispersion_width_bypasses_the_cache(cache):
    # Endgame dispersion plans across width == n_clients != P; the
    # planner protocol must fall back to greedy, not mis-serve a P-way
    # table entry.
    before = cache.fallbacks
    plan = cache(20, 18, 20)
    assert cache.fallbacks == before + 1
    assert plan.algorithm == "greedy"
    assert plan.group_sizes == (1,) * 20  # singleton round


def test_small_subset_dispersion(cache):
    # Late rounds shrink the reshuffled subset below the smallest grid
    # cell; dispersion still plans them as singletons.
    plan = cache(5, 4, 5)
    assert plan.algorithm == "greedy"
    assert plan.group_sizes == (1, 1, 1, 1, 1)


def test_far_off_grid_falls_back_to_greedy(cache):
    # N = 5 vs nearest cell 25: relative gap 4.0 > 0.5 — repairing the
    # cached sizes would be meaningless, so greedy takes over even at
    # width == P.
    before = cache.fallbacks
    plan = cache.lookup(5, 2)
    assert cache.fallbacks == before + 1
    assert plan.algorithm == "greedy"
    assert sum(plan.group_sizes) == 5


def test_off_cell_queries_are_repaired_to_exact_population(cache):
    # Mid-run populations never sit on grid points; the snapped cell's
    # sizes must be repaired to the exact client count and re-scored.
    for n_clients, believed in [(137, 22), (171, 20), (93, 7)]:
        plan = cache(n_clients, believed, 10)
        assert plan.algorithm == "cached"
        assert sum(plan.group_sizes) == n_clients
        assert plan.n_bots == believed


def test_clamped_believed_stays_within_cache_contract(cache):
    # The coordinator clamps believed to [1, n_clients]; the boundary
    # query must be servable without tripping the cache's validation.
    plan = cache(25, 25, 10)
    assert sum(plan.group_sizes) == 25
    assert plan.expected_saved == pytest.approx(0.0)
