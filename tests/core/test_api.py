"""Contract tests for the unified ``repro.core.api`` seam.

Covers the request dataclasses, method dispatch (including ``"auto"``),
observability hooks, the planner-factory adapter, and — the facade
contract — that every deprecated legacy entry point raises exactly one
``DeprecationWarning`` and forwards bit-identically through the seam.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

# Top-level facade: the public spelling every consumer should use.
from repro import (
    EstimateRequest,
    PlanRequest,
    estimate,
    plan,
)
from repro.core import api
from repro.core.dp import dp_plan
from repro.core.dp_fast import dp_fast_plan
from repro.core.estimator import (
    estimate_bots_mle,
    estimate_bots_moment,
    estimate_bots_weighted,
)
from repro.core.even import even_plan
from repro.core.greedy import greedy_plan
from repro.core.plan_cache import PlanCache
from repro.obs import Instruments


def _small_cache() -> PlanCache:
    return PlanCache(
        n_replicas=3, client_grid=(10, 20), bot_grid=(2, 4)
    )


class TestEstimateRequest:
    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown estimate method"):
            EstimateRequest(n_attacked=3, method="bogus")

    def test_sizes_normalized_to_tuple(self):
        request = EstimateRequest(n_attacked=1, sizes=[3, 4, 5])
        assert request.sizes == (3, 4, 5)
        assert isinstance(request.sizes, tuple)

    def test_requests_are_hashable_cache_keys(self):
        a = EstimateRequest(n_attacked=3, n_replicas=10, upper_bound=50)
        b = EstimateRequest(n_attacked=3, n_replicas=10, upper_bound=50)
        assert a == b
        assert hash(a) == hash(b)

    def test_log_prior_excluded_from_equality(self):
        prior = np.zeros(51)
        a = EstimateRequest(
            n_attacked=3, n_replicas=10, upper_bound=50, log_prior=prior
        )
        b = EstimateRequest(n_attacked=3, n_replicas=10, upper_bound=50)
        assert a == b

    def test_auto_resolves_from_evidence_shape(self):
        uniform = EstimateRequest(
            n_attacked=3, n_replicas=10, upper_bound=50
        )
        weighted = EstimateRequest(n_attacked=3, sizes=(5, 5, 5))
        assert uniform.resolved_method() == "mle"
        assert weighted.resolved_method() == "weighted"

    def test_uniform_requires_replicas_and_upper(self):
        with pytest.raises(ValueError, match="requires n_replicas"):
            estimate(EstimateRequest(n_attacked=3, upper_bound=10))
        with pytest.raises(ValueError, match="requires upper_bound"):
            estimate(EstimateRequest(n_attacked=3, n_replicas=10))

    def test_weighted_requires_sizes(self):
        with pytest.raises(ValueError, match="requires the observed"):
            estimate(
                EstimateRequest(
                    n_attacked=3,
                    n_replicas=10,
                    upper_bound=20,
                    method="weighted",
                )
            )

    def test_moment_rejects_prior(self):
        with pytest.raises(ValueError, match="cannot apply a log_prior"):
            estimate(
                EstimateRequest(
                    n_attacked=3,
                    n_replicas=10,
                    upper_bound=20,
                    method="moment",
                    log_prior=np.zeros(21),
                )
            )

    def test_replicas_inferred_from_sizes(self):
        got = estimate(
            EstimateRequest(
                n_attacked=2,
                sizes=(4, 4, 4, 4, 4),
                upper_bound=20,
                method="mle",
            )
        )
        assert got.n_replicas == 5


class TestPlanRequest:
    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown plan method"):
            PlanRequest(n_clients=10, n_bots=2, n_replicas=3, method="x")

    def test_cached_requires_cache(self):
        with pytest.raises(ValueError, match="requires a cache"):
            PlanRequest(
                n_clients=10, n_bots=2, n_replicas=3, method="cached"
            )

    def test_auto_prefers_cache_when_present(self):
        bare = PlanRequest(n_clients=10, n_bots=2, n_replicas=3)
        cached = PlanRequest(
            n_clients=10, n_bots=2, n_replicas=3,
            cache=_small_cache(),
        )
        assert bare.resolved_method() == "greedy"
        assert cached.resolved_method() == "cached"

    def test_cache_excluded_from_equality(self):
        a = PlanRequest(
            n_clients=10, n_bots=2, n_replicas=3, cache=_small_cache()
        )
        b = PlanRequest(n_clients=10, n_bots=2, n_replicas=3)
        assert a == b


class TestDispatch:
    def test_each_planner_method_routes(self):
        for method in ("greedy", "even", "dp", "dp_fast"):
            shuffle = plan(
                PlanRequest(
                    n_clients=30, n_bots=6, n_replicas=4, method=method
                )
            )
            assert shuffle.algorithm in (method, "greedy", "even",
                                         "dp", "dp_fast")
            assert sum(shuffle.group_sizes) == 30

    def test_cached_method_serves_from_cache(self):
        cache = PlanCache(
            n_replicas=5, client_grid=(20, 40, 60), bot_grid=(4, 8, 16)
        )
        cache.precompute()
        request = PlanRequest(
            n_clients=40, n_bots=8, n_replicas=5, method="cached",
            cache=cache,
        )
        first = plan(request)
        second = plan(request)
        assert first.group_sizes == second.group_sizes

    def test_estimator_methods_route(self):
        mle = estimate(
            EstimateRequest(
                n_attacked=4, n_replicas=10, upper_bound=60, method="mle"
            )
        )
        moment = estimate(
            EstimateRequest(
                n_attacked=4, n_replicas=10, upper_bound=60,
                method="moment",
            )
        )
        weighted = estimate(
            EstimateRequest(n_attacked=2, sizes=(6, 6, 6, 6, 6))
        )
        assert mle.m_hat >= 4
        assert moment.m_hat >= 4
        assert 2 <= weighted.m_hat <= 30

    def test_planner_factory_adapts_positional_protocol(self):
        source = api.planner("greedy")
        direct = plan(
            PlanRequest(n_clients=30, n_bots=6, n_replicas=4,
                        method="greedy")
        )
        assert source(30, 6, 4).group_sizes == direct.group_sizes
        assert source.__name__ == "greedy"

    def test_planner_factory_rejects_cached(self):
        with pytest.raises(ValueError, match="unknown planner"):
            api.planner("cached")

    def test_estimate_records_span_and_counter(self):
        instruments = Instruments.create()
        estimate(
            EstimateRequest(
                n_attacked=3, n_replicas=10, upper_bound=30
            ),
            instruments=instruments,
        )
        names = [span.name for span in instruments.spans.spans]
        assert "core_estimate" in names
        counter = instruments.registry.counter(
            "core_estimate_total", "", ("method",)
        )
        assert counter.value(method="mle") == 1.0

    def test_plan_records_span_and_counter(self):
        instruments = Instruments.create()
        plan(
            PlanRequest(n_clients=20, n_bots=4, n_replicas=3),
            instruments=instruments,
        )
        names = [span.name for span in instruments.spans.spans]
        assert "core_plan" in names
        counter = instruments.registry.counter(
            "core_plan_total", "", ("method",)
        )
        assert counter.value(method="greedy") == 1.0


class TestDeprecatedFacades:
    """Every legacy entry point warns once and forwards exactly."""

    def _single_deprecation(self, caught):
        relevant = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
            and str(w.message).startswith("repro.core.")
        ]
        assert len(relevant) == 1, (
            f"expected exactly one repro.core deprecation, got "
            f"{[str(w.message) for w in relevant]}"
        )
        return str(relevant[0].message)

    def test_estimate_bots_mle_warns_and_forwards(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = estimate_bots_mle(4, 10, 60)
        message = self._single_deprecation(caught)
        assert "estimate_bots_mle" in message
        assert legacy == estimate(
            EstimateRequest(
                n_attacked=4, n_replicas=10, upper_bound=60, method="mle"
            )
        )

    def test_estimate_bots_moment_warns_and_forwards(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = estimate_bots_moment(4, 10, 60)
        message = self._single_deprecation(caught)
        assert "estimate_bots_moment" in message
        assert legacy == estimate(
            EstimateRequest(
                n_attacked=4, n_replicas=10, upper_bound=60,
                method="moment",
            )
        )

    def test_estimate_bots_weighted_warns_and_forwards(self):
        sizes = (6, 6, 6, 6, 6)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = estimate_bots_weighted(2, sizes, 30)
        message = self._single_deprecation(caught)
        assert "estimate_bots_weighted" in message
        assert legacy == estimate(
            EstimateRequest(
                n_attacked=2, sizes=sizes, n_clients=30, method="weighted"
            )
        )

    @pytest.mark.parametrize(
        "legacy, method",
        [
            (greedy_plan, "greedy"),
            (even_plan, "even"),
            (dp_plan, "dp"),
            (dp_fast_plan, "dp_fast"),
        ],
    )
    def test_planners_warn_and_forward(self, legacy, method):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shuffle = legacy(30, 6, 4)
        message = self._single_deprecation(caught)
        assert method in message
        direct = plan(
            PlanRequest(
                n_clients=30, n_bots=6, n_replicas=4, method=method
            )
        )
        assert shuffle.group_sizes == direct.group_sizes
        assert shuffle.expected_saved == direct.expected_saved

    def test_warning_names_the_replacement(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            greedy_plan(10, 2, 3)
        message = self._single_deprecation(caught)
        assert "repro.core.api.plan" in message
        assert "PlanRequest" in message
