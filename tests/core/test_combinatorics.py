"""Unit and property tests for repro.core.combinatorics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.combinatorics import (
    binomial_ratio,
    expected_saved_single,
    expected_saved_single_many,
    hypergeometric_pmf,
    hypergeometric_pmf_vector,
    log_binomial,
    survival_probabilities,
    survival_probability,
)


class TestLogBinomial:
    def test_matches_math_comb_small(self):
        for n in range(0, 25):
            for k in range(0, n + 1):
                expected = math.comb(n, k)
                assert log_binomial(n, k) == pytest.approx(
                    math.log(expected), abs=1e-9
                )

    def test_zero_coefficient_is_minus_inf(self):
        assert log_binomial(5, 6) == float("-inf")
        assert log_binomial(5, -1) == float("-inf")
        assert log_binomial(-1, 0) == float("-inf")

    def test_edges(self):
        assert log_binomial(10, 0) == 0.0
        assert log_binomial(10, 10) == 0.0

    def test_large_arguments_do_not_overflow(self):
        value = log_binomial(150_000, 100_000)
        assert math.isfinite(value)
        assert value > 0

    @given(st.integers(1, 200), st.integers(0, 200))
    def test_symmetry(self, n, k):
        if k <= n:
            assert log_binomial(n, k) == pytest.approx(
                log_binomial(n, n - k), rel=1e-12, abs=1e-9
            )

    @given(st.integers(2, 100), st.integers(1, 100))
    def test_pascal_rule(self, n, k):
        if k <= n - 1:
            lhs = math.exp(log_binomial(n, k))
            rhs = math.exp(log_binomial(n - 1, k)) + math.exp(
                log_binomial(n - 1, k - 1)
            )
            assert lhs == pytest.approx(rhs, rel=1e-9)


class TestBinomialRatio:
    def test_simple_ratio(self):
        assert binomial_ratio(4, 2, 6, 2) == pytest.approx(6 / 15)

    def test_zero_numerator(self):
        assert binomial_ratio(3, 5, 6, 2) == 0.0

    def test_zero_denominator_raises(self):
        with pytest.raises(ZeroDivisionError):
            binomial_ratio(4, 2, 3, 5)


class TestSurvivalProbability:
    def test_no_bots_is_certain(self):
        assert survival_probability(100, 0, 30) == 1.0

    def test_all_clients_on_replica_with_bots(self):
        assert survival_probability(50, 3, 50) == 0.0

    def test_empty_replica_survives(self):
        assert survival_probability(50, 3, 0) == 1.0

    def test_manual_value(self):
        # 1 bot among 4 clients, replica holds 1: survives w.p. 3/4.
        assert survival_probability(4, 1, 1) == pytest.approx(0.75)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            survival_probability(10, 2, 11)
        with pytest.raises(ValueError):
            survival_probability(10, 11, 2)
        with pytest.raises(ValueError):
            survival_probability(10, 2, -1)

    @given(
        st.integers(2, 80),
        st.integers(1, 80),
        st.integers(0, 80),
    )
    def test_monotone_decreasing_in_size(self, n, m, x):
        m = min(m, n)
        x = min(x, n - 1)
        p_small = survival_probability(n, m, x)
        p_big = survival_probability(n, m, x + 1)
        assert p_big <= p_small + 1e-12

    @given(st.integers(2, 60), st.integers(0, 60), st.integers(0, 60))
    def test_vector_matches_scalar(self, n, m, x):
        m = min(m, n)
        x = min(x, n)
        vec = survival_probabilities(n, m, np.array([x]))
        assert vec[0] == pytest.approx(survival_probability(n, m, x))

    def test_vector_empty(self):
        assert survival_probabilities(10, 2, np.array([], dtype=int)).size == 0

    def test_vector_validates(self):
        with pytest.raises(ValueError):
            survival_probabilities(10, 2, np.array([11]))
        with pytest.raises(ValueError):
            survival_probabilities(10, 11, np.array([1]))

    def test_agrees_with_monte_carlo(self, rng):
        n, m, x = 40, 6, 9
        hits = 0
        trials = 20_000
        for _ in range(trials):
            bots = rng.choice(n, size=m, replace=False)
            if (bots >= x).all():  # replica owns slots [0, x)
                hits += 1
        expected = survival_probability(n, m, x)
        assert hits / trials == pytest.approx(expected, abs=0.02)


class TestExpectedSavedSingle:
    def test_zero_size_saves_nothing(self):
        assert expected_saved_single(10, 3, 0) == 0.0

    def test_values_match_vector(self):
        xs = np.arange(0, 21)
        vec = expected_saved_single_many(20, 4, xs)
        for x in xs:
            assert vec[x] == pytest.approx(expected_saved_single(20, 4, int(x)))

    def test_peak_is_interior_for_many_bots(self):
        xs = np.arange(0, 101)
        vec = expected_saved_single_many(100, 20, xs)
        peak = int(np.argmax(vec))
        assert 1 <= peak < 100


class TestHypergeometricPmf:
    def test_sums_to_one(self):
        total, marked, draws = 30, 7, 11
        pmf = hypergeometric_pmf_vector(total, marked, draws)
        assert pmf.sum() == pytest.approx(1.0)

    def test_matches_scalar(self):
        total, marked, draws = 25, 6, 9
        pmf = hypergeometric_pmf_vector(total, marked, draws)
        for hits in range(pmf.size):
            assert pmf[hits] == pytest.approx(
                hypergeometric_pmf(total, marked, draws, hits)
            )

    def test_matches_scipy(self):
        from scipy.stats import hypergeom

        total, marked, draws = 50, 12, 20
        pmf = hypergeometric_pmf_vector(total, marked, draws)
        reference = hypergeom.pmf(
            np.arange(pmf.size), total, marked, draws
        )
        np.testing.assert_allclose(pmf, reference, rtol=1e-9, atol=1e-12)

    def test_impossible_hit_counts_are_zero(self):
        # 3 marked of 10; drawing 9 must hit at least 2 marked.
        assert hypergeometric_pmf(10, 3, 9, 1) == 0.0

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            hypergeometric_pmf(10, 11, 2, 1)
        with pytest.raises(ValueError):
            hypergeometric_pmf(10, 2, 11, 1)

    @given(st.integers(1, 40), st.integers(0, 40), st.integers(0, 40))
    def test_vector_always_normalized(self, total, marked, draws):
        marked = min(marked, total)
        draws = min(draws, total)
        pmf = hypergeometric_pmf_vector(total, marked, draws)
        assert pmf.min() >= 0
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)
