"""Tests for the multi-round shuffling engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shuffler import (
    PLANNERS,
    ShuffleEngine,
    ShuffleState,
    shuffle_trajectory,
)


def make_engine(p=20, planner="greedy", estimator="oracle", seed=7):
    return ShuffleEngine(
        n_replicas=p,
        planner=planner,
        estimator=estimator,
        rng=np.random.default_rng(seed),
    )


class TestConstruction:
    def test_unknown_planner(self):
        with pytest.raises(ValueError, match="unknown planner"):
            ShuffleEngine(n_replicas=5, planner="nope")

    def test_unknown_estimator(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            ShuffleEngine(n_replicas=5, estimator="psychic")

    def test_invalid_replicas(self):
        with pytest.raises(ValueError):
            ShuffleEngine(n_replicas=0)

    def test_callable_planner_accepted(self):
        from repro.core.api import planner

        engine = ShuffleEngine(n_replicas=3, planner=planner("even"))
        state = engine.run(benign=30, bots=0, target_fraction=1.0)
        assert state.saved_fraction == 1.0


class TestRoundInvariants:
    @given(
        st.integers(1, 300),
        st.integers(0, 80),
        st.integers(1, 30),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30)
    def test_conservation(self, benign, bots, p, seed):
        engine = make_engine(p=p, seed=seed)
        state = ShuffleState(
            benign_active=benign,
            bots_active=bots,
            benign_initial=benign,
            benign_total_seen=benign,
        )
        result = engine.run_round(state)
        # Clients are conserved: saved + still-active == initial.
        assert state.benign_saved + state.benign_active == benign
        assert state.bots_active == bots  # bots are never "saved"
        assert sum(result.bots_per_replica) == bots
        assert result.n_clients == benign + bots
        # Every attacked replica really holds at least one bot.
        sizes = result.plan.group_sizes
        for size, bot_count in zip(sizes, result.bots_per_replica):
            assert bot_count <= size

    def test_saved_only_from_clean_replicas(self):
        engine = make_engine(p=10, seed=1)
        state = ShuffleState(
            benign_active=50, bots_active=5,
            benign_initial=50, benign_total_seen=50,
        )
        result = engine.run_round(state)
        clean_clients = sum(
            size
            for size, bot_count in zip(
                result.plan.group_sizes, result.bots_per_replica
            )
            if bot_count == 0
        )
        assert result.benign_saved == clean_clients

    def test_no_bots_saves_everyone_in_one_round(self):
        engine = make_engine(p=5)
        state = engine.run(benign=40, bots=0, target_fraction=1.0)
        assert state.benign_saved == 40
        assert len(state.rounds) == 1


class TestRun:
    def test_reaches_target(self):
        engine = make_engine(p=50, seed=2)
        state = engine.run(benign=500, bots=50, target_fraction=0.8)
        assert state.saved_fraction >= 0.8

    def test_respects_max_rounds(self):
        engine = make_engine(p=2, seed=3)
        state = engine.run(
            benign=100, bots=50, target_fraction=0.99, max_rounds=4
        )
        assert len(state.rounds) <= 4

    def test_target_validation(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.run(benign=10, bots=1, target_fraction=1.5)
        with pytest.raises(ValueError):
            engine.run(benign=10, bots=1, target_basis="bogus")

    def test_arrivals_hook(self):
        engine = make_engine(p=20, seed=4)
        calls = []

        def arrivals(round_index, rng):
            calls.append(round_index)
            return (5, 1) if round_index < 3 else (0, 0)

        state = engine.run(
            benign=100, bots=10, target_fraction=0.9, arrivals=arrivals,
            max_rounds=200,
        )
        assert calls[:3] == [0, 1, 2]
        assert state.benign_total_seen == 115

    def test_total_seen_basis_is_harder(self):
        results = []
        for basis in ("initial", "total_seen"):
            engine = make_engine(p=20, seed=5)

            def arrivals(round_index, rng):
                return (3, 0)

            state = engine.run(
                benign=200, bots=40, target_fraction=0.8,
                arrivals=arrivals, target_basis=basis, max_rounds=500,
            )
            results.append(len(state.rounds))
        assert results[0] <= results[1]


class TestEstimators:
    @pytest.mark.parametrize("estimator", ["oracle", "mle", "moment"])
    def test_all_estimators_converge(self, estimator):
        engine = make_engine(p=30, estimator=estimator, seed=11)
        state = engine.run(benign=300, bots=30, target_fraction=0.8,
                           max_rounds=300)
        assert state.saved_fraction >= 0.8

    def test_estimates_recorded(self):
        engine = make_engine(p=20, estimator="moment", seed=12)
        state = engine.run(benign=200, bots=20, target_fraction=0.5)
        estimates = [r.estimate for r in state.rounds]
        assert all(e is not None for e in estimates)

    def test_oracle_records_no_estimate(self):
        engine = make_engine(p=20, estimator="oracle", seed=13)
        state = engine.run(benign=200, bots=20, target_fraction=0.5)
        assert all(r.estimate is None for r in state.rounds)

    def test_moment_belief_tracks_truth(self):
        engine = make_engine(p=50, estimator="moment", seed=14)
        state = engine.run(benign=500, bots=40, target_fraction=0.9,
                           max_rounds=200)
        # After the first round, beliefs should be in the right ballpark.
        late = [r for r in state.rounds[1:] if r.true_bots > 0]
        assert late, "expected multiple rounds"
        ratios = [r.believed_bots / r.true_bots for r in late]
        assert 0.2 < float(np.median(ratios)) < 5.0


class TestTrajectory:
    def test_cumulative_and_fraction(self):
        engine = make_engine(p=20, seed=21)
        state = engine.run(benign=200, bots=20, target_fraction=0.9,
                           max_rounds=100)
        points = list(shuffle_trajectory(state))
        assert len(points) == len(state.rounds)
        cumulative = [p[1] for p in points]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == state.benign_saved
        assert points[-1][2] == pytest.approx(state.saved_fraction)

    def test_total_basis(self):
        engine = make_engine(p=20, seed=22)
        state = engine.run(benign=100, bots=10, target_fraction=0.8)
        pts = list(shuffle_trajectory(state, basis="total_seen"))
        assert pts[-1][2] == pytest.approx(state.saved_fraction_total)


class TestPlannersRegistry:
    def test_registry_contents(self):
        assert set(PLANNERS) == {"greedy", "even", "dp_fast"}

    @pytest.mark.parametrize("name", ["greedy", "even", "dp_fast"])
    def test_each_planner_runs(self, name):
        engine = make_engine(p=5, planner=name, seed=31)
        state = engine.run(benign=40, bots=4, target_fraction=0.5,
                           max_rounds=60)
        assert state.benign_saved >= 0
