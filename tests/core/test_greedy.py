"""Tests for the greedy shuffle planner."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp_fast import dp_fast_value
from repro.core.even import even_plan
from repro.core.greedy import greedy_plan, greedy_sizes
from repro.core.objective import single_replica_optimum


class TestPartitionValidity:
    @given(
        st.integers(0, 500),
        st.integers(0, 100),
        st.integers(1, 50),
    )
    def test_sizes_partition_clients(self, n, m, p):
        m = min(m, n)
        sizes = greedy_sizes(n, m, p)
        assert len(sizes) == p
        assert sum(sizes) == n
        assert all(size >= 0 for size in sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_sizes(10, 11, 2)
        with pytest.raises(ValueError):
            greedy_sizes(10, 1, 0)


class TestBehaviour:
    def test_single_replica_takes_all(self):
        assert greedy_sizes(25, 4, 1) == [25]

    def test_no_bots_spreads_evenly(self):
        # With M=0 every assignment saves everyone; the even-share cap
        # keeps groups balanced rather than dumping everything on one.
        sizes = greedy_sizes(10, 0, 4)
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_quarantine_bucket_when_bots_dominate(self):
        # N=1000, M=100 -> omega ~ 9; 49 small clean groups and one big
        # quarantine bucket on the last replica.
        sizes = greedy_sizes(1000, 100, 50)
        assert sizes[-1] > 100
        assert all(size <= 20 for size in sizes[:-1])

    def test_replica_abundant_regime_uses_every_replica(self):
        # The Figure 3 regression: M=50 bots, P=200 replicas, N=1000.
        # The naive fill-with-omega strategy would leave 150 replicas
        # empty; the capped greedy spreads to all of them.
        sizes = greedy_sizes(1000, 50, 200)
        assert all(size > 0 for size in sizes)

    def test_omega_cap_is_even_share(self):
        n, m, p = 1000, 50, 200
        omega, _ = single_replica_optimum(n, m)
        assert omega > n // p  # precondition: replica-abundant regime
        sizes = greedy_sizes(n, m, p)
        assert max(sizes) <= -(-n // p) + 1


class TestNearOptimality:
    @pytest.mark.parametrize("n_bots", [50, 100, 200, 300, 400, 500])
    @pytest.mark.parametrize("n_replicas", [50, 100, 150, 200])
    def test_figure3_grid_within_one_percent(self, n_bots, n_replicas):
        """The paper's Figure 3 claim: greedy ~= optimal everywhere."""
        n = 1000
        greedy_value = greedy_plan(n, n_bots, n_replicas).expected_saved
        optimal_value = dp_fast_value(n, n_bots, n_replicas)
        benign = n - n_bots
        gap = (optimal_value - greedy_value) / benign
        assert gap <= 0.01

    @given(
        st.integers(1, 100),
        st.integers(0, 30),
        st.integers(1, 12),
    )
    @settings(max_examples=40)
    def test_never_beats_optimal(self, n, m, p):
        m = min(m, n)
        assert (
            greedy_plan(n, m, p).expected_saved
            <= dp_fast_value(n, m, p) + 1e-9
        )


class TestAgainstEven:
    def test_beats_even_when_bots_outnumber_replicas(self):
        # Figure 4's message: with M >> P the even split saves nobody.
        n, m, p = 1000, 400, 100
        greedy_value = greedy_plan(n, m, p).expected_saved
        even_value = even_plan(n, m, p).expected_saved
        assert even_value < 0.05 * (n - m)
        assert greedy_value > 2 * even_value

    def test_close_to_even_when_replicas_outnumber_bots(self):
        n, m, p = 1000, 50, 200
        greedy_value = greedy_plan(n, m, p).expected_saved
        even_value = even_plan(n, m, p).expected_saved
        assert greedy_value >= even_value - 1e-9
        assert greedy_value <= even_value * 1.05


class TestPlanMetadata:
    def test_plan_fields(self):
        plan = greedy_plan(100, 10, 5)
        assert plan.algorithm == "greedy"
        assert plan.n_clients == 100
        assert plan.n_bots == 10
        assert plan.expected_saved > 0
