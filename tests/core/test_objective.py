"""Unit and property tests for the Equation 1 objective."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.objective import (
    expected_saved,
    expected_saved_sizes,
    per_replica_terms,
    single_replica_optimum,
)
from repro.core.plan import ShufflePlan


class TestExpectedSaved:
    def test_no_bots_saves_everyone(self):
        assert expected_saved_sizes([4, 6], 10, 0) == pytest.approx(10.0)

    def test_single_group_with_bots_saves_nothing(self):
        # All clients on one replica, at least one bot: E(S) = 0.
        assert expected_saved_sizes([10], 10, 3) == pytest.approx(0.0)

    def test_manual_two_replica_case(self):
        # N=4, M=1, sizes (1, 3): E = 1*(3/4) + 3*(1/4) = 1.5.
        assert expected_saved_sizes([1, 3], 4, 1) == pytest.approx(1.5)

    def test_plan_uses_own_belief_by_default(self):
        plan = ShufflePlan.from_sizes([1, 3], n_bots=1)
        assert expected_saved(plan) == pytest.approx(1.5)

    def test_plan_scored_against_other_truth(self):
        plan = ShufflePlan.from_sizes([1, 3], n_bots=1)
        # Against the truth M=0 every client is saved.
        assert expected_saved(plan, n_bots=0) == pytest.approx(4.0)

    def test_empty_sizes(self):
        assert expected_saved_sizes([], 0, 0) == 0.0

    @given(
        st.integers(2, 40),
        st.integers(0, 10),
        st.integers(1, 6),
        st.integers(0, 1_000),
    )
    def test_equals_sum_of_terms(self, n, m, p, seed):
        m = min(m, n)
        rng = np.random.default_rng(seed)
        cuts = np.sort(rng.integers(0, n + 1, size=p - 1))
        sizes = np.diff(np.concatenate([[0], cuts, [n]]))
        total = expected_saved_sizes(sizes, n, m)
        terms = per_replica_terms(sizes, n, m)
        assert total == pytest.approx(terms.sum())
        assert total <= n - m + 1e-9  # cannot save more than the benign

    def test_matches_monte_carlo(self, rng):
        n, m = 30, 5
        sizes = [3, 3, 3, 3, 3, 15]
        trials = 20_000
        saved = 0
        labels = np.zeros(n, dtype=bool)
        labels[:m] = True  # first m are bots
        boundaries = np.cumsum([0] + sizes)
        for _ in range(trials):
            perm = rng.permutation(labels)
            for lo, hi in zip(boundaries[:-1], boundaries[1:]):
                group = perm[lo:hi]
                if not group.any():
                    saved += hi - lo
        expected = expected_saved_sizes(sizes, n, m)
        assert saved / trials == pytest.approx(expected, rel=0.05)


class TestSingleReplicaOptimum:
    def test_no_bots_takes_everyone(self):
        omega, value = single_replica_optimum(50, 0)
        assert omega == 50
        assert value == pytest.approx(50.0)

    def test_no_clients(self):
        assert single_replica_optimum(0, 0) == (0, 0.0)

    def test_omega_near_n_over_m(self):
        # For the x*exp(-Mx/N) approximation the peak is near N/M.
        omega, _ = single_replica_optimum(1000, 100)
        assert 5 <= omega <= 20

    def test_value_is_actual_maximum(self):
        from repro.core.combinatorics import expected_saved_single

        n, m = 60, 7
        omega, value = single_replica_optimum(n, m)
        best = max(expected_saved_single(n, m, x) for x in range(1, n + 1))
        assert value == pytest.approx(best)
        assert expected_saved_single(n, m, omega) == pytest.approx(best)

    @given(st.integers(1, 120), st.integers(0, 30))
    def test_omega_in_range(self, n, m):
        m = min(m, n)
        omega, value = single_replica_optimum(n, m)
        assert 0 <= omega <= n
        assert value >= 0
