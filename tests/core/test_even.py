"""Tests for the even-distribution baseline."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.even import even_plan, even_sizes


class TestEvenSizes:
    @given(st.integers(0, 10_000), st.integers(1, 500))
    def test_partition_and_balance(self, n, p):
        sizes = even_sizes(n, p)
        assert len(sizes) == p
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1

    def test_exact_division(self):
        assert even_sizes(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        assert even_sizes(10, 3) == [4, 3, 3]

    def test_more_replicas_than_clients(self):
        sizes = even_sizes(3, 5)
        assert sorted(sizes, reverse=True) == [1, 1, 1, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            even_sizes(10, 0)
        with pytest.raises(ValueError):
            even_sizes(-1, 3)


class TestEvenPlan:
    def test_metadata(self):
        plan = even_plan(100, 10, 4)
        assert plan.algorithm == "even"
        assert plan.n_replicas == 4

    def test_collapse_when_bots_exceed_replicas(self):
        """Figure 4's phenomenon, at the closed-form level."""
        plan = even_plan(1000, 500, 100)
        # With 5x more bots than replicas, essentially every group of 10
        # contains a bot: expected saved is a sliver of the 500 benign.
        assert plan.expected_saved < 5.0

    def test_competitive_when_replicas_exceed_bots(self):
        plan = even_plan(1000, 50, 200)
        # The paper's regime where even ~ greedy: most groups stay clean.
        assert plan.expected_saved > 0.7 * 950
