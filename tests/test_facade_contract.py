"""Facade aliasing contracts: package re-exports point at the real thing.

``repro.cloudsim.RunReport`` and ``repro.cloudsim.system.RunReport`` must
be the *same object* — code that imports through the facade and code that
imports the defining module must agree on ``isinstance`` checks and
pickling identity.  These tests pin every re-exported name to its
defining module so a facade refactor that silently forks a symbol (say,
re-declaring a dataclass in ``__init__``) fails loudly.

These imports are also the static cross-module uses reprolint's P5 pass
counts: every name asserted here is exercised through its facade.
"""

from __future__ import annotations

from repro import cloudsim as cloudsim_pkg
from repro import devtools as devtools_pkg
from repro import sim as sim_pkg
from repro.cloudsim import (
    ClientStats,
    Coordinator,
    Event,
    MigrationSample,
    ReplicaStats,
    RunReport,
    ShuffleRecord,
)
from repro.cloudsim import clients, coordinator, engine, migration, replica
from repro.cloudsim import system as cloudsim_system
from repro.devtools import (
    FileContext,
    LintReport,
    ProjectRule,
    Rule,
    Violation,
    all_project_rules,
    get_project_rule,
    get_rule,
    lint_project,
    project_rule,
    render_json,
    resolve_rule_sets,
    rule,
)
from repro.devtools import context as devtools_context
from repro.devtools import registry, reporters, runner, violations
from repro.devtools.program import (
    Baseline,
    BaselineComparison,
    ImportEdge,
    LAYER_CONTRACT,
    ModuleInfo,
)
from repro.devtools.program import baseline as program_baseline
from repro.devtools.program import context as program_context
from repro.devtools.program import graph as program_graph
from repro.experiments import ablations
from repro.experiments import ablations as ablations_module
from repro.runtime import (
    CacheEntry,
    GridError,
    ResultCache,
    RetryPolicy,
    Task,
    TaskError,
    TaskOutcome,
    canonical_json,
    module_code_version,
    run_campaign_grid,
    run_scenario_grid,
    run_scenario_grid_report,
    run_tasks,
    scenario_tasks,
    seed_sequence_for,
    sweep_records,
    task_fingerprint,
    task_seed_sequence,
)
from repro.runtime import RunReport as RuntimeRunReport
from repro.runtime import cache as runtime_cache
from repro.runtime import executor as runtime_executor
from repro.runtime import grids as runtime_grids
from repro.runtime import task as runtime_task
from repro.sim import CampaignResult, RunRecord, WaveOutcome
from repro.sim import backend as sim_backend
from repro.sim import campaign, shuffle_sim
from repro import BotEstimate, RoundResult
from repro.analysis import PAPER_HEADLINE_SHUFFLES, TrajectoryPoint
from repro.analysis import convergence, series
from repro.core import estimator, shuffler


def test_cloudsim_facade_aliases():
    assert cloudsim_pkg.ClientStats is ClientStats is clients.ClientStats
    assert Coordinator is coordinator.Coordinator
    assert ShuffleRecord is coordinator.ShuffleRecord
    assert Event is engine.Event
    assert MigrationSample is migration.MigrationSample
    assert ReplicaStats is replica.ReplicaStats
    assert RunReport is cloudsim_system.RunReport


def test_sim_facade_aliases():
    assert sim_pkg.CampaignResult is CampaignResult is campaign.CampaignResult
    assert WaveOutcome is campaign.WaveOutcome
    assert RunRecord is shuffle_sim.RunRecord
    assert sim_pkg.run_campaign_batch is campaign.run_campaign_batch


def test_runtime_facade_aliases():
    assert CacheEntry is runtime_cache.CacheEntry
    assert ResultCache is runtime_cache.ResultCache
    assert GridError is runtime_executor.GridError
    assert RetryPolicy is runtime_executor.RetryPolicy
    assert RuntimeRunReport is runtime_executor.RunReport
    assert TaskError is runtime_executor.TaskError
    assert TaskOutcome is runtime_executor.TaskOutcome
    assert run_tasks is runtime_executor.run_tasks
    assert Task is runtime_task.Task
    assert canonical_json is runtime_task.canonical_json
    assert module_code_version is runtime_task.module_code_version
    assert seed_sequence_for is runtime_task.seed_sequence_for
    assert task_fingerprint is runtime_task.task_fingerprint
    assert task_seed_sequence is runtime_task.task_seed_sequence
    assert run_campaign_grid is runtime_grids.run_campaign_grid
    assert run_scenario_grid is runtime_grids.run_scenario_grid
    assert (
        run_scenario_grid_report is runtime_grids.run_scenario_grid_report
    )
    assert scenario_tasks is runtime_grids.scenario_tasks
    assert sweep_records is runtime_grids.sweep_records


def test_runtime_backends_registered():
    """`import repro` wires the runtime onto the sim backend registry."""
    assert sim_backend.get_backend("sweep") is sweep_records
    assert set(sim_backend.available_backends()) >= {
        "sweep",
        "campaign_batch",
    }


def test_top_level_facade_aliases():
    assert BotEstimate is estimator.BotEstimate
    assert RoundResult is shuffler.RoundResult


def test_analysis_facade_aliases():
    assert TrajectoryPoint is convergence.TrajectoryPoint
    assert PAPER_HEADLINE_SHUFFLES == series.PAPER_HEADLINE_SHUFFLES


def test_experiments_facade_aliases():
    # `ablations` is dispatched by name in the experiment runner; the
    # facade must expose the same module object the runner imports.
    assert ablations is ablations_module
    assert ablations.run_ablations is ablations_module.run_ablations


def test_devtools_facade_aliases():
    assert devtools_pkg.FileContext is FileContext
    assert FileContext is devtools_context.FileContext
    assert LintReport is runner.LintReport
    assert lint_project is runner.lint_project
    assert Violation is violations.Violation
    assert render_json is reporters.render_json
    for name in (
        "Rule",
        "ProjectRule",
        "rule",
        "project_rule",
        "get_rule",
        "get_project_rule",
        "all_project_rules",
        "resolve_rule_sets",
    ):
        assert getattr(devtools_pkg, name) is getattr(registry, name)
    assert Rule is registry.Rule
    assert ProjectRule is registry.ProjectRule
    assert rule is registry.rule
    assert project_rule is registry.project_rule
    assert get_rule is registry.get_rule
    assert get_project_rule is registry.get_project_rule
    assert all_project_rules is registry.all_project_rules
    assert resolve_rule_sets is registry.resolve_rule_sets


def test_program_facade_aliases():
    assert Baseline is program_baseline.Baseline
    assert BaselineComparison is program_baseline.BaselineComparison
    assert ImportEdge is program_graph.ImportEdge
    assert LAYER_CONTRACT is program_graph.LAYER_CONTRACT
    assert ModuleInfo is program_context.ModuleInfo


def test_layer_contract_shape():
    """The declared contract names real top-level packages only."""
    import repro

    top_level = {
        name
        for name in dir(repro)
        if not name.startswith("_")
    }
    for layer, allowed in LAYER_CONTRACT.items():
        assert isinstance(allowed, frozenset)
        for dep in allowed:
            assert dep in LAYER_CONTRACT, (
                f"{layer} allows unknown layer {dep}"
            )
    # Defense in depth: every contract key is an actual subpackage.
    for layer in LAYER_CONTRACT:
        assert layer in top_level or layer in {
            "core", "sim", "analysis", "cloudsim", "runtime",
            "service", "experiments", "devtools", "obs",
        }
