"""Task model: canonical encoding, fingerprints, seed derivation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.runtime.task import (
    Task,
    canonical_json,
    entropy_words,
    module_code_version,
    seed_sequence_for,
    task_fingerprint,
    task_seed_sequence,
)


def cell(x: int, y: int = 0) -> int:
    return x + y


def other_cell(x: int, y: int = 0) -> int:
    return x * y


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )

    def test_tuples_and_lists_canonicalize_identically(self):
        assert canonical_json({"v": (1, 2)}) == canonical_json({"v": [1, 2]})

    def test_nested_structures(self):
        text = canonical_json({"grid": [{"p": (1, 2)}, None, True, 0.5]})
        assert json.loads(text) == {"grid": [{"p": [1, 2]}, None, True, 0.5]}

    def test_rejects_non_json_values(self):
        with pytest.raises(TypeError, match="JSON-encodable"):
            canonical_json({"v": object()})
        with pytest.raises(TypeError, match="JSON-encodable"):
            canonical_json({"v": {1, 2}})

    def test_rejects_non_string_keys(self):
        with pytest.raises(TypeError, match="keys must be strings"):
            canonical_json({"v": {1: "a"}})


class TestFingerprint:
    def test_stable_across_param_order(self):
        a = Task(fn=cell, params={"x": 1, "y": 2})
        b = Task(fn=cell, params={"y": 2, "x": 1})
        assert task_fingerprint(a) == task_fingerprint(b)

    def test_params_change_fingerprint(self):
        a = Task(fn=cell, params={"x": 1})
        b = Task(fn=cell, params={"x": 2})
        assert task_fingerprint(a) != task_fingerprint(b)

    def test_function_identity_matters(self):
        a = Task(fn=cell, params={"x": 1})
        b = Task(fn=other_cell, params={"x": 1})
        assert task_fingerprint(a) != task_fingerprint(b)

    def test_code_version_invalidates(self):
        a = Task(fn=cell, params={"x": 1}, code_version="v1")
        b = Task(fn=cell, params={"x": 1}, code_version="v2")
        assert task_fingerprint(a) != task_fingerprint(b)

    def test_key_does_not_affect_fingerprint(self):
        """The label is presentation, not content."""
        a = Task(fn=cell, params={"x": 1}, key="left")
        b = Task(fn=cell, params={"x": 1}, key="right")
        assert task_fingerprint(a) == task_fingerprint(b)

    def test_is_hex_sha256(self):
        fingerprint = task_fingerprint(Task(fn=cell))
        assert len(fingerprint) == 64
        int(fingerprint, 16)

    def test_label_falls_back_to_function_ref(self):
        task = Task(fn=cell)
        assert task.label == task.function_ref
        assert task.function_ref.endswith(":cell")
        assert Task(fn=cell, key="named").label == "named"


class TestCodeVersion:
    def test_this_module_is_versioned(self):
        version = module_code_version(__name__)
        assert version != "unversioned"
        assert len(version) == 16

    def test_unknown_module_is_unversioned(self):
        assert module_code_version("no.such.module") == "unversioned"

    def test_default_version_comes_from_fn_module(self):
        explicit = Task(
            fn=cell,
            params={"x": 1},
            code_version=module_code_version(__name__),
        )
        implicit = Task(fn=cell, params={"x": 1})
        assert task_fingerprint(explicit) == task_fingerprint(implicit)


class TestSeedDerivation:
    def test_seed_is_pure_function_of_fingerprint(self):
        task = Task(fn=cell, params={"x": 3}, seed_param="rng_seed")
        first = task_seed_sequence(task)
        second = seed_sequence_for(task_fingerprint(task))
        assert (
            np.random.default_rng(first).integers(0, 2**31, 8).tolist()
            == np.random.default_rng(second).integers(0, 2**31, 8).tolist()
        )

    def test_different_tasks_get_independent_streams(self):
        a = task_seed_sequence(Task(fn=cell, params={"x": 1}))
        b = task_seed_sequence(Task(fn=cell, params={"x": 2}))
        draws_a = np.random.default_rng(a).integers(0, 2**31, 8)
        draws_b = np.random.default_rng(b).integers(0, 2**31, 8)
        assert draws_a.tolist() != draws_b.tolist()

    def test_entropy_words_cover_the_digest(self):
        fingerprint = task_fingerprint(Task(fn=cell))
        words = entropy_words(fingerprint)
        assert len(words) == 8
        assert all(0 <= word < 2**32 for word in words)
        rebuilt = "".join(
            word.to_bytes(4, "big").hex() for word in words
        )
        assert rebuilt == fingerprint
