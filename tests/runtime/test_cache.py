"""Result cache: atomic writes, content addressing, corruption handling."""

from __future__ import annotations

import json

from repro.runtime import CacheEntry, ResultCache


def fp(byte: str) -> str:
    """A syntactically valid fingerprint (64 hex chars)."""
    return byte * 64


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        entry = CacheEntry(
            fingerprint=fp("a"),
            value={"mean": 1.5, "runs": [1, 2]},
            key="cell[0]",
            function="m:f",
            wall_time_s=0.25,
        )
        cache.put(entry)
        loaded = cache.get(fp("a"))
        assert loaded == entry
        assert cache.hits == 1 and cache.writes == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(fp("b")) is None
        assert cache.misses == 1

    def test_contains_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert fp("a") not in cache
        cache.put(CacheEntry(fingerprint=fp("a"), value=1))
        cache.put(CacheEntry(fingerprint=fp("b"), value=2))
        assert fp("a") in cache
        assert len(cache) == 2

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(CacheEntry(fingerprint=fp("c"), value=1))
        assert (tmp_path / "cc" / f"{fp('c')}.json").is_file()

    def test_iter_fingerprints_sorted(self, tmp_path):
        cache = ResultCache(tmp_path)
        for char in ("d", "b", "a", "c"):
            cache.put(CacheEntry(fingerprint=fp(char), value=char))
        assert list(cache.iter_fingerprints()) == sorted(
            fp(char) for char in "abcd"
        )

    def test_overwrite_replaces(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(CacheEntry(fingerprint=fp("a"), value=1))
        cache.put(CacheEntry(fingerprint=fp("a"), value=2))
        assert cache.get(fp("a")).value == 2
        assert len(cache) == 1


class TestCorruption:
    def test_torn_file_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(CacheEntry(fingerprint=fp("a"), value=1))
        path = tmp_path / "aa" / f"{fp('a')}.json"
        path.write_text('{"fingerprint": "truncat', encoding="utf-8")
        assert cache.get(fp("a")) is None
        assert not path.exists()

    def test_fingerprint_mismatch_is_a_miss_and_removed(self, tmp_path):
        """A moved/renamed entry must never be served under a wrong key."""
        cache = ResultCache(tmp_path)
        cache.put(CacheEntry(fingerprint=fp("a"), value=1))
        src = tmp_path / "aa" / f"{fp('a')}.json"
        dst = tmp_path / "bb" / f"{fp('b')}.json"
        dst.parent.mkdir()
        dst.write_text(src.read_text(encoding="utf-8"), encoding="utf-8")
        assert cache.get(fp("b")) is None
        assert not dst.exists()
        assert cache.get(fp("a")).value == 1

    def test_missing_value_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / "aa" / f"{fp('a')}.json"
        path.parent.mkdir()
        path.write_text(json.dumps({"fingerprint": fp("a")}))
        assert cache.get(fp("a")) is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        for char in "abc":
            cache.put(CacheEntry(fingerprint=fp(char), value=char))
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []


class TestInvalidation:
    def test_invalidate_one(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(CacheEntry(fingerprint=fp("a"), value=1))
        assert cache.invalidate(fp("a")) is True
        assert cache.invalidate(fp("a")) is False
        assert cache.get(fp("a")) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for char in "abc":
            cache.put(CacheEntry(fingerprint=fp(char), value=char))
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_empty_root_never_created_by_reads(self, tmp_path):
        cache = ResultCache(tmp_path / "never")
        assert cache.get(fp("a")) is None
        assert list(cache.iter_fingerprints()) == []
        assert not (tmp_path / "never").exists()
