"""Executor: determinism across worker counts, retries, failure records,
checkpoints, resume, and telemetry.

Worker functions live at module level so the process pool can pickle
them by reference.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import (
    GridError,
    ResultCache,
    RetryPolicy,
    Task,
    run_tasks,
)


def double_cell(x: int) -> int:
    return 2 * x


def draw_cell(x: int, rng_seed: object) -> list[int]:
    """Draws from the runtime-injected SeedSequence (plus the param)."""
    rng = np.random.default_rng(rng_seed)
    return [x, *rng.integers(0, 2**31, size=4).tolist()]


def boom_cell(x: int) -> int:
    raise ValueError(f"boom {x}")


def flaky_cell(sentinel: str, x: int) -> int:
    """Fails until ``sentinel`` exists, creating it on the way down —
    one failure, then success (both within a run and across runs)."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("tripped", encoding="utf-8")
        raise RuntimeError("first attempt always fails")
    return 10 * x


def sleepy_cell(seconds: float) -> str:
    time.sleep(seconds)
    return "done"


def grid(n: int = 4) -> list[Task]:
    return [
        Task(
            fn=draw_cell,
            params={"x": index},
            key=f"cell[{index}]",
            seed_param="rng_seed",
            code_version="test-v1",
        )
        for index in range(n)
    ]


class TestDeterminism:
    def test_workers_1_vs_4_byte_identical(self):
        serial = run_tasks(grid(), workers=1)
        parallel = run_tasks(grid(), workers=4)
        assert serial.values() == parallel.values()
        assert json.dumps(serial.values()) == json.dumps(parallel.values())
        assert [o.fingerprint for o in serial.outcomes] == [
            o.fingerprint for o in parallel.outcomes
        ]

    def test_outcomes_in_task_order(self):
        report = run_tasks(grid(), workers=4)
        assert [o.index for o in report.outcomes] == [0, 1, 2, 3]
        assert [o.key for o in report.outcomes] == [
            f"cell[{i}]" for i in range(4)
        ]

    def test_seed_injection_depends_on_params(self):
        values = run_tasks(grid()).values()
        draws = [value[1:] for value in values]
        assert len({tuple(draw) for draw in draws}) == len(draws)

    def test_json_normalization_of_fresh_values(self):
        report = run_tasks(
            [Task(fn=double_cell, params={"x": 2}, code_version="v")]
        )
        assert report.values() == [4]
        assert isinstance(report.values()[0], int)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            run_tasks(grid(), workers=0)


class TestCacheIntegration:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_tasks(grid(), cache=cache)
        second = run_tasks(grid(), cache=ResultCache(tmp_path))
        assert first.values() == second.values()
        assert first.cache_hits == 0
        assert second.cache_hits == 4
        assert all(o.status == "cached" for o in second.outcomes)

    def test_parallel_run_resumes_from_serial_cache(self, tmp_path):
        serial = run_tasks(grid(), workers=1, cache=ResultCache(tmp_path))
        parallel = run_tasks(grid(), workers=4, cache=ResultCache(tmp_path))
        assert serial.values() == parallel.values()
        assert parallel.cache_hits == 4

    def test_fingerprint_change_misses(self, tmp_path):
        run_tasks(grid(), cache=ResultCache(tmp_path))
        bumped = [
            Task(
                fn=task.fn,
                params=task.params,
                key=task.key,
                seed_param=task.seed_param,
                code_version="test-v2",
            )
            for task in grid()
        ]
        report = run_tasks(bumped, cache=ResultCache(tmp_path))
        assert report.cache_hits == 0

    def test_prefix_grid_reuses_cache_of_larger_grid(self, tmp_path):
        """Content addressing: cells hit regardless of grid shape."""
        run_tasks(grid(4), cache=ResultCache(tmp_path))
        report = run_tasks(grid(2), cache=ResultCache(tmp_path))
        assert report.cache_hits == 2


class TestFailures:
    def failing_grid(self) -> list[Task]:
        return [
            Task(fn=double_cell, params={"x": 1}, code_version="f1"),
            Task(fn=boom_cell, params={"x": 2}, code_version="f1"),
            Task(fn=double_cell, params={"x": 3}, code_version="f1"),
        ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failure_is_contained_and_structured(self, workers):
        report = run_tasks(self.failing_grid(), workers=workers)
        assert [o.status for o in report.outcomes] == ["ok", "failed", "ok"]
        failure = report.outcomes[1]
        assert failure.error.error_type == "ValueError"
        assert "boom 2" in failure.error.message
        assert "boom_cell" in failure.error.traceback_text
        assert failure.attempts == 1

    def test_values_raises_grid_error(self):
        report = run_tasks(self.failing_grid())
        with pytest.raises(GridError, match="1 of 3 tasks failed"):
            report.values()
        with pytest.raises(GridError, match="resume"):
            report.raise_for_failures()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_retry_recovers_flaky_task(self, tmp_path, workers):
        sentinel = str(tmp_path / f"sentinel-{workers}")
        tasks = [
            Task(
                fn=flaky_cell,
                params={"sentinel": sentinel, "x": 7},
                code_version="f1",
            )
        ]
        report = run_tasks(
            tasks,
            workers=workers,
            policy=RetryPolicy(retries=2, backoff_base=0.01),
        )
        assert report.values() == [70]
        assert report.outcomes[0].attempts == 2

    def test_no_retries_by_default(self, tmp_path):
        sentinel = str(tmp_path / "sentinel")
        tasks = [
            Task(
                fn=flaky_cell,
                params={"sentinel": sentinel, "x": 7},
                code_version="f1",
            )
        ]
        report = run_tasks(tasks)
        assert not report.outcomes[0].ok

    def test_backoff_is_bounded(self):
        policy = RetryPolicy(retries=8, backoff_base=0.05, backoff_cap=0.2)
        delays = [policy.backoff(attempt) for attempt in range(1, 9)]
        assert delays[0] == 0.05
        assert max(delays) == 0.2
        assert delays == sorted(delays)

    def test_pool_timeout_produces_failure_record(self):
        tasks = [
            Task(fn=sleepy_cell, params={"seconds": 5.0}, code_version="f1"),
            Task(fn=double_cell, params={"x": 1}, code_version="f1"),
        ]
        report = run_tasks(
            tasks, workers=2, policy=RetryPolicy(timeout=0.3)
        )
        assert report.outcomes[0].error.error_type == "TimeoutError"
        assert "deadline" in report.outcomes[0].error.message
        assert report.outcomes[1].value == 2


class TestResumeAfterFailure:
    def test_failed_grid_checkpoints_and_second_run_completes(
        self, tmp_path
    ):
        """The ISSUE scenario: a cell raising mid-grid must not cost the
        completed cells; a rerun finishes from the checkpoint."""
        sentinel = str(tmp_path / "sentinel")
        cache_dir = tmp_path / "cache"

        def tasks() -> list[Task]:
            return [
                Task(fn=double_cell, params={"x": 1}, code_version="r1"),
                Task(
                    fn=flaky_cell,
                    params={"sentinel": sentinel, "x": 2},
                    code_version="r1",
                ),
                Task(fn=double_cell, params={"x": 3}, code_version="r1"),
            ]

        first = run_tasks(tasks(), workers=2, cache=ResultCache(cache_dir))
        assert len(first.failures) == 1
        with pytest.raises(GridError):
            first.values()

        # The two completed cells are already on disk.
        assert len(ResultCache(cache_dir)) == 2

        second = run_tasks(tasks(), workers=2, cache=ResultCache(cache_dir))
        assert second.values() == [2, 20, 6]
        assert second.cache_hits == 2
        assert [o.status for o in second.outcomes] == [
            "cached",
            "ok",
            "cached",
        ]


class TestTelemetry:
    def test_progress_called_once_per_task(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_tasks(grid(), cache=cache)
        seen: list[tuple[str, int, int]] = []
        run_tasks(
            grid(),
            cache=ResultCache(tmp_path),
            progress=lambda o, done, total: seen.append(
                (o.status, done, total)
            ),
        )
        assert len(seen) == 4
        assert [done for (_, done, _) in seen] == [1, 2, 3, 4]
        assert all(total == 4 for (_, _, total) in seen)
        assert all(status == "cached" for (status, _, _) in seen)

    def test_report_json_schema(self, tmp_path):
        report = run_tasks(grid(2), workers=2)
        payload = report.to_json_dict()
        assert payload["workers"] == 2
        assert payload["n_tasks"] == 2
        assert payload["n_failed"] == 0
        assert payload["task_wall_time_s"] >= 0
        assert {t["status"] for t in payload["tasks"]} == {"ok"}

        out = tmp_path / "report.json"
        report.write_json(out)
        assert json.loads(out.read_text(encoding="utf-8")) == payload

    def test_wall_time_recorded_per_task(self):
        report = run_tasks(
            [Task(fn=sleepy_cell, params={"seconds": 0.05},
                  code_version="t1")]
        )
        assert report.outcomes[0].wall_time_s >= 0.04
        assert report.wall_time_s >= report.outcomes[0].wall_time_s
