"""Durable plan store: persistence, invalidation, and the core wiring."""

from __future__ import annotations

import json

import pytest

import repro  # noqa: F401 — registers the plan-store factory
from repro.core.plan_cache import PlanCache, make_plan_store
from repro.runtime.plan_store import (
    ResultCachePlanStore,
    plan_cell_fingerprint,
)


class TestStoreRoundTrip:
    def test_save_then_load(self, tmp_path):
        store = ResultCachePlanStore(tmp_path)
        store.save(100, 20, 5, (40, 30, 20, 10, 0))
        assert store.load(100, 20, 5) == (40, 30, 20, 10, 0)

    def test_miss_returns_none(self, tmp_path):
        store = ResultCachePlanStore(tmp_path)
        assert store.load(100, 20, 5) is None

    def test_fingerprint_distinguishes_cells(self):
        assert plan_cell_fingerprint(100, 20, 5) != plan_cell_fingerprint(
            100, 20, 6
        )
        assert plan_cell_fingerprint(100, 20, 5) == plan_cell_fingerprint(
            100, 20, 5
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultCachePlanStore(tmp_path)
        store.save(50, 10, 4, (20, 15, 10, 5))
        fingerprint = plan_cell_fingerprint(50, 10, 4)
        path = store.cache._path(fingerprint)
        path.write_text("{torn", encoding="utf-8")
        assert store.load(50, 10, 4) is None

    def test_non_list_value_is_a_miss(self, tmp_path):
        store = ResultCachePlanStore(tmp_path)
        fingerprint = plan_cell_fingerprint(50, 10, 4)
        path = store.cache._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"fingerprint": fingerprint, "value": "bogus"}),
            encoding="utf-8",
        )
        assert store.load(50, 10, 4) is None


class TestPlanCacheIntegration:
    def test_warm_store_skips_recompute(self, tmp_path):
        grid = dict(
            n_replicas=4, client_grid=(30, 60), bot_grid=(4, 8)
        )
        cold = PlanCache(**grid, store=ResultCachePlanStore(tmp_path))
        assert cold.precompute() == 4
        assert cold.store_hits == 0

        warm = PlanCache(**grid, store=ResultCachePlanStore(tmp_path))
        assert warm.precompute() == 0
        assert warm.store_hits == 4
        for key, sizes in cold._plans.items():
            assert tuple(int(s) for s in sizes) == warm._plans[key]

    def test_warm_plans_serve_identically(self, tmp_path):
        grid = dict(
            n_replicas=5, client_grid=(40, 80), bot_grid=(5, 10)
        )
        cold = PlanCache(**grid, store=ResultCachePlanStore(tmp_path))
        cold.precompute()
        warm = PlanCache(**grid, store=ResultCachePlanStore(tmp_path))
        warm.precompute()
        for n_clients, n_bots in ((40, 5), (75, 9), (60, 7)):
            assert (
                cold.lookup(n_clients, n_bots).group_sizes
                == warm.lookup(n_clients, n_bots).group_sizes
            )

    def test_invalid_stored_sizes_recomputed(self, tmp_path):
        store = ResultCachePlanStore(tmp_path)
        # Poison the cell with a plan whose sum is wrong.
        store.save(30, 4, 4, (1, 1, 1, 1))
        cache = PlanCache(
            n_replicas=4, client_grid=(30,), bot_grid=(4,), store=store
        )
        assert cache.precompute() == 1
        assert cache.store_hits == 0
        assert sum(cache._plans[(30, 4)]) == 30

    def test_store_optional(self):
        cache = PlanCache(
            n_replicas=4, client_grid=(30,), bot_grid=(4,)
        )
        assert cache.precompute() == 1
        assert cache.store_hits == 0


class TestFactoryRegistration:
    def test_make_plan_store_builds_result_cache_store(self, tmp_path):
        store = make_plan_store(str(tmp_path))
        assert isinstance(store, ResultCachePlanStore)
        store.save(10, 2, 3, (5, 3, 2))
        assert make_plan_store(str(tmp_path)).load(10, 2, 3) == (5, 3, 2)

    def test_unregistered_factory_raises(self, monkeypatch):
        import repro.core.plan_cache as pc

        monkeypatch.setattr(pc, "_STORE_FACTORY", None)
        with pytest.raises(RuntimeError, match="no plan-store factory"):
            pc.make_plan_store("/tmp/nowhere")


class TestServiceWiring:
    def test_coordinator_attaches_store(self, tmp_path):
        from repro.service.config import ServiceConfig
        from repro.service.coordinator import ServiceCoordinator

        config = ServiceConfig(
            n_replicas=4,
            plan_client_grid=(30, 60),
            plan_bot_grid=(4, 8),
            plan_cache_dir=str(tmp_path / "plans"),
        )
        coordinator = ServiceCoordinator(config)
        assert isinstance(
            coordinator.plan_cache.store, ResultCachePlanStore
        )
        coordinator.plan_cache.precompute()
        rebooted = ServiceCoordinator(config)
        assert rebooted.plan_cache.precompute() == 0
        # The snapshot counter surfaces warm-start effectiveness.
        assert rebooted.plan_cache.store_hits == 4

    def test_no_dir_no_store(self):
        from repro.service.config import ServiceConfig
        from repro.service.coordinator import ServiceCoordinator

        coordinator = ServiceCoordinator(ServiceConfig(n_replicas=4))
        assert coordinator.plan_cache.store is None
