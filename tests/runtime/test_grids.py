"""Grid adapters: scenario/campaign sweeps through the runtime."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.runtime import (
    ResultCache,
    run_campaign_grid,
    run_scenario_grid,
    run_scenario_grid_report,
    scenario_tasks,
    sweep_records,
    task_fingerprint,
)
from repro.sim import AttackWave, CampaignConfig, ShuffleScenario
from repro.sim.shuffle_sim import run_scenario
from repro.sim.sweep import to_csv


def tiny_grid() -> list[ShuffleScenario]:
    return [
        ShuffleScenario(
            benign=300, bots=bots, n_replicas=40,
            target_fraction=0.8, preload_bots=True, max_rounds=400,
        )
        for bots in (30, 120)
    ]


class TestScenarioGrid:
    def test_results_match_direct_run_scenario(self):
        """spawn_seeds=True reproduces SeedSequence(seed).spawn(n)[i]."""
        results = run_scenario_grid(tiny_grid(), repetitions=3, seed=5)
        children = np.random.SeedSequence(5).spawn(2)
        for scenario, child, result in zip(tiny_grid(), children, results):
            direct = run_scenario(scenario, repetitions=3, seed=child)
            assert result.runs == direct.runs
            assert result.shuffles == direct.shuffles
            assert result.saved_fraction == direct.saved_fraction

    def test_base_seed_mode_matches_run_scenario(self):
        """spawn_seeds=False hands every cell SeedSequence(seed) — the
        figure drivers' historical convention."""
        results = run_scenario_grid(
            tiny_grid(), repetitions=3, seed=5, spawn_seeds=False
        )
        for scenario, result in zip(tiny_grid(), results):
            direct = run_scenario(scenario, repetitions=3, seed=5)
            assert result.runs == direct.runs

    def test_workers_1_vs_4_identical(self):
        serial = run_scenario_grid(tiny_grid(), repetitions=3, seed=6)
        parallel = run_scenario_grid(
            tiny_grid(), repetitions=3, seed=6, workers=4
        )
        assert serial == parallel

    def test_cache_round_trip_preserves_values(self, tmp_path):
        fresh = run_scenario_grid(
            tiny_grid(), repetitions=2, seed=7, cache=tmp_path
        )
        cached = run_scenario_grid(
            tiny_grid(), repetitions=2, seed=7, cache=tmp_path
        )
        assert fresh == cached

    def test_repetitions_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_scenario_grid(tiny_grid(), repetitions=2, seed=7, cache=cache)
        assert cache.writes == 2
        run_scenario_grid(tiny_grid(), repetitions=3, seed=7, cache=cache)
        assert cache.writes == 4  # new fingerprints, recomputed

    def test_report_telemetry(self, tmp_path):
        results, report = run_scenario_grid_report(
            tiny_grid(), repetitions=2, seed=8, cache=tmp_path
        )
        assert len(results) == 2
        assert report.cache_misses == 2
        payload = report.to_json_dict()
        assert payload["n_tasks"] == 2
        assert all("scenario[" in t["key"] for t in payload["tasks"])


class TestScenarioTasks:
    def test_fingerprints_are_grid_shape_independent(self):
        """Cell i's fingerprint depends on its own content only, so a
        longer grid extends — not invalidates — a cached shorter one."""
        short = scenario_tasks(tiny_grid()[:1], repetitions=2, seed=3)
        full = scenario_tasks(tiny_grid(), repetitions=2, seed=3)
        assert task_fingerprint(short[0]) == task_fingerprint(full[0])

    def test_spawn_mode_changes_fingerprints(self):
        spawned = scenario_tasks(tiny_grid(), repetitions=2, seed=3)
        based = scenario_tasks(
            tiny_grid(), repetitions=2, seed=3, spawn_seeds=False
        )
        assert task_fingerprint(spawned[0]) != task_fingerprint(based[0])

    def test_params_are_json_encodable(self):
        for task in scenario_tasks(tiny_grid(), repetitions=2, seed=3):
            json.dumps(dict(task.params))


class TestSweepRecords:
    def test_matches_sweep_facade(self):
        from repro.sim.sweep import sweep

        direct = sweep_records(tiny_grid(), repetitions=3, seed=9)
        facade = sweep(tiny_grid(), repetitions=3, seed=9)
        assert direct == facade
        assert to_csv(direct) == to_csv(facade)

    def test_parallel_csv_byte_identical(self):
        serial = sweep_records(tiny_grid(), repetitions=3, seed=9)
        parallel = sweep_records(
            tiny_grid(), repetitions=3, seed=9, workers=4
        )
        assert to_csv(serial) == to_csv(parallel)


class TestCampaignGrid:
    def configs(self) -> list[CampaignConfig]:
        return [
            CampaignConfig(
                waves=(AttackWave(start_hour=1.0, bots=120, benign=300),),
                shuffle_replicas=40,
            ),
            CampaignConfig(
                waves=(
                    AttackWave(start_hour=2.0, bots=60, benign=300),
                    AttackWave(start_hour=8.0, bots=200, benign=300),
                ),
                shuffle_replicas=40,
            ),
        ]

    def test_workers_1_vs_2_identical(self):
        serial = run_campaign_grid(self.configs(), seed=4)
        parallel = run_campaign_grid(self.configs(), seed=4, workers=2)
        assert serial == parallel

    def test_matches_run_campaign_with_spawned_seed(self):
        from repro.sim.campaign import run_campaign

        results = run_campaign_grid(self.configs(), seed=4)
        children = np.random.SeedSequence(4).spawn(2)
        for config, child, result in zip(
            self.configs(), children, results
        ):
            direct = run_campaign(config, seed=child)
            assert result == direct

    def test_cache_round_trip(self, tmp_path):
        fresh = run_campaign_grid(self.configs(), seed=4, cache=tmp_path)
        cached = run_campaign_grid(self.configs(), seed=4, cache=tmp_path)
        assert fresh == cached

    def test_decoded_results_have_behavioural_properties(self):
        result = run_campaign_grid(self.configs(), seed=4)[0]
        assert result.total_shuffles > 0
        assert 0.0 <= result.reactive_saving <= 1.0
        summary = result.summarize_saved()
        assert summary.n == len(result.outcomes)


class TestErrorPropagation:
    def test_bad_scenario_surfaces_as_grid_error(self):
        from repro.runtime import GridError

        bad = [
            ShuffleScenario(
                benign=300, bots=30, n_replicas=40, planner="no-such",
                preload_bots=True,
            )
        ]
        with pytest.raises(GridError):
            run_scenario_grid(bad, repetitions=2, seed=1)
