"""Sketch-backed saturation monitor: a verdict-preserving drop-in.

The exact monitor answers "is this replica saturated?" from a per-event
deque; the sketch monitor answers the same question from fixed-memory
epoch sketches and additionally names the top talkers.  These tests pin
the drop-in contract under a fake clock, and the backend/report wiring
that turns attribution into coordinator evidence.
"""

from __future__ import annotations

import pytest

from repro.service import ReplicaBackend, SaturationMonitor, ServiceConfig
from repro.service.tokens import SketchSaturationMonitor


def _pair(clock, window: float = 1.0, min_events: int = 4):
    exact = SaturationMonitor(
        window=window, overload_ratio=0.5, min_events=min_events,
        clock=clock,
    )
    sketch = SketchSaturationMonitor(
        window=window, overload_ratio=0.5, min_events=min_events,
        clock=clock,
    )
    return exact, sketch


class TestVerdictParity:
    @pytest.mark.parametrize("throttled_of_8", [0, 2, 4, 6, 8])
    def test_same_verdict_at_every_ratio(self, clock, throttled_of_8):
        exact, sketch = _pair(clock)
        for i in range(8):
            admitted = i >= throttled_of_8
            exact.record(admitted, client_id=f"c-{i}")
            sketch.record(admitted, client_id=f"c-{i}")
        assert sketch.counts() == exact.counts()
        assert sketch.throttle_ratio() == pytest.approx(
            exact.throttle_ratio()
        )
        assert sketch.saturated() == exact.saturated()

    def test_min_events_gate_matches(self, clock):
        exact, sketch = _pair(clock, min_events=10)
        for _ in range(9):
            exact.record(False)
            sketch.record(False)
        assert not exact.saturated() and not sketch.saturated()
        exact.record(False)
        sketch.record(False)
        assert exact.saturated() and sketch.saturated()

    def test_both_cool_down_after_the_window(self, clock):
        exact, sketch = _pair(clock, window=1.0)
        for _ in range(20):
            exact.record(False, client_id="bot")
            sketch.record(False, client_id="bot")
        assert exact.saturated() and sketch.saturated()
        # A full window plus one sketch epoch of slack: both verdicts
        # must have decayed to quiet.
        clock.advance(1.0 + 0.25)
        assert exact.counts() == (0, 0)
        assert sketch.counts() == (0, 0)
        assert not exact.saturated() and not sketch.saturated()

    def test_reset_clears_both(self, clock):
        exact, sketch = _pair(clock)
        for _ in range(8):
            exact.record(False)
            sketch.record(False)
        exact.reset()
        sketch.reset()
        assert exact.counts() == sketch.counts() == (0, 0)


class TestAttribution:
    def test_heavy_hitters_name_the_flooder(self, clock):
        _, sketch = _pair(clock)
        for i in range(60):
            sketch.record(False, client_id="bot-9")
        for i in range(20):
            sketch.record(True, client_id=f"c-{i}")
        top = sketch.heavy_hitters(1)
        assert top and top[0].key == "bot-9"
        assert top[0].count >= 60

    def test_state_bytes_flat_in_request_rate(self, clock):
        _, sketch = _pair(clock)
        before = sketch.state_bytes()
        for i in range(3000):
            sketch.record(False, client_id=f"c-{i}")
        # The deque-based monitor would hold 3000 events here; the
        # sketch footprint moves only by the bounded top-k key table.
        assert sketch.state_bytes() - before < 1024

    def test_rejects_bad_overload_ratio(self, clock):
        with pytest.raises(ValueError):
            SketchSaturationMonitor(
                window=1.0, overload_ratio=0.0, min_events=1, clock=clock
            )


def _sketch_config(config: ServiceConfig) -> ServiceConfig:
    return ServiceConfig(
        n_replicas=config.n_replicas,
        telemetry_port=None,
        bucket_rate=config.bucket_rate,
        bucket_burst=config.bucket_burst,
        saturation_window=config.saturation_window,
        overload_ratio=config.overload_ratio,
        min_window_events=config.min_window_events,
        detection_interval=config.detection_interval,
        detection_confirmations=config.detection_confirmations,
        seed=config.seed,
        detector="sketch",
    )


class TestBackendWiring:
    def test_exact_mode_has_no_report(self, config, clock):
        backend = ReplicaBackend(config, "r-1", clock=clock)
        assert isinstance(backend.monitor, SaturationMonitor)
        assert backend.heavy_hitter_report() is None
        assert "heavy_hitters" not in backend.snapshot()

    def test_sketch_mode_reports_who_is_hammering(self, config, clock):
        backend = ReplicaBackend(
            _sketch_config(config), "r-1", clock=clock
        )
        assert isinstance(backend.monitor, SketchSaturationMonitor)
        backend.admit("bot-0")
        for seq in range(40):
            backend._respond(["REQ", "bot-0", str(seq)])
        assert backend.attacked()

        report = backend.heavy_hitter_report()
        assert report is not None
        assert report.replica_id == "r-1"
        assert report.total == 40
        assert report.top and report.top[0].key == "bot-0"
        assert report.suspects(min_share=0.5) == ["bot-0"]

        snap = backend.snapshot()
        assert snap["detector"] == "sketch"
        assert snap["heavy_hitters"][0][0] == "bot-0"

    def test_sketch_mode_matches_exact_attack_verdict(self, config, clock):
        exact = ReplicaBackend(config, "r-1", clock=clock)
        sketch = ReplicaBackend(
            _sketch_config(config), "r-2", clock=clock
        )
        for backend in (exact, sketch):
            backend.admit("u-1")
            backend.admit("bot-0")
        for seq in range(30):
            # One well-behaved client inside its bucket, one flooder.
            if seq % 10 == 0:
                clock.advance(0.05)
                exact._respond(["REQ", "u-1", str(seq)])
                sketch._respond(["REQ", "u-1", str(seq)])
            exact._respond(["REQ", "bot-0", str(seq)])
            sketch._respond(["REQ", "bot-0", str(seq)])
        assert exact.attacked() == sketch.attacked() is True
