"""Acceptance: the live defense quarantines a real insider botnet.

The paper-scale scenario over real localhost sockets: 200 benign
clients and 20 persistent insider bots on a 10-replica pool.  The run
must pin every attack inside the quarantine set within the shuffle
budget predicted by :mod:`repro.analysis.convergence` (with slack), and
leave at least 95% of benign clients on bot-free replicas.
"""

from __future__ import annotations

import os

import pytest

from repro.service import (
    LoadConfig,
    ServiceConfig,
    run_scenario_sync,
    shuffle_budget,
)

pytestmark = [
    pytest.mark.slow,
    # Debug mode traces every callback (~3x loop overhead), which makes
    # the 60 s convergence budget meaningless; the CI debug job covers
    # the unit/integration tier and skips this acceptance scenario.
    pytest.mark.skipif(
        bool(os.environ.get("PYTHONASYNCIODEBUG")),
        reason="asyncio debug instrumentation breaks the live timing budget",
    ),
]


def test_live_botnet_is_quarantined_within_budget():
    service_config = ServiceConfig(n_replicas=10, seed=7, telemetry_port=None)
    load_config = LoadConfig(n_benign=200, n_bots=20, seed=11)

    report = run_scenario_sync(
        service_config, load_config, duration=60.0, target_fraction=0.95
    )

    # The budget handed to the coordinator is the oracle prediction
    # (14 rounds for 180/20/10 at 95%) with 3x slack.
    assert report.budget == shuffle_budget(200, 20, 10) == 42

    assert report.quarantined, report.snapshot
    assert not report.budget_exhausted
    assert report.shuffles_completed <= report.budget
    assert report.benign_clean_fraction >= 0.95

    # Bots ended up concentrated: far fewer dirty replicas than bots.
    assert 0 < len(report.bot_replicas) <= load_config.n_bots

    # The flood was real: bots got throttled, which is what made them
    # detectable in the first place.
    assert report.bot_throttled > 0

    # QoS timeline in the shared sim/live schema, with the defense
    # state stamped on each window.
    assert report.windows
    assert report.windows[-1].shuffles_completed == (
        report.shuffles_completed
    )

    snapshot = report.snapshot
    assert snapshot["quarantined"] is True
    assert snapshot["believed_bots"] >= load_config.n_bots
    assert snapshot["quarantine_replicas"]
    # The plan cache actually served the loop (cache hits at full
    # width, greedy fallbacks on dispersion rounds).
    assert snapshot["plan_cache"]["hits"] + (
        snapshot["plan_cache"]["fallbacks"]
    ) >= report.shuffles_completed
