"""Trust-layer wiring into the live service: gate, coordinator, harness.

The backend's tier gate sits between the whitelist and the token
bucket: policy rejections must spend no bucket tokens but still feed
the saturation monitor (the flood stays the detection signal).  The
coordinator only grows a trust manager when ``trust_enabled`` is set,
so the default path stays byte-identical to the pre-trust service.
"""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.service.backend import ReplicaBackend
from repro.service.coordinator import ServiceCoordinator
from repro.trust import TrustConfig, TrustManager, TrustTier


def _pin_tier(trust: TrustManager, client_id: str, tier: TrustTier,
              score: float, requests: int = 0) -> None:
    trust.table.ensure(client_id, now=0.0)
    trust.table.load_row(client_id, {
        "trust": score,
        "tier": int(tier),
        "tier_since": 0.0,
        "last_seen": 0.0,
        "requests": requests,
    })


@pytest.fixture
def trust(clock) -> TrustManager:
    return TrustManager(TrustConfig(seed=7))


@pytest.fixture
def backend(config, clock, trust) -> ReplicaBackend:
    replica = ReplicaBackend(
        config, "r-0", clock=clock, trust=trust
    )
    replica.admit("good")
    replica.admit("shady")
    replica.admit("bot")
    return replica


class TestTierGate:
    def test_denied_tier_gets_deny_without_spending_tokens(
        self, backend, trust
    ):
        _pin_tier(trust, "bot", TrustTier.DENIED, 0.05)
        tokens_before = backend.bucket.tokens
        reply = backend._respond(["REQ", "bot", "1"])
        assert reply == "DENY 1"
        assert backend.bucket.tokens == tokens_before
        assert backend.stats.denied == 1

    def test_gated_requests_feed_the_saturation_monitor(
        self, backend, trust, clock
    ):
        """A policy-starved bot must keep looking like an attack so
        the shuffle loop can corner it."""
        _pin_tier(trust, "bot", TrustTier.DENIED, 0.05)
        for seq in range(8):
            backend._respond(["REQ", "bot", str(seq)])
            clock.advance(0.05)
        total, throttled = backend.monitor.counts()
        assert total == 8
        assert throttled == 8
        assert backend.attacked()

    def test_throttled_tier_passes_one_in_throttle_every(
        self, backend, trust, clock
    ):
        """Deterministic 1-in-N pass-through keyed on the client's own
        request count: request parity decides, not randomness."""
        verdicts = []
        for seq in range(6):
            _pin_tier(
                trust, "shady", TrustTier.THROTTLED, 0.2, requests=seq
            )
            verdicts.append(
                backend._respond(["REQ", "shady", str(seq)]).split()[0]
            )
            clock.advance(0.1)
        assert verdicts == [
            "OK", "THROTTLED", "OK", "THROTTLED", "OK", "THROTTLED",
        ]

    def test_gate_sits_behind_the_whitelist(self, backend, trust):
        # Not-whitelisted wins over tier: the coordinator never
        # assigned this client here, trust does not resurrect it.
        _pin_tier(trust, "outsider", TrustTier.TRUSTED, 0.95)
        assert backend._respond(["REQ", "outsider", "1"]) == "DENY 1"

    def test_watch_tier_reaches_the_bucket(self, backend, trust):
        reply = backend._respond(["REQ", "good", "1"])
        assert reply == "OK 1 r-0"
        assert trust.table.requests_of("good") == 1

    def test_bucket_throttle_is_a_violation_signal(
        self, backend, trust, clock
    ):
        """Capacity exhaustion (not the tier gate) is what marks a
        violation in the profile."""
        backend.bucket._tokens = 0.0  # drain the bucket directly
        backend._respond(["REQ", "good", "1"])
        assert trust.profile("good").violations == 1

    def test_snapshot_includes_tier_table(self, backend, trust):
        _pin_tier(trust, "bot", TrustTier.DENIED, 0.05)
        snap = backend.snapshot()
        assert snap["trust_tiers"]["DENIED"] == 1
        # good + shady are unknown to the table -> initial tier (WATCH)
        assert snap["trust_tiers"]["WATCH"] == 2

    def test_no_trust_manager_means_no_gate(self, config, clock):
        replica = ReplicaBackend(config, "r-0", clock=clock)
        replica.admit("anyone")
        assert replica._respond(["REQ", "anyone", "1"]) == "OK 1 r-0"
        assert "trust_tiers" not in replica.snapshot()


class TestCoordinatorWiring:
    def test_disabled_config_builds_no_trust_state(self, config):
        coordinator = ServiceCoordinator(config)
        assert coordinator.trust is None
        snap = coordinator.snapshot()
        assert snap["trust"] is None
        assert snap["state_backend"] == "memory"
        assert snap["restored"] is False

    def test_enabled_config_shares_one_manager_with_the_pool(
        self, config
    ):
        enabled = dataclasses.replace(config, trust_enabled=True)

        async def scenario():
            coordinator = ServiceCoordinator(enabled)
            await coordinator.start()
            try:
                assert coordinator.trust is not None
                backends = list(coordinator.pool.backends.values())
                assert backends, "pool should have started replicas"
                for replica in backends:
                    assert replica.trust is coordinator.trust
                snap = coordinator.snapshot()
                assert snap["trust"]["population"] == 0
                assert snap["trust"]["mean_trust"] == 1.0
            finally:
                await coordinator.stop()

        asyncio.run(scenario())

    def test_trust_prior_disabled_paths_return_none(self, config):
        coordinator = ServiceCoordinator(config)
        assert coordinator._trust_prior(["a", "b"], upper=10) is None

        zero = dataclasses.replace(
            config, trust_enabled=True, trust_prior_strength=0.0
        )
        coordinator2 = ServiceCoordinator(zero)
        assert coordinator2._trust_prior(["a", "b"], upper=10) is None

    def test_trust_prior_peaks_at_low_trust_mass(self, config):
        enabled = dataclasses.replace(config, trust_enabled=True)
        coordinator = ServiceCoordinator(enabled)
        _pin_tier(coordinator.trust, "bot", TrustTier.DENIED, 0.0)
        prior = coordinator._trust_prior(["bot"], upper=10)
        assert prior is not None
        assert prior.shape == (11,)
        assert prior[1] == 0.0  # expected bot count = 1 - trust = 1
