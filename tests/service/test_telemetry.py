"""Telemetry: the HTTP metrics endpoint and file exporters."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs import (
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.service import TelemetryServer, export_snapshot, export_windows
from repro.sim.qos import QoSWindow


async def _http_get(host: str, port: int) -> tuple[bytes, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return head, body


def test_serves_snapshot_as_json_over_http():
    async def scenario():
        state = {"shuffles_completed": 3, "quarantined": False}
        server = TelemetryServer(lambda: state)
        await server.start()
        try:
            return await _http_get(*server.address)
        finally:
            await server.stop()

    head, body = asyncio.run(scenario())
    assert head.startswith(b"HTTP/1.0 200 OK")
    assert b"Content-Type: application/json" in head
    assert json.loads(body) == {
        "shuffles_completed": 3, "quarantined": False,
    }


def test_snapshot_callable_polled_per_request():
    async def scenario():
        counter = {"n": 0}

        def snapshot() -> dict:
            counter["n"] += 1
            return counter

        server = TelemetryServer(snapshot)
        await server.start()
        try:
            _, first = await _http_get(*server.address)
            _, second = await _http_get(*server.address)
            return json.loads(first), json.loads(second)
        finally:
            await server.stop()

    first, second = asyncio.run(scenario())
    assert (first["n"], second["n"]) == (1, 2)  # live state, not a copy


def test_address_requires_start():
    server = TelemetryServer(dict)
    with pytest.raises(RuntimeError):
        server.address


def test_metrics_path_serves_prometheus_text_when_registry_attached():
    registry = MetricsRegistry()
    counter = registry.counter(
        "service_shuffle_rounds_total",
        "Completed shuffle rounds.",
        ("estimator",),
    )
    counter.inc(2, estimator="binomial")
    registry.gauge(
        "service_token_bucket_tokens", "Token bucket level.", ("replica",)
    ).set(7.5, replica="r0")

    async def scenario():
        server = TelemetryServer(dict, registry=registry)
        await server.start()
        try:
            return await _http_get(*server.address)
        finally:
            await server.stop()

    head, body = asyncio.run(scenario())
    assert head.startswith(b"HTTP/1.0 200 OK")
    assert PROMETHEUS_CONTENT_TYPE.encode() in head
    assert body.decode() == render_prometheus(registry)
    text = body.decode()
    assert 'service_shuffle_rounds_total{estimator="binomial"} 2' in text
    assert 'service_token_bucket_tokens{replica="r0"} 7.5' in text


def test_non_metrics_path_still_serves_json_snapshot():
    registry = MetricsRegistry()
    registry.counter("c_total", "C.").inc()

    async def scenario():
        server = TelemetryServer(lambda: {"ok": True}, registry=registry)
        await server.start()
        try:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /snapshot HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw.partition(b"\r\n\r\n")
        finally:
            await server.stop()

    head, _, body = asyncio.run(scenario())
    assert b"Content-Type: application/json" in head
    assert json.loads(body) == {"ok": True}


def test_export_snapshot_round_trips_with_deprecation(tmp_path):
    with pytest.warns(DeprecationWarning, match="repro.obs.export_json"):
        target = export_snapshot({"b": 2, "a": [1]}, tmp_path / "snap.json")
    assert json.loads(target.read_text()) == {"a": [1], "b": 2}


def test_export_windows_uses_shared_schema(tmp_path):
    windows = [
        QoSWindow(
            time=0.5, benign_sent=10, benign_ok=9,
            latency_sum=0.9, latency_count=10,
            attacked_replicas=1, active_replicas=3,
            shuffles_completed=0,
        ),
    ]
    target = export_windows(windows, tmp_path / "windows.json")
    rows = json.loads(target.read_text())
    assert len(rows) == 1
    assert rows[0]["benign_ok"] == 9
    assert rows[0]["attacked_replicas"] == 1
