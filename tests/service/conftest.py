"""Shared fixtures for the live-service tests."""

from __future__ import annotations

import pytest

from repro.service import ServiceConfig


class FakeClock:
    """Manually advanced monotonic clock for real-time primitives."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def config() -> ServiceConfig:
    """Small, fast service configuration for unit tests."""
    return ServiceConfig(
        n_replicas=3,
        telemetry_port=None,
        bucket_rate=50.0,
        bucket_burst=5.0,
        saturation_window=1.0,
        overload_ratio=0.5,
        min_window_events=4,
        detection_interval=0.05,
        detection_confirmations=1,
        plan_client_grid=(5, 10, 25, 50),
        plan_bot_grid=(1, 2, 5, 10),
        seed=7,
    )
