"""Shared fixtures for the live-service tests."""

from __future__ import annotations

import logging
import os

import pytest

from repro.service import ServiceConfig

#: seconds a single event-loop callback may run before the debug-mode
#: job fails the test (asyncio's own slow-callback threshold is 0.1 s;
#: CI sets a slightly looser budget to absorb scheduler noise).
SLOW_CALLBACK_MAX = float(os.environ.get("REPRO_SLOW_CALLBACK_MAX", "0.25"))

_SLOW_CALLBACK_MARKER = "Executing <"


class _SlowCallbackCollector(logging.Handler):
    """Collects asyncio debug-mode 'Executing <Handle ...> took N.NNN
    seconds' warnings so the P6 discipline is enforced dynamically."""

    def __init__(self) -> None:
        super().__init__(level=logging.WARNING)
        self.slow: list[str] = []

    def emit(self, record: logging.LogRecord) -> None:
        message = record.getMessage()
        if _SLOW_CALLBACK_MARKER not in message or "took" not in message:
            return
        try:
            seconds = float(message.rsplit("took", 1)[1].split()[0])
        except (IndexError, ValueError):  # pragma: no cover
            seconds = float("inf")
        if seconds > SLOW_CALLBACK_MAX:
            self.slow.append(message)


@pytest.fixture(autouse=True)
def _no_slow_event_loop_callbacks():
    """Under ``PYTHONASYNCIODEBUG=1`` (the CI concurrency job), fail any
    test whose event loop ran a callback longer than SLOW_CALLBACK_MAX.

    This is the dynamic counterpart of reprolint's static P6 pass: the
    linter proves no *known* blocking call sits on an async path; this
    fixture catches the ones static analysis cannot see (CPU spikes,
    pathological inputs, new dependencies).
    """
    if not os.environ.get("PYTHONASYNCIODEBUG"):
        yield
        return
    collector = _SlowCallbackCollector()
    asyncio_logger = logging.getLogger("asyncio")
    asyncio_logger.addHandler(collector)
    try:
        yield
    finally:
        asyncio_logger.removeHandler(collector)
    assert not collector.slow, (
        "event-loop callbacks exceeded "
        f"REPRO_SLOW_CALLBACK_MAX={SLOW_CALLBACK_MAX}s:\n"
        + "\n".join(collector.slow)
    )


class FakeClock:
    """Manually advanced monotonic clock for real-time primitives."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def config() -> ServiceConfig:
    """Small, fast service configuration for unit tests."""
    return ServiceConfig(
        n_replicas=3,
        telemetry_port=None,
        bucket_rate=50.0,
        bucket_burst=5.0,
        saturation_window=1.0,
        overload_ratio=0.5,
        min_window_events=4,
        detection_interval=0.05,
        detection_confirmations=1,
        plan_client_grid=(5, 10, 25, 50),
        plan_bot_grid=(1, 2, 5, 10),
        seed=7,
    )
