"""Load generator: config validation and a small live benign run."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    LoadConfig,
    LoadGenerator,
    ServiceConfig,
    ServiceCoordinator,
)


class TestLoadConfig:
    def test_defaults_match_the_acceptance_scenario(self):
        config = LoadConfig()
        assert (config.n_benign, config.n_bots) == (200, 20)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_benign": -1},
            {"n_bots": -1},
            {"benign_rps": 0.0},
            {"bot_rps": 0.0},
            {"bot_burst": 0},
            {"window": 0.0},
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            LoadConfig(**kwargs)

    def test_client_id_spaces_are_disjoint(self):
        load = LoadGenerator(
            LoadConfig(n_benign=5, n_bots=3),
            control_host="127.0.0.1",
            control_port=1,
        )
        assert len(load.benign_ids) == 5
        assert len(load.bot_ids) == 3
        assert not set(load.benign_ids) & set(load.bot_ids)


class TestLiveBenignRun:
    def test_benign_population_is_served_and_sampled(self):
        service_config = ServiceConfig(
            n_replicas=2, telemetry_port=None, detection_interval=0.5
        )
        load_config = LoadConfig(
            n_benign=6, n_bots=0, benign_rps=8.0, window=0.25, seed=3
        )

        async def scenario():
            coordinator = ServiceCoordinator(service_config)
            await coordinator.start()
            try:
                load = LoadGenerator(
                    load_config,
                    control_host=service_config.host,
                    control_port=coordinator.control_port,
                    context=lambda: {
                        "attacked": [],
                        "n_active": coordinator.pool.n_active,
                        "shuffles_completed": (
                            coordinator.shuffles_completed
                        ),
                    },
                )
                windows = await load.run(duration=2.0)
                return load, windows, dict(coordinator.assignments)
            finally:
                await coordinator.stop()

        load, windows, assignments = asyncio.run(scenario())
        assert load.total_ok > 0
        # No bots, capacity provisioned for the population: everything
        # the clients sent should have been served.
        assert load.total_ok == load.total_sent
        assert windows, "sampler must emit QoS windows"
        assert all(w.active_replicas == 2 for w in windows)
        assert set(assignments) == set(load.benign_ids)
        served_windows = [w for w in windows if w.benign_sent]
        assert served_windows
        assert all(
            w.success_ratio == 1.0 and w.mean_latency > 0.0
            for w in served_windows
        )
