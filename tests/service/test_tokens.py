"""Token bucket and saturation monitor under a fake clock."""

from __future__ import annotations

import pytest

from repro.service import SaturationMonitor, TokenBucket


class TestTokenBucket:
    def test_burst_admits_then_drains(self, clock):
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self, clock):
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        for _ in range(3):
            bucket.try_acquire()
        clock.advance(0.1)  # 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self, clock):
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_tokens_property_reflects_level(self, clock):
        bucket = TokenBucket(rate=1.0, burst=4.0, clock=clock)
        bucket.try_acquire()
        assert bucket.tokens == pytest.approx(3.0)

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_nonpositive_parameters(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestSaturationMonitor:
    def _monitor(self, clock, min_events: int = 4) -> SaturationMonitor:
        return SaturationMonitor(
            window=1.0, overload_ratio=0.5, min_events=min_events,
            clock=clock,
        )

    def test_quiet_below_min_events(self, clock):
        monitor = self._monitor(clock)
        for _ in range(3):
            monitor.record(admitted=False)
        assert not monitor.saturated()  # 100% throttled but too few events

    def test_saturates_above_ratio(self, clock):
        monitor = self._monitor(clock)
        for admitted in (True, False, False, False):
            monitor.record(admitted=admitted)
        assert monitor.throttle_ratio() == pytest.approx(0.75)
        assert monitor.saturated()

    def test_calm_below_ratio(self, clock):
        monitor = self._monitor(clock)
        for admitted in (True, True, True, False):
            monitor.record(admitted=admitted)
        assert not monitor.saturated()

    def test_old_events_slide_out_of_window(self, clock):
        monitor = self._monitor(clock)
        for _ in range(4):
            monitor.record(admitted=False)
        assert monitor.saturated()
        clock.advance(1.5)
        assert monitor.counts() == (0, 0)
        assert not monitor.saturated()

    def test_reset_clears_state(self, clock):
        monitor = self._monitor(clock)
        for _ in range(4):
            monitor.record(admitted=False)
        monitor.reset()
        assert monitor.counts() == (0, 0)
        assert monitor.throttle_ratio() == 0.0

    def test_rejects_bad_parameters(self, clock):
        with pytest.raises(ValueError):
            SaturationMonitor(
                window=0.0, overload_ratio=0.5, min_events=1, clock=clock
            )
        with pytest.raises(ValueError):
            SaturationMonitor(
                window=1.0, overload_ratio=1.5, min_events=1, clock=clock
            )
