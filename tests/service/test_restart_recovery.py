"""Acceptance: kill the coordinator mid-scenario, restart, recover.

The paper's coordinator keeps bindings and attack belief in process
memory — a crash forgets which clients were already cornered and the
shuffle sequence starts over.  With a persistent state backend the
successor process must pick up the predecessor's bindings, trust
profiles, and belief, and finish the quarantine instead of restarting
it.

The predecessor runs as a real subprocess (``repro-serve scenario``)
so the kill is a genuine SIGKILL — no atexit handler, no flush-on-
shutdown path, only the batched mid-sweep persistence can have saved
the state.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time

import pytest

from repro.service import LoadConfig, ServiceConfig, run_scenario_sync
from repro.trust import PROFILE_NAMESPACE, SqliteBackend

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        bool(os.environ.get("PYTHONASYNCIODEBUG")),
        reason="asyncio debug instrumentation breaks the live timing budget",
    ),
]


def _read_belief(db_path: str) -> dict | None:
    """Poll the predecessor's belief document via a read-only sqlite
    connection (WAL mode: concurrent readers are safe)."""
    try:
        conn = sqlite3.connect(
            f"file:{db_path}?mode=ro", uri=True, timeout=0.2
        )
    except sqlite3.OperationalError:
        return None
    try:
        row = conn.execute(
            "SELECT value FROM kv WHERE namespace = ? AND key = ?",
            ("state", "belief"),
        ).fetchone()
    except sqlite3.OperationalError:
        return None  # table not created yet
    finally:
        conn.close()
    return None if row is None else json.loads(row[0])


def test_coordinator_survives_sigkill_with_sqlite_backend(tmp_path):
    db_path = str(tmp_path / "state.db")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    predecessor = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.cli", "scenario",
            "--clients", "120", "--bots", "12", "--replicas", "10",
            "--duration", "120", "--trust",
            "--state-backend", f"sqlite:{db_path}",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Wait until the defense has demonstrably made progress — at
        # least two completed shuffles persisted — then kill it dead.
        deadline = time.monotonic() + 90.0
        belief = None
        while time.monotonic() < deadline:
            if predecessor.poll() is not None:
                pytest.fail(
                    "scenario finished before the kill "
                    f"(rc={predecessor.returncode}); belief={belief}"
                )
            belief = _read_belief(db_path)
            if belief is not None and belief.get("shuffles_completed", 0) >= 2:
                break
            time.sleep(0.25)
        else:
            pytest.fail(f"no persisted progress before kill: {belief}")
        predecessor.send_signal(signal.SIGKILL)
        predecessor.wait(timeout=30)
    finally:
        if predecessor.poll() is None:
            predecessor.kill()
            predecessor.wait(timeout=30)

    # The corpse left durable state behind: bindings, profiles, belief.
    storage = SqliteBackend(db_path)
    try:
        bindings = storage.items("bindings")
        profiles = storage.items(PROFILE_NAMESPACE)
        belief = storage.get("state", "belief")
    finally:
        storage.close()
    # Essentially the whole population had a persisted binding (a
    # straggler that never issued a request may legitimately miss).
    assert len(bindings) >= 125
    assert len(profiles) > 0
    assert belief is not None
    killed_at = belief["shuffles_completed"]
    assert killed_at >= 2

    # The successor must resume, not restart: same backend, same
    # population, and the finished run credits the predecessor's
    # rounds while still quarantining within the overall budget.
    service_config = ServiceConfig(
        n_replicas=10, seed=7, telemetry_port=None,
        trust_enabled=True,
        state_backend=f"sqlite:{db_path}",
    )
    load_config = LoadConfig(n_benign=120, n_bots=12, seed=11)
    report = run_scenario_sync(
        service_config, load_config, duration=90.0, target_fraction=0.95
    )

    assert report.restored
    assert report.snapshot["restored"] is True
    assert report.snapshot["restored_shuffles"] >= killed_at
    assert report.shuffles_completed >= killed_at
    assert report.quarantined, report.snapshot
    assert report.shuffles_completed <= report.budget
    assert report.benign_clean_fraction >= 0.95
    assert report.trust is not None
    assert report.trust["population"] >= 12
