"""Shuffle budgets: oracle prediction with slack, floors, impossibility."""

from __future__ import annotations

import math

import pytest

from repro.analysis.convergence import predict_shuffles
from repro.service import MIN_BUDGET, SLACK_FACTOR, shuffle_budget


def test_acceptance_scenario_budget():
    # The paper-scale scenario: 200 benign + 20 bots on 10 replicas.
    # The oracle predicts 14 rounds; 3x slack gives the live loop 42.
    assert predict_shuffles(180, 20, 10, 0.95) == 14
    assert shuffle_budget(200, 20, 10) == 42


@pytest.mark.parametrize(
    "benign,bots,replicas",
    [(200, 20, 10), (50, 5, 3), (100, 10, 5), (400, 40, 10)],
)
def test_budget_is_slacked_oracle(benign, bots, replicas):
    oracle = predict_shuffles(benign, bots, replicas, 0.95)
    budget = shuffle_budget(benign, bots, replicas)
    assert budget == max(MIN_BUDGET, math.ceil(oracle * SLACK_FACTOR))


def test_floor_protects_tiny_scenarios():
    # The oracle predicts 2 rounds for 10/1/4; with tiny slack the raw
    # cap would be 1 — the floor keeps room for one bad estimate.
    assert predict_shuffles(10, 1, 4, 0.95) == 2
    assert shuffle_budget(10, 1, 4, slack=0.1) == MIN_BUDGET


def test_unwinnable_scenario_returns_none():
    # One replica cannot separate anyone from anything (Theorem 1
    # saturation): there is no budget that makes this winnable.
    assert shuffle_budget(50, 5, 1) is None


def test_custom_slack_scales_the_cap():
    lax = shuffle_budget(200, 20, 10, slack=6.0)
    assert lax == 84
