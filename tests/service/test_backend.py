"""Replica backend: protocol logic and live socket behaviour."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import ReplicaBackend


def _backend(config, clock) -> ReplicaBackend:
    return ReplicaBackend(config, "r-1", clock=clock)


class TestRespond:
    """The pure request->reply logic, no sockets involved."""

    def test_malformed_request(self, config, clock):
        backend = _backend(config, clock)
        assert backend._respond(["GARBAGE"]) == "ERR malformed"
        assert backend._respond([]) == "ERR malformed"

    def test_unknown_client_denied(self, config, clock):
        backend = _backend(config, clock)
        assert backend._respond(["REQ", "u-1", "7"]) == "DENY 7"
        assert backend.stats.denied == 1

    def test_deny_does_not_feed_the_attack_signal(self, config, clock):
        # A non-whitelisted flood must not be able to saturate a replica:
        # detection counts only whitelisted traffic against the bucket.
        backend = _backend(config, clock)
        for seq in range(100):
            backend._respond(["REQ", "bot-X", str(seq)])
        assert backend.monitor.counts() == (0, 0)
        assert not backend.attacked()

    def test_whitelisted_client_served_then_throttled(self, config, clock):
        backend = _backend(config, clock)
        backend.admit("u-1")
        replies = [
            backend._respond(["REQ", "u-1", str(seq)]) for seq in range(6)
        ]
        # bucket_burst=5 in the test config: five OKs, then throttled.
        assert replies[:5] == [f"OK {i} r-1" for i in range(5)]
        assert replies[5] == "THROTTLED 5"
        assert backend.stats.served == 5
        assert backend.stats.throttled == 1

    def test_sustained_throttling_raises_attacked(self, config, clock):
        backend = _backend(config, clock)
        backend.admit("bot-0")
        for seq in range(20):
            backend._respond(["REQ", "bot-0", str(seq)])
        assert backend.attacked()

    def test_quiescing_moves_everyone(self, config, clock):
        backend = _backend(config, clock)
        backend.admit("u-1")
        backend.quiesce()
        assert backend._respond(["REQ", "u-1", "1"]) == "MOVED 1"
        assert backend.stats.moved == 1

    def test_evict_revokes_admission(self, config, clock):
        backend = _backend(config, clock)
        backend.admit("u-1")
        backend.evict("u-1")
        assert backend._respond(["REQ", "u-1", "1"]) == "DENY 1"
        assert backend.n_clients == 0


class TestLiveSocket:
    def test_serves_over_tcp_and_goes_dark_on_stop(self, config):
        async def scenario():
            backend = ReplicaBackend(config, "r-9")
            await backend.start()
            host, port = backend.address
            assert port != 0  # OS-assigned ephemeral port

            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"REQ u-1 1\n")
            await writer.drain()
            denied = await reader.readline()
            backend.admit("u-1")
            writer.write(b"REQ u-1 2\n")
            await writer.drain()
            served = await reader.readline()
            writer.close()

            await backend.stop()
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)
            return denied, served

        denied, served = asyncio.run(scenario())
        assert denied == b"DENY 1\n"
        assert served == b"OK 2 r-9\n"

    def test_stop_closes_established_connections(self, config):
        async def scenario():
            backend = ReplicaBackend(config, "r-9")
            await backend.start()
            reader, _writer = await asyncio.open_connection(*backend.address)
            await backend.stop()
            return await reader.readline()

        assert asyncio.run(scenario()) == b""  # EOF, not a hang

    def test_double_start_rejected(self, config):
        async def scenario():
            backend = ReplicaBackend(config, "r-9")
            await backend.start()
            try:
                with pytest.raises(RuntimeError):
                    await backend.start()
            finally:
                await backend.stop()

        asyncio.run(scenario())

    def test_address_requires_start(self, config, clock):
        backend = _backend(config, clock)
        with pytest.raises(RuntimeError):
            backend.address
