"""Scenario harness and report/record datatypes."""

from __future__ import annotations

import asyncio
import json

from repro.service import (
    DEFAULT_SEED,
    BackendStats,
    LiveShuffleRecord,
    ScenarioReport,
    ServiceConfig,
    LoadConfig,
    run_scenario,
)


def test_default_seed_is_the_service_default():
    assert ServiceConfig().seed == DEFAULT_SEED


def test_backend_stats_serialize():
    stats = BackendStats()
    stats.served = 3
    stats.throttled = 1
    assert stats.to_dict() == {
        "served": 3, "throttled": 1, "denied": 0, "moved": 0,
    }


def test_shuffle_record_round_trips_through_json():
    record = LiveShuffleRecord(
        started_at=1.0, completed_at=1.2,
        attacked_replicas=("r-1",), n_clients=10, n_attacked=1,
        estimated_bots=2, estimator="mle", group_sizes=(4, 3, 3),
        new_replicas=("r-4", "r-5", "r-6"), algorithm="cached",
    )
    row = json.loads(json.dumps(record.to_dict()))
    assert row["group_sizes"] == [4, 3, 3]
    assert row["estimator"] == "mle"
    assert row["new_replicas"] == ["r-4", "r-5", "r-6"]


def test_scenario_report_to_dict_is_json_ready():
    report = ScenarioReport(
        quarantined=True, budget_exhausted=False, shuffles_completed=3,
        budget=12, benign_clean_fraction=0.975, bot_replicas=("r-9",),
        duration=8.5, bot_served=10, bot_throttled=400,
    )
    row = json.loads(json.dumps(report.to_dict()))
    assert row["quarantined"] is True
    assert row["bot_replicas"] == ["r-9"]
    assert row["windows"] == []


def test_run_scenario_small_insider_attack():
    """One bot among a dozen clients: the full loop, in-process."""
    service_config = ServiceConfig(
        n_replicas=3,
        telemetry_port=0,  # exercise the telemetry endpoint wiring too
        detection_interval=0.1,
    )
    load_config = LoadConfig(
        n_benign=12, n_bots=1, benign_rps=4.0, bot_start_delay=0.5,
        window=0.25, seed=5,
    )

    report = asyncio.run(run_scenario(
        service_config, load_config, duration=30.0, settle=1.0,
    ))

    assert report.quarantined, report.snapshot
    assert report.benign_clean_fraction == 1.0
    assert report.shuffles_completed <= report.budget
    assert report.bot_replicas  # the bot is pinned somewhere
    assert set(report.bot_replicas) <= set(
        report.snapshot["quarantine_replicas"]
    )
    assert report.windows
