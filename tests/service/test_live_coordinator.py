"""The live coordinator: assignment, estimation chain, shuffle paths."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.greedy import greedy_plan
from repro.service import ServiceConfig, ServiceCoordinator, theorem1_fallback
from repro.service.coordinator import _LastPlan


def _saturate(backend, client_id: str = "bot-0", requests: int = 20) -> None:
    """Drive a backend's throttle ratio over the detection threshold."""
    backend.admit(client_id)
    for seq in range(requests):
        backend._respond(["REQ", client_id, str(seq)])
    assert backend.attacked()


class TestTheorem1Fallback:
    def test_matches_saturation_threshold_at_paper_scale(self):
        # ceil(log(1/10) / log(9/10)) — the Theorem 1 bound for P=10.
        assert theorem1_fallback(10) == 22

    def test_degenerate_pool_sizes(self):
        assert theorem1_fallback(1) == 1
        assert theorem1_fallback(2) == 1


class TestAssignment:
    def test_least_loaded_then_sticky(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.pool.start()
            try:
                first = [
                    coordinator.assign(f"u-{i}").replica_id for i in range(6)
                ]
                again = coordinator.assign("u-0").replica_id
                return first, again
            finally:
                await coordinator.pool.stop()

        first, again = asyncio.run(scenario())
        # Six clients over three replicas: perfectly balanced.
        assert sorted(first.count(r) for r in set(first)) == [2, 2, 2]
        assert again == first[0]  # sticky on re-query

    def test_reassigns_when_home_replica_is_gone(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.pool.start()
            try:
                home = coordinator.assign("u-0").replica_id
                await coordinator.pool.retire(home)
                return home, coordinator.assign("u-0").replica_id
            finally:
                await coordinator.pool.stop()

        home, rehomed = asyncio.run(scenario())
        assert rehomed != home


class TestControlChannel:
    def test_join_where_snapshot_over_tcp(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.start()
            try:
                reader, writer = await asyncio.open_connection(
                    *coordinator.control_address
                )
                writer.write(b"JOIN u-1\nWHERE u-1\nSNAPSHOT\nNOPE\n")
                await writer.drain()
                lines = [await reader.readline() for _ in range(4)]
                writer.close()
                return lines
            finally:
                await coordinator.stop()

        join, where, snapshot, bad = asyncio.run(scenario())
        parts = join.decode().split()
        assert parts[0] == "ASSIGN" and parts[1] == "u-1"
        assert where == join  # sticky: same address on re-query
        state = json.loads(snapshot)
        assert state["n_active"] == 3
        assert state["shuffles_completed"] == 0
        assert bad == b"ERR malformed\n"


class TestEstimation:
    def test_round_one_uses_occupancy_mle(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.pool.start()
            try:
                return coordinator._estimate(("r-1",), n_clients=30)
            finally:
                await coordinator.pool.stop()

        believed, estimator = asyncio.run(scenario())
        assert estimator == "mle"
        assert 1 <= believed <= 30

    def test_degenerate_first_observation_uses_theorem1(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.pool.start()
            try:
                return coordinator._estimate(
                    ("r-1", "r-2", "r-3"), n_clients=30
                )
            finally:
                await coordinator.pool.stop()

        believed, estimator = asyncio.run(scenario())
        # X = P says nothing beyond "M exceeds the saturation threshold".
        assert believed == theorem1_fallback(3)
        assert estimator == "mle"

    def test_belief_is_sticky_across_undercounts(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.pool.start()
            try:
                coordinator.believed_bots = 5
                return coordinator._estimate(("r-1",), n_clients=30)
            finally:
                await coordinator.pool.stop()

        believed, _ = asyncio.run(scenario())
        # A sweep that undercounts (bots mid-reconnect are invisible)
        # must not lower the believed count: M is constant in the model.
        assert believed == 5

    def test_attacked_subset_of_last_plan_uses_weighted(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.pool.start()
            try:
                plan = greedy_plan(20, 4, 3)
                coordinator._last_plan = _LastPlan(
                    plan=plan, replica_ids=("r-1", "r-2", "r-3")
                )
                return coordinator._estimate(("r-1", "r-2"), n_clients=20)
            finally:
                await coordinator.pool.stop()

        believed, estimator = asyncio.run(scenario())
        assert estimator == "weighted"
        assert believed >= 1

    def test_belief_clamped_to_population(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.pool.start()
            try:
                coordinator.believed_bots = 50
                return coordinator._estimate(("r-1",), n_clients=4)
            finally:
                await coordinator.pool.stop()

        believed, _ = asyncio.run(scenario())
        assert believed == 4  # cannot believe more bots than clients


class TestShuffle:
    def _boot(self, config) -> ServiceCoordinator:
        # Long detection interval: the loop stays out of the way and the
        # tests drive _shuffle directly.
        quiet = ServiceConfig(
            n_replicas=config.n_replicas,
            telemetry_port=None,
            bucket_rate=config.bucket_rate,
            bucket_burst=config.bucket_burst,
            saturation_window=config.saturation_window,
            overload_ratio=config.overload_ratio,
            min_window_events=config.min_window_events,
            detection_interval=60.0,
            plan_client_grid=config.plan_client_grid,
            plan_bot_grid=config.plan_bot_grid,
            seed=config.seed,
        )
        return ServiceCoordinator(quiet)

    def test_shuffle_rebinds_every_client_and_retires_the_target(
        self, config
    ):
        async def scenario():
            coordinator = self._boot(config)
            await coordinator.start()
            try:
                for i in range(8):
                    coordinator.assign(f"u-{i}")
                victim_id = coordinator.assignments["u-0"]
                victim = coordinator.pool.get(victim_id)
                moved = sorted(victim.whitelist)
                _saturate(victim)
                await coordinator._shuffle([victim])
                record = coordinator.shuffles[0]
                return {
                    "victim": victim_id,
                    "moved": moved,
                    "record": record,
                    "victim_active": victim.is_active,
                    "assignments": dict(coordinator.assignments),
                    "n_active": coordinator.pool.n_active,
                }
            finally:
                await coordinator.stop()

        out = asyncio.run(scenario())
        record = out["record"]
        # "bot-0" rode along in the victim's whitelist.
        assert record.n_clients == len(out["moved"]) + 1
        assert sum(record.group_sizes) == record.n_clients
        assert record.attacked_replicas == (out["victim"],)
        assert not out["victim_active"]
        for client in out["moved"]:
            assert out["assignments"][client] in record.new_replicas
        # One retired, len(nonempty sizes) spawned: pool grows elastically.
        assert out["n_active"] == 3 - 1 + len(record.new_replicas)

    def test_endgame_dispersion_goes_singleton(self, config):
        async def scenario():
            coordinator = self._boot(config)
            await coordinator.start()
            try:
                victim = coordinator.pool.get("r-1")
                for i in range(4):
                    victim.admit(f"u-{i}")
                    coordinator.assignments[f"u-{i}"] = "r-1"
                _saturate(victim, client_id="u-0")
                coordinator.believed_bots = 2
                await coordinator._shuffle([victim])
                return coordinator.shuffles[0]
            finally:
                await coordinator.stop()

        record = asyncio.run(scenario())
        # 4 clients, 2 believed bots: one singleton round separates them
        # exactly instead of grinding out fractional E[S].
        assert record.group_sizes == (1, 1, 1, 1)
        assert record.algorithm == "greedy"  # width != P bypasses cache

    def test_hopeless_plan_quarantines_instead_of_shuffling(self, config):
        async def scenario():
            coordinator = self._boot(config)
            await coordinator.start()
            try:
                victim = coordinator.pool.get("r-1")
                for i in range(4):
                    victim.admit(f"u-{i}")
                    coordinator.assignments[f"u-{i}"] = "r-1"
                _saturate(victim, client_id="u-0")
                coordinator.believed_bots = 4  # everyone believed a bot
                await coordinator._shuffle([victim])
                return (
                    coordinator.quarantine_replicas,
                    coordinator.shuffles_completed,
                    victim.is_active,
                )
            finally:
                await coordinator.stop()

        quarantined, shuffles, still_active = asyncio.run(scenario())
        # E[S] = 0: no shuffle can save anyone, leave the bots flooding.
        assert quarantined == {"r-1"}
        assert shuffles == 0
        assert still_active  # the quarantine replica keeps absorbing

    def test_empty_attacked_replica_is_substituted(self, config):
        async def scenario():
            coordinator = self._boot(config)
            await coordinator.start()
            try:
                victim = coordinator.pool.get("r-2")
                _saturate(victim)
                victim.evict("bot-0")  # flooded yet hosts nobody
                await coordinator._shuffle([victim])
                return coordinator.shuffles[0], coordinator.pool.n_active
            finally:
                await coordinator.stop()

        record, n_active = asyncio.run(scenario())
        assert record.n_clients == 0
        assert record.group_sizes == ()
        assert len(record.new_replicas) == 1
        assert n_active == 3  # straight one-for-one substitution


class TestDetectLoopCrashSurface:
    """A detect-loop death must be observable, not silently swallowed.

    The loop runs as a fire-and-forget task; before the done-callback
    was wired, an exception in a sweep vanished until process exit and
    the coordinator kept claiming to run.
    """

    def test_sweep_exception_is_recorded_and_stops_the_service(
        self, config
    ):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.start()
            try:
                def boom():
                    raise RuntimeError("sweep exploded")

                coordinator.pool.attacked = boom  # type: ignore[assignment]
                for _ in range(200):
                    await asyncio.sleep(config.detection_interval)
                    if coordinator.detect_error is not None:
                        break
                return coordinator.detect_error, coordinator._running
            finally:
                await coordinator.stop()

        error, running = asyncio.run(scenario())
        assert isinstance(error, RuntimeError)
        assert str(error) == "sweep exploded"
        assert not running  # the coordinator no longer claims liveness

    def test_clean_stop_records_no_error(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.start()
            await asyncio.sleep(config.detection_interval * 2)
            await coordinator.stop()
            return coordinator.detect_error

        assert asyncio.run(scenario()) is None


class TestQuarantineConvergence:
    def test_requires_calm_streak(self, config):
        coordinator = ServiceCoordinator(config)
        assert not coordinator.quarantined  # nothing quarantined yet
        coordinator.quarantine_replicas.add("r-1")
        coordinator._calm_sweeps = coordinator.CALM_SWEEPS - 1
        assert not coordinator.quarantined  # streak not long enough
        coordinator._calm_sweeps = coordinator.CALM_SWEEPS
        assert coordinator.quarantined

    def test_detect_loop_quarantines_a_lone_insider(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config)
            await coordinator.start()
            try:
                victim = coordinator.assign("bot-0")
                _saturate(victim, requests=40)
                for _ in range(200):
                    await asyncio.sleep(config.detection_interval)
                    if coordinator.quarantined:
                        break
                return (
                    coordinator.quarantined,
                    coordinator.quarantine_replicas,
                    coordinator.snapshot(),
                )
            finally:
                await coordinator.stop()

        quarantined, replicas, snapshot = asyncio.run(scenario())
        assert quarantined
        assert len(replicas) >= 1
        assert snapshot["quarantined"] is True

    def test_budget_exhaustion_flag(self, config):
        async def scenario():
            coordinator = ServiceCoordinator(config, max_shuffles=0)
            await coordinator.start()
            try:
                victim = coordinator.assign("bot-0")
                _saturate(victim, requests=40)
                for _ in range(100):
                    await asyncio.sleep(config.detection_interval)
                    if coordinator.budget_exhausted:
                        break
                return (
                    coordinator.budget_exhausted,
                    coordinator.shuffles_completed,
                )
            finally:
                await coordinator.stop()

        exhausted, shuffles = asyncio.run(scenario())
        assert exhausted
        assert shuffles == 0
