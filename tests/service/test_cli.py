"""CLI behaviour of ``repro-serve``: parsing, exit codes, outputs."""

from __future__ import annotations

import json

import pytest

from repro.service.cli import build_parser, main


class TestParser:
    def test_scenario_defaults(self):
        options = build_parser().parse_args(["scenario"])
        assert options.command == "scenario"
        assert (options.clients, options.bots, options.replicas) == (
            200, 20, 10,
        )
        assert options.duration == 60.0
        assert options.target == 0.95

    def test_budget_accepts_population(self):
        options = build_parser().parse_args(
            ["budget", "--clients", "50", "--bots", "5", "--replicas", "4"]
        )
        assert (options.clients, options.bots, options.replicas) == (
            50, 5, 4,
        )

    def test_missing_command_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_unknown_command_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["defend-harder"])
        assert excinfo.value.code == 2


class TestBudgetCommand:
    def test_prints_acceptance_budget(self, capsys):
        assert main([
            "budget", "--clients", "200", "--bots", "20",
            "--replicas", "10",
        ]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_unwinnable_scenario_fails_loudly(self, capsys):
        assert main([
            "budget", "--clients", "50", "--bots", "5", "--replicas", "1",
        ]) == 1
        assert "provision more replicas" in capsys.readouterr().out


class TestScenarioCommand:
    def test_benign_only_run_reports_and_exports(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        windows_path = tmp_path / "windows.json"
        code = main([
            "scenario", "--clients", "6", "--bots", "0",
            "--replicas", "2", "--duration", "2",
            "--json", str(report_path), "--windows", str(windows_path),
        ])
        out = capsys.readouterr().out
        # Nothing attacks, so the run times out without a quarantine —
        # by the CLI contract that is a failed scenario.
        assert code == 1
        assert "quarantined: False" in out
        report = json.loads(report_path.read_text())
        assert report["quarantined"] is False
        assert report["shuffles_completed"] == 0
        assert report["snapshot"]["n_active"] == 2
        windows = json.loads(windows_path.read_text())
        assert windows and "success_ratio" in windows[0]
