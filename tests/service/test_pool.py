"""Replica pool: spawn-order determinism and fresh-port substitution."""

from __future__ import annotations

import asyncio

from repro.service import ReplicaPool


def test_start_boots_configured_fleet(config):
    async def scenario():
        pool = ReplicaPool(config)
        booted = await pool.start()
        try:
            return (
                [b.replica_id for b in booted],
                [b.replica_id for b in pool.active()],
                len({b.port for b in booted}),
            )
        finally:
            await pool.stop()

    ids, active, distinct_ports = asyncio.run(scenario())
    assert ids == ["r-1", "r-2", "r-3"]
    assert active == ids  # spawn order, deterministic
    assert distinct_ports == 3  # every replica at its own port


def test_replica_ids_never_reused(config):
    async def scenario():
        pool = ReplicaPool(config)
        await pool.start()
        try:
            await pool.retire("r-2")
            replacement = await pool.spawn()
            return replacement.replica_id, sorted(pool.retired)
        finally:
            await pool.stop()

    new_id, retired = asyncio.run(scenario())
    assert new_id == "r-4"  # monotonic counter, r-2 is gone for good
    assert retired == ["r-2"]


def test_substitute_moves_the_port(config):
    async def scenario():
        pool = ReplicaPool(config)
        await pool.start()
        try:
            old = pool.get("r-1")
            old_port = old.port
            replacements = await pool.substitute(["r-1"])
            return (
                old_port,
                replacements[0].port,
                old.is_active,
                pool.n_active,
            )
        finally:
            await pool.stop()

    old_port, new_port, old_active, n_active = asyncio.run(scenario())
    assert new_port != old_port  # the moving-target dimension
    assert not old_active
    assert n_active == 3  # pool size is held at P


def test_retire_unknown_id_is_a_noop(config):
    async def scenario():
        pool = ReplicaPool(config)
        await pool.start()
        try:
            await pool.retire("r-99")
            return pool.n_active
        finally:
            await pool.stop()

    assert asyncio.run(scenario()) == 3


def test_active_index_stays_coherent_under_churn(config):
    """``active()`` is served from an O(1) index, not a fleet scan; the
    index must track spawn/retire churn exactly (order included)."""

    async def scenario():
        pool = ReplicaPool(config)
        await pool.start()
        try:
            await pool.retire("r-2")
            await pool.spawn()
            await pool.retire("r-1")
            expected = [
                b.replica_id
                for b in pool.backends.values()
                if b.is_active
            ]
            return [b.replica_id for b in pool.active()], expected
        finally:
            await pool.stop()

    indexed, scanned = asyncio.run(scenario())
    assert indexed == scanned == ["r-3", "r-4"]


def test_concurrent_retires_leave_no_ghosts(config):
    """Racing retires of the same replica must be idempotent: the lock
    serialises membership mutation so the counter moves once."""

    async def scenario():
        pool = ReplicaPool(config)
        await pool.start()
        try:
            await asyncio.gather(*(pool.retire("r-1") for _ in range(4)))
            return pool.n_active, sorted(pool.retired)
        finally:
            await pool.stop()

    n_active, retired = asyncio.run(scenario())
    assert n_active == 2
    assert retired == ["r-1"]


def test_attacked_reports_saturated_backends_only(config):
    async def scenario():
        pool = ReplicaPool(config)
        await pool.start()
        try:
            victim = pool.get("r-2")
            victim.admit("bot-0")
            for seq in range(20):
                victim._respond(["REQ", "bot-0", str(seq)])
            return [b.replica_id for b in pool.attacked()]
        finally:
            await pool.stop()

    assert asyncio.run(scenario()) == ["r-2"]


def test_snapshot_covers_the_fleet(config):
    async def scenario():
        pool = ReplicaPool(config)
        await pool.start()
        try:
            return pool.snapshot()
        finally:
            await pool.stop()

    rows = asyncio.run(scenario())
    assert [row["replica_id"] for row in rows] == ["r-1", "r-2", "r-3"]
    assert all(row["active"] for row in rows)
