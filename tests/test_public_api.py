"""API-surface contract tests: every advertised name exists and imports.

A release's ``__all__`` lists are promises; these tests keep them honest
across refactors.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sim",
    "repro.cloudsim",
    "repro.analysis",
    "repro.detect",
    "repro.obs",
    "repro.runtime",
    "repro.service",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    module = importlib.import_module(package_name)
    assert hasattr(module, "__all__"), f"{package_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), (
            f"{package_name}.__all__ lists {name!r} but it is missing"
        )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_unique(package_name):
    module = importlib.import_module(package_name)
    names = list(module.__all__)
    assert len(names) == len(set(names)), f"duplicates in {package_name}"


def test_every_submodule_imports():
    """No module in the tree is broken (even ones __init__ skips)."""
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        importlib.import_module(info.name)


def test_version_present():
    assert repro.__version__


def test_quickstart_snippet_from_readme():
    """The README's quickstart code must actually run."""
    from repro import ShuffleEngine, dp_fast_plan, greedy_plan

    plan = greedy_plan(n_clients=1000, n_bots=200, n_replicas=100)
    assert "greedy" in plan.describe()
    assert dp_fast_plan(1000, 200, 100).expected_saved > 0

    engine = ShuffleEngine(
        n_replicas=100, planner="greedy", estimator="moment"
    )
    state = engine.run(benign=1_000, bots=2_000, target_fraction=0.5)
    assert state.benign_saved > 0


def test_cloudsim_snippet_from_readme():
    from repro.cloudsim import CloudDefenseSystem

    system = CloudDefenseSystem(seed=1)
    system.add_benign_clients(20)
    system.add_persistent_bots(2)
    report = system.run(duration=30.0)
    assert "shuffles=" in report.describe()
