"""Tests for the simulation-level figure drivers (Figures 7-10, 12)."""

from __future__ import annotations

from repro.experiments.fig7 import render_fig7, run_fig7
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.experiments.fig9 import render_fig9, run_fig9
from repro.experiments.fig10 import render_fig10, run_fig10
from repro.experiments.fig12 import render_fig12, run_fig12
from repro.experiments.headline import render_headline, run_headline


class TestFig7:
    def test_accurate_below_saturation_degenerate_above(self):
        rows = run_fig7(
            n_clients=2000,
            n_replicas=50,
            bot_counts=(10, 30, 60, 400),
            repeats=15,
            seed=1,
        )
        informative = [r for r in rows if r.real_bots <= 60]
        for row in informative:
            assert abs(row.relative_error) < 0.35
        saturated = rows[-1]
        # 400 bots over 50 replicas: everything attacked, estimate blows up.
        assert saturated.attacked_fraction.mean > 0.95
        assert saturated.estimate.mean > 2 * saturated.real_bots

    def test_attacked_fraction_monotone(self):
        rows = run_fig7(
            n_clients=2000, n_replicas=50,
            bot_counts=(5, 25, 100), repeats=10, seed=2,
        )
        fractions = [r.attacked_fraction.mean for r in rows]
        assert fractions == sorted(fractions)

    def test_render(self):
        rows = run_fig7(n_clients=500, n_replicas=20,
                        bot_counts=(5, 10), repeats=5)
        assert "Figure 7" in render_fig7(rows)


SMALL_BOTS = (5_000, 20_000)


class TestFig8:
    def test_rows_and_claims(self):
        rows = run_fig8(
            bot_counts=SMALL_BOTS,
            benign_counts=(10_000,),
            targets=(0.8, 0.95),
            repetitions=2,
            seed=3,
        )
        assert len(rows) == 4
        by_key = {(r.bots, r.target): r.shuffles.mean for r in rows}
        # More bots -> more shuffles; higher target -> more shuffles.
        assert by_key[(20_000, 0.8)] >= by_key[(5_000, 0.8)]
        assert by_key[(5_000, 0.95)] > by_key[(5_000, 0.8)]

    def test_render(self):
        rows = run_fig8(bot_counts=(5_000,), benign_counts=(10_000,),
                        targets=(0.8,), repetitions=2, seed=4)
        assert "Figure 8" in render_fig8(rows)


class TestFig9:
    def test_more_replicas_fewer_shuffles(self):
        rows = run_fig9(
            replica_counts=(900, 2000),
            benign_counts=(10_000,),
            targets=(0.8,),
            repetitions=2,
            seed=5,
        )
        assert rows[0].shuffles.mean > rows[1].shuffles.mean

    def test_render(self):
        rows = run_fig9(replica_counts=(1000,), benign_counts=(10_000,),
                        targets=(0.8,), repetitions=2, seed=6)
        assert "Figure 9" in render_fig9(rows)


class TestFig10:
    def test_diminishing_returns(self):
        curves = run_fig10(
            fractions=(0.2, 0.5, 0.8, 0.95), repetitions=2, seed=7
        )
        assert len(curves) == 2
        for curve in curves:
            means = [s.mean for s in curve.shuffles]
            assert means == sorted(means)
            marginal = curve.marginal_costs()
            # The last checkpoint step costs more than the first.
            assert marginal[-1] > marginal[0]

    def test_render(self):
        curves = run_fig10(fractions=(0.5, 0.8), repetitions=2, seed=8)
        assert "Figure 10" in render_fig10(curves)


class TestFig12:
    def test_shape_and_calibration(self):
        rows = run_fig12(client_counts=(10, 60), repetitions=10, seed=9)
        assert rows[0].total_time.mean < rows[1].total_time.mean
        assert rows[1].total_time.mean < 5.0
        assert rows[1].per_client.mean < rows[1].total_time.mean

    def test_render(self):
        rows = run_fig12(client_counts=(10,), repetitions=3, seed=10)
        assert "Figure 12" in render_fig12(rows)


class TestHeadline:
    def test_within_2x_of_paper(self):
        result = run_headline(repetitions=3, seed=11)
        assert result.within_2x_of_paper
        assert result.result.saved_fraction.mean >= 0.8

    def test_render(self):
        result = run_headline(repetitions=2, seed=12)
        text = render_headline(result)
        assert "paper:" in text
        assert "measured:" in text
