"""Tests for the experiments CLI."""

from __future__ import annotations

import pytest

from repro.experiments.runner import EXPERIMENTS, main


class TestRegistry:
    def test_every_figure_has_a_driver(self):
        expected = {
            "fig3", "fig4", "fig5", "fig6", "fig7",
            "fig8", "fig9", "fig10", "fig12", "headline", "ablations",
        }
        assert set(EXPERIMENTS) == expected


class TestCli:
    def test_fig4_runs(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "finished in" in out

    def test_quick_flag(self, capsys):
        assert main(["fig12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out

    def test_chart_flag(self, capsys):
        assert main(["fig12", "--quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "all clients" in out  # legend of the ASCII chart
        assert "|" in out

    def test_ablations_run(self, capsys):
        assert main(["ablations", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Ablation 1" in out
        assert "Ablation 4" in out
        assert "expansion" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_jobs_flag_gives_identical_output(self, capsys):
        """--jobs N must not change a single digit of the tables."""
        assert main(["ablations", "--quick"]) == 0
        serial = capsys.readouterr().out
        assert main(["ablations", "--quick", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        def strip_timing(text: str) -> str:
            return "\n".join(
                line
                for line in text.splitlines()
                if "finished in" not in line
            )

        assert strip_timing(serial) == strip_timing(parallel)

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["fig4", "--jobs", "0"])
