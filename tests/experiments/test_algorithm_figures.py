"""Tests for the algorithm-level figure drivers (Figures 3-6)."""

from __future__ import annotations

from repro.experiments.fig3 import render_fig3, run_fig3
from repro.experiments.fig4 import render_fig4, run_fig4
from repro.experiments.fig5 import (
    fit_growth_exponent,
    render_fig5,
    run_fig5,
)
from repro.experiments.fig6 import render_fig6, run_fig6


class TestFig3:
    def test_paper_claim_curves_overlap(self):
        """Greedy matches the optimal DP within 1 point everywhere."""
        rows = run_fig3()
        assert len(rows) == 4 * 6
        for row in rows:
            assert row.gap <= 0.01
            assert row.greedy_saved <= row.optimal_saved + 1e-9

    def test_more_replicas_save_more(self):
        rows = run_fig3(bot_counts=(200,), replica_counts=(50, 100, 200))
        values = [row.optimal_saved for row in rows]
        assert values == sorted(values)

    def test_more_bots_save_fewer(self):
        rows = run_fig3(bot_counts=(50, 200, 500), replica_counts=(100,))
        values = [row.optimal_saved for row in rows]
        assert values == sorted(values, reverse=True)

    def test_render(self):
        text = render_fig3(run_fig3(bot_counts=(50,), replica_counts=(50,)))
        assert "Figure 3" in text
        assert "worst greedy-vs-optimal gap" in text


class TestFig4:
    def test_paper_claim_even_collapses_beyond_replica_count(self):
        rows = run_fig4()
        for row in rows:
            if row.n_bots >= 3 * row.n_replicas:
                # Even saves almost nothing; greedy is far ahead.
                assert row.even_fraction < 0.05
                assert row.greedy_fraction > 2 * row.even_fraction
            assert row.greedy_saved >= row.even_saved - 1e-9

    def test_even_competitive_below_replica_count(self):
        rows = run_fig4(bot_counts=(50,), replica_counts=(100, 200))
        for row in rows:
            assert row.even_fraction > 0.8 * row.greedy_fraction

    def test_render(self):
        text = render_fig4(run_fig4(bot_counts=(50,), replica_counts=(100,)))
        assert "Figure 4" in text


class TestFig5:
    def test_runtime_grows_polynomially(self):
        # N must be large enough that the vectorized per-row broadcast
        # dominates fixed dispatch overhead, or the fitted exponent
        # under-reads the asymptote.
        rows = run_fig5(client_counts=(50, 100, 150), replica_counts=(3,),
                        bot_fraction=0.2)
        times = [row.seconds for row in rows]
        assert times == sorted(times)
        exponent = fit_growth_exponent(rows)
        assert exponent > 2.0  # Algorithm 1 is at least cubic-ish in N

    def test_more_replicas_cost_more(self):
        rows = run_fig5(client_counts=(30,), replica_counts=(2, 6))
        assert rows[0].seconds < rows[1].seconds

    def test_render_mentions_extrapolation(self):
        rows = run_fig5(client_counts=(20, 30, 40), replica_counts=(3,))
        text = render_fig5(rows)
        assert "extrapolated runtime at N=1000" in text


class TestFig6:
    def test_greedy_runs_in_milliseconds(self):
        rows = run_fig6(repeats=3)
        assert len(rows) == 4 * 6
        for row in rows:
            assert row.milliseconds < 50.0  # paper: a few ms

    def test_render(self):
        text = render_fig6(run_fig6(bot_counts=(100,),
                                    replica_counts=(50,), repeats=2))
        assert "Figure 6" in text


class TestRuntimeSeparation:
    def test_dp_vs_greedy_orders_of_magnitude(self):
        """The message of Figures 5 vs 6: the DP is astronomically slower."""
        import time

        from repro.core.dp import optimal_assign
        from repro.core.greedy import greedy_sizes

        start = time.perf_counter()
        optimal_assign(60, 12, 4)
        dp_time = time.perf_counter() - start

        start = time.perf_counter()
        greedy_sizes(60, 12, 4)
        greedy_time = time.perf_counter() - start

        assert dp_time > 20 * greedy_time
