"""Tests for the ASCII table renderer."""

from __future__ import annotations

from repro.experiments.tables import format_value, render_table


class TestFormatValue:
    def test_floats(self):
        assert format_value(3.14159) == "3.142"
        assert format_value(42.42) == "42.4"
        assert format_value(1234.5) == "1,234"

    def test_nan(self):
        assert format_value(float("nan")) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_str_passthrough(self):
        assert format_value("abc") == "abc"
        assert format_value(7) == "7"


class TestRenderTable:
    def test_alignment_and_content(self):
        rows = [
            {"name": "alpha", "value": 1.0},
            {"name": "b", "value": 123.456},
        ]
        text = render_table(rows, title="My table")
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1]
        assert "value" in lines[1]
        assert "alpha" in lines[3]
        assert "123.5" in lines[4]

    def test_column_order_respected(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = render_table(rows, columns=["a", "b"])
        assert "3" in text

    def test_empty(self):
        assert "(no rows)" in render_table([], title="x")
