"""Tests for the JSON export of experiment results."""

from __future__ import annotations

import json

import numpy as np
from repro.experiments.export import dump_json, to_jsonable
from repro.experiments.runner import main
from repro.sim.stats import SampleSummary


class TestToJsonable:
    def test_sample_summary(self):
        summary = SampleSummary(
            mean=1.5, half_width=0.2, n=5, confidence=0.95, std=0.1
        )
        assert to_jsonable(summary) == {
            "mean": 1.5, "half_width": 0.2, "n": 5, "confidence": 0.95
        }

    def test_numpy_scalars_and_arrays(self):
        assert to_jsonable(np.int64(7)) == 7
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_nan_becomes_null(self):
        assert to_jsonable(float("nan")) is None

    def test_dataclass_with_skipped_fields(self):
        from dataclasses import dataclass

        @dataclass
        class Thing:
            x: int
            result: str  # skipped by policy

        assert to_jsonable(Thing(x=1, result="big")) == {"x": 1}

    def test_nested_structures(self):
        data = {"a": [SampleSummary(1.0, 0.0, 1, 0.95, 0.0)], "b": (1, 2)}
        out = to_jsonable(data)
        assert out["a"][0]["mean"] == 1.0
        assert out["b"] == [1, 2]

    def test_fig_rows_serialize(self):
        from repro.experiments.fig4 import run_fig4

        rows = run_fig4(bot_counts=(50,), replica_counts=(100,))
        payload = to_jsonable(rows)
        json.dumps(payload)  # must not raise
        assert payload[0]["n_bots"] == 50


class TestDumpJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        dump_json({"x": [1, 2, 3]}, str(path))
        assert json.loads(path.read_text()) == {"x": [1, 2, 3]}


class TestCliIntegration:
    def test_json_flag_writes_file(self, tmp_path, capsys):
        path = tmp_path / "fig12.json"
        assert main(["fig12", "--quick", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "fig12" in data
        rows = data["fig12"]
        assert rows[0]["n_clients"] == 10
        assert "total_time" in rows[0]
        out = capsys.readouterr().out
        assert "results written" in out
