"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.experiments.plots import Series, ascii_chart


class TestSeries:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="xs"):
            Series("a", [1, 2], [1])

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            Series("a", [], [])


class TestAsciiChart:
    def test_contains_glyphs_and_legend(self):
        chart = ascii_chart(
            [
                Series("up", [0, 1, 2], [0, 1, 2]),
                Series("down", [0, 1, 2], [2, 1, 0]),
            ],
            title="cross",
        )
        assert "cross" in chart
        assert "*" in chart
        assert "o" in chart
        assert "*=up" in chart
        assert "o=down" in chart

    def test_rising_series_rises(self):
        chart = ascii_chart(
            [Series("s", [0, 10], [0, 100])], width=20, height=10
        )
        rows = [
            line for line in chart.splitlines() if "|" in line
        ]
        first_row_with_glyph = next(
            i for i, row in enumerate(rows) if "*" in row
        )
        last_row_with_glyph = max(
            i for i, row in enumerate(rows) if "*" in row
        )
        # Top rows hold high y values: the max lands above the min.
        top_col = rows[first_row_with_glyph].index("*")
        bottom_col = rows[last_row_with_glyph].index("*")
        assert top_col > bottom_col

    def test_axis_bounds_printed(self):
        chart = ascii_chart(
            [Series("s", [5, 25], [100, 400])], width=30, height=8
        )
        assert "5" in chart
        assert "25" in chart
        assert "100" in chart
        assert "400" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart([Series("flat", [0, 1], [7, 7])])
        assert "flat" in chart

    def test_single_point(self):
        chart = ascii_chart([Series("dot", [3], [4])])
        assert "*" in chart

    def test_labels(self):
        chart = ascii_chart(
            [Series("s", [0, 1], [0, 1])],
            x_label="bots",
            y_label="shuffles",
        )
        assert "bots" in chart
        assert "shuffles" in chart

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ascii_chart([])
        with pytest.raises(ValueError, match="too small"):
            ascii_chart([Series("s", [0], [0])], width=4, height=2)
        too_many = [
            Series(str(i), [0, 1], [0, i]) for i in range(9)
        ]
        with pytest.raises(ValueError, match="at most"):
            ascii_chart(too_many)

    def test_deterministic(self):
        series = [Series("s", [0, 1, 2, 3], [5, 1, 4, 2])]
        assert ascii_chart(series) == ascii_chart(series)
