"""Tests for the per-figure chart builders."""

from __future__ import annotations

import pytest

from repro.experiments.fig8 import chart_fig8, run_fig8
from repro.experiments.fig9 import chart_fig9, run_fig9
from repro.experiments.fig10 import chart_fig10, run_fig10
from repro.experiments.fig12 import chart_fig12, run_fig12


class TestFigureCharts:
    def test_fig8_chart(self):
        rows = run_fig8(
            bot_counts=(5_000, 20_000),
            benign_counts=(10_000,),
            targets=(0.8, 0.95),
            repetitions=2,
            seed=1,
        )
        chart = chart_fig8(rows)
        assert "Figure 8" in chart
        assert "10K/80%" in chart
        assert "10K/95%" in chart
        assert "persistent bots" in chart

    def test_fig9_chart(self):
        rows = run_fig9(
            replica_counts=(900, 2000),
            benign_counts=(10_000,),
            targets=(0.8,),
            repetitions=2,
            seed=2,
        )
        chart = chart_fig9(rows)
        assert "Figure 9" in chart
        assert "shuffling replicas" in chart

    def test_fig10_chart(self):
        curves = run_fig10(fractions=(0.3, 0.6, 0.9), repetitions=2,
                           seed=3)
        chart = chart_fig10(curves)
        assert "Figure 10" in chart
        assert "10K benign" in chart
        assert "50K benign" in chart

    def test_fig12_chart(self):
        rows = run_fig12(client_counts=(10, 30, 60), repetitions=3,
                         seed=4)
        chart = chart_fig12(rows)
        assert "Figure 12" in chart
        assert "all clients" in chart
        assert "per client" in chart

    def test_fig8_chart_skips_singleton_series(self):
        rows = run_fig8(
            bot_counts=(5_000,),  # one x-value: no drawable line
            benign_counts=(10_000,),
            targets=(0.8,),
            repetitions=2,
            seed=5,
        )
        with pytest.raises(ValueError):
            chart_fig8(rows)  # all series dropped -> explicit error
