"""Trust-derived log-prior and its estimator integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import estimate_bots_mle, estimate_bots_weighted
from repro.trust import TrustConfig, TrustManager, bot_count_log_prior


class TestShape:
    def test_length_and_peak(self):
        prior = bot_count_log_prior(upper=50, expected=20.0)
        assert prior.shape == (51,)
        assert prior[20] == 0.0  # peak at the expectation
        assert np.argmax(prior) == 20
        assert np.all(prior <= 0.0)

    def test_relative_scale(self):
        """Being 5 bots off costs the same *relative* amount at any
        expectation: the Laplace scale is the expectation itself."""
        near = bot_count_log_prior(upper=100, expected=10.0)
        far = bot_count_log_prior(upper=1000, expected=100.0)
        assert near[15] == pytest.approx(far[150])

    def test_strength_zero_is_flat(self):
        prior = bot_count_log_prior(upper=10, expected=4.0, strength=0.0)
        assert np.all(prior == 0.0)

    def test_expectation_clipped_into_range(self):
        low = bot_count_log_prior(upper=10, expected=-5.0)
        assert np.argmax(low) == 0
        high = bot_count_log_prior(upper=10, expected=99.0)
        assert np.argmax(high) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            bot_count_log_prior(upper=-1, expected=0.0)
        with pytest.raises(ValueError):
            bot_count_log_prior(upper=5, expected=1.0, strength=-0.1)


class TestEstimatorIntegration:
    def test_none_prior_is_bit_identical_to_baseline(self):
        """log_prior=None must leave the historical pure-MLE path
        untouched — the trust-disabled service depends on it."""
        for n_attacked in (1, 3, 6):
            base = estimate_bots_mle(
                n_attacked=n_attacked, n_replicas=10, upper_bound=120
            )
            with_none = estimate_bots_mle(
                n_attacked=n_attacked, n_replicas=10, upper_bound=120,
                log_prior=None,
            )
            assert with_none == base

    def test_flat_prior_does_not_move_the_mle(self):
        flat = np.zeros(121)
        base = estimate_bots_mle(
            n_attacked=4, n_replicas=10, upper_bound=120
        )
        shaped = estimate_bots_mle(
            n_attacked=4, n_replicas=10, upper_bound=120, log_prior=flat
        )
        assert shaped.m_hat == base.m_hat

    def test_strong_prior_pulls_map_toward_expectation(self):
        base = estimate_bots_mle(
            n_attacked=4, n_replicas=10, upper_bound=120
        )
        expected = float(base.m_hat + 30)
        prior = bot_count_log_prior(
            upper=120, expected=expected, strength=40.0
        )
        pulled = estimate_bots_mle(
            n_attacked=4, n_replicas=10, upper_bound=120, log_prior=prior
        )
        assert base.m_hat < pulled.m_hat <= expected + 1

    def test_weighted_estimator_accepts_prior(self):
        sizes = [22, 20, 19, 21, 20, 18, 20, 20, 20, 20]
        base = estimate_bots_weighted(
            n_attacked=3, sizes=sizes, n_clients=200
        )
        prior = bot_count_log_prior(
            upper=200, expected=float(base.m_hat + 40), strength=30.0
        )
        pulled = estimate_bots_weighted(
            n_attacked=3, sizes=sizes, n_clients=200, log_prior=prior
        )
        assert pulled.m_hat >= base.m_hat

    def test_degenerate_all_attacked_ignores_prior(self):
        prior = bot_count_log_prior(upper=40, expected=2.0, strength=50.0)
        estimate = estimate_bots_mle(
            n_attacked=8, n_replicas=8, upper_bound=40, log_prior=prior
        )
        assert estimate.degenerate
        assert estimate.m_hat == 40  # Theorem 1 collapse, prior unused


def test_low_trust_mass_feeds_a_sane_expectation():
    """End-to-end shape of the bridge: a mixed population's low-trust
    mass lands between the bot count and the population size, and the
    prior peaks there."""
    config = TrustConfig(
        violation_rate=0.0, penalty_cooldown=0.0,
        violation_penalty=0.9, heal_tau=1e9, seed=3,
    )
    manager = TrustManager(config)
    bots = [f"bot{i}" for i in range(10)]
    benign = [f"user{i}" for i in range(90)]
    for cid in bots + benign:
        manager.observe(cid, now=0.0)
    for cid in bots:
        manager.observe(cid, now=0.5, violation=True)
    mass = manager.low_trust_mass(bots + benign)
    # 10 near-zero-trust bots contribute ~1 each; 90 benign at ~0.6
    # contribute 0.4 each.
    assert 40.0 < mass < 60.0
    prior = bot_count_log_prior(upper=100, expected=mass)
    assert np.argmax(prior) == round(mass)
