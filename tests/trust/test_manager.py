"""TrustManager: admission decisions, aggregates, persistence."""

from __future__ import annotations

import pytest

from repro.obs.instruments import Instruments
from repro.trust import (
    PROFILE_NAMESPACE,
    TIER_NAMES,
    MemoryBackend,
    SqliteBackend,
    TrustConfig,
    TrustManager,
    TrustTier,
)


@pytest.fixture
def config() -> TrustConfig:
    return TrustConfig(seed=11)


def _pin(manager: TrustManager, client_id: str, tier: TrustTier,
         trust: float, requests: int = 0) -> None:
    """Force a client into a known ladder state via the persistence row."""
    manager.table.ensure(client_id, now=0.0)
    manager.table.load_row(client_id, {
        "trust": trust,
        "tier": int(tier),
        "tier_since": 0.0,
        "last_seen": 0.0,
        "requests": requests,
    })


class TestAdmitDecision:
    def test_unknown_client_passes(self, config):
        assert TrustManager(config).admit_decision("stranger") == "ok"

    def test_watch_and_trusted_pass(self, config):
        manager = TrustManager(config)
        _pin(manager, "w", TrustTier.WATCH, 0.6)
        _pin(manager, "t", TrustTier.TRUSTED, 0.9)
        assert manager.admit_decision("w") == "ok"
        assert manager.admit_decision("t") == "ok"

    def test_denied_client_is_refused(self, config):
        manager = TrustManager(config)
        _pin(manager, "bot", TrustTier.DENIED, 0.01)
        assert manager.admit_decision("bot") == "deny"

    def test_throttled_passes_one_in_throttle_every(self, config):
        """Deterministic in the client's own request count — request
        2k passes, request 2k+1 throttles (throttle_every=2)."""
        manager = TrustManager(config)
        _pin(manager, "shady", TrustTier.THROTTLED, 0.2, requests=0)
        assert manager.admit_decision("shady") == "ok"
        _pin(manager, "shady", TrustTier.THROTTLED, 0.2, requests=1)
        assert manager.admit_decision("shady") == "throttle"
        _pin(manager, "shady", TrustTier.THROTTLED, 0.2, requests=2)
        assert manager.admit_decision("shady") == "ok"


class TestAggregates:
    def test_low_trust_mass_mixes_known_and_unknown(self, config):
        manager = TrustManager(config)
        _pin(manager, "good", TrustTier.TRUSTED, 0.9)
        _pin(manager, "bad", TrustTier.DENIED, 0.1)
        mass = manager.low_trust_mass(["good", "bad", "stranger"])
        expected = (1 - 0.9) + (1 - 0.1) + (1 - config.initial_trust)
        assert mass == pytest.approx(expected)

    def test_tier_counts_whole_table_and_subset(self, config):
        manager = TrustManager(config)
        _pin(manager, "a", TrustTier.TRUSTED, 0.9)
        _pin(manager, "b", TrustTier.THROTTLED, 0.2)
        _pin(manager, "c", TrustTier.THROTTLED, 0.3)
        whole = manager.tier_counts()
        assert tuple(whole) == TIER_NAMES  # stable render order
        assert whole == {
            "TRUSTED": 1, "WATCH": 0, "THROTTLED": 2, "DENIED": 0,
        }
        # Subsets may include never-seen clients: they count under the
        # initial score's tier (WATCH at the default 0.6).
        subset = manager.tier_counts(["a", "stranger"])
        assert subset == {
            "TRUSTED": 1, "WATCH": 1, "THROTTLED": 0, "DENIED": 0,
        }

    def test_mean_trust(self, config):
        manager = TrustManager(config)
        assert manager.mean_trust() == 1.0  # empty table
        _pin(manager, "a", TrustTier.TRUSTED, 0.8)
        _pin(manager, "b", TrustTier.DENIED, 0.2)
        assert manager.mean_trust() == pytest.approx(0.5)
        assert manager.mean_trust(["a", "stranger"]) == pytest.approx(
            (0.8 + config.initial_trust) / 2
        )

    def test_snapshot_shape(self, config):
        manager = TrustManager(config)
        manager.observe("a", now=1.0)
        snapshot = manager.snapshot()
        assert snapshot["population"] == 1
        assert snapshot["tiers"]["WATCH"] == 1
        assert 0.0 <= snapshot["mean_trust"] <= 1.0


class TestPersistence:
    def test_dirty_persist_restore_cycle(self, config):
        storage = MemoryBackend()
        manager = TrustManager(config, storage=storage)
        assert manager.dirty is False
        manager.observe("a", now=0.0)
        manager.observe_batch(1.0, ["a", "b"], [True, False])
        assert manager.dirty is True
        assert manager.persist() == 2
        assert manager.dirty is False
        assert manager.persist() == 0  # nothing new

        reborn = TrustManager(config, storage=storage)
        assert reborn.restore() == 2
        for cid in ("a", "b"):
            assert reborn.profile(cid) == manager.profile(cid)

    def test_persist_without_storage_is_noop(self, config):
        manager = TrustManager(config)
        manager.observe("a", now=0.0)
        assert manager.persist() == 0
        assert manager.restore() == 0

    def test_restore_survives_sqlite_reopen(self, config, tmp_path):
        path = str(tmp_path / "trust.db")
        first = TrustManager(config, storage=SqliteBackend(path))
        first.observe("bot", now=0.0)
        first.observe("bot", now=0.5, violation=True)
        first.persist()
        first.storage.close()

        second = TrustManager(config, storage=SqliteBackend(path))
        assert second.restore() == 1
        assert second.profile("bot") == first.profile("bot")
        second.storage.close()

    def test_rows_land_in_profile_namespace(self, config):
        storage = MemoryBackend()
        manager = TrustManager(config, storage=storage)
        manager.observe("a", now=0.0)
        manager.persist()
        keys = [key for key, _ in storage.items(PROFILE_NAMESPACE)]
        assert keys == ["a"]


def test_transition_counter_lands_in_registry(config):
    instruments = Instruments.create(source="test")
    manager = TrustManager(config, instruments=instruments)
    manager.observe("bot", now=0.0)  # first sight: transition unseen->WATCH
    counter = instruments.registry.get("trust_tier_transitions_total")
    assert counter is not None
    baseline = counter.value(tier="DENIED")
    # Crush the score: WATCH -> DENIED in one counted violation.
    strict = TrustConfig(
        violation_rate=0.0, penalty_cooldown=0.0,
        violation_penalty=0.9, seed=11,
    )
    harsh = TrustManager(strict, instruments=instruments)
    harsh.observe("bot", now=0.0)
    assert harsh.observe("bot", now=0.5, violation=True) is TrustTier.DENIED
    assert counter.value(tier="DENIED") == baseline + 1
