"""Storage-backend contract: all three implementations, one behaviour.

The parametrized contract is the point — the coordinator must not care
which backend sits behind it, so every semantic assertion here runs
against memory, sqlite, and the atomic JSON file alike.  Backend-
specific tests cover what the contract cannot: surviving a reopen
(sqlite, file) and atomic replacement (file).
"""

from __future__ import annotations

import json

import pytest

from repro.trust import (
    JsonFileBackend,
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
    make_backend,
)


@pytest.fixture(params=["memory", "sqlite", "file"])
def backend(request, tmp_path) -> StorageBackend:
    if request.param == "memory":
        return MemoryBackend()
    if request.param == "sqlite":
        return SqliteBackend(str(tmp_path / "state.db"))
    return JsonFileBackend(str(tmp_path / "state.json"))


class TestContract:
    def test_get_absent_returns_none(self, backend):
        assert backend.get("bindings", "nope") is None

    def test_put_get_roundtrip(self, backend):
        backend.put("bindings", "alice", {"replica": "r-1"})
        assert backend.get("bindings", "alice") == {"replica": "r-1"}

    def test_put_overwrites(self, backend):
        backend.put("bindings", "alice", {"replica": "r-1"})
        backend.put("bindings", "alice", {"replica": "r-9"})
        assert backend.get("bindings", "alice") == {"replica": "r-9"}

    def test_namespaces_are_disjoint(self, backend):
        backend.put("bindings", "k", {"v": 1})
        backend.put("profiles", "k", {"v": 2})
        assert backend.get("bindings", "k") == {"v": 1}
        assert backend.get("profiles", "k") == {"v": 2}

    def test_delete_and_absent_delete(self, backend):
        backend.put("bindings", "alice", {"replica": "r-1"})
        backend.delete("bindings", "alice")
        assert backend.get("bindings", "alice") is None
        backend.delete("bindings", "alice")  # no-op, no raise

    def test_items_sorted_by_key(self, backend):
        backend.put("bindings", "b", {"n": 2})
        backend.put("bindings", "a", {"n": 1})
        backend.put("bindings", "c", {"n": 3})
        assert backend.items("bindings") == [
            ("a", {"n": 1}), ("b", {"n": 2}), ("c", {"n": 3}),
        ]

    def test_items_empty_namespace(self, backend):
        assert backend.items("nothing") == []

    def test_put_many(self, backend):
        backend.put_many(
            "profiles", [("x", {"t": 0.5}), ("y", {"t": 0.9})]
        )
        assert backend.get("profiles", "x") == {"t": 0.5}
        assert backend.get("profiles", "y") == {"t": 0.9}

    def test_values_json_roundtrip_everywhere(self, backend):
        """Tuples come back as lists on *every* backend, so in-memory
        runs cannot behave differently from persistent ones."""
        backend.put("state", "belief", {"ids": ("a", "b"), "n": 3})
        value = backend.get("state", "belief")
        assert value == {"ids": ["a", "b"], "n": 3}
        assert isinstance(value["ids"], list)

    def test_flush_and_close_are_callable(self, backend):
        backend.put("bindings", "a", {"r": "r-1"})
        backend.flush()
        backend.close()


class TestPersistence:
    def test_memory_is_not_persistent(self):
        assert MemoryBackend().persistent is False

    def test_sqlite_survives_reopen(self, tmp_path):
        path = str(tmp_path / "state.db")
        first = SqliteBackend(path)
        assert first.persistent is True
        first.put("bindings", "alice", {"replica": "r-2"})
        first.close()
        second = SqliteBackend(path)
        assert second.get("bindings", "alice") == {"replica": "r-2"}
        second.close()

    def test_file_survives_reopen(self, tmp_path):
        path = str(tmp_path / "state.json")
        first = JsonFileBackend(path)
        assert first.persistent is True
        first.put("bindings", "alice", {"replica": "r-2"})
        first.close()
        second = JsonFileBackend(path)
        assert second.get("bindings", "alice") == {"replica": "r-2"}

    def test_file_writes_are_atomic_documents(self, tmp_path):
        """On-disk content is always one complete JSON document (the
        tmp + os.replace idiom), never a partial write."""
        path = tmp_path / "state.json"
        backend = JsonFileBackend(str(path))
        backend.put_many("bindings", [("a", {"r": "r-1"})])
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == {"bindings": {"a": {"r": "r-1"}}}
        assert not (tmp_path / "state.json.tmp").exists()

    def test_file_put_without_flush_not_durable_until_flush(
        self, tmp_path
    ):
        path = tmp_path / "state.json"
        backend = JsonFileBackend(str(path))
        backend.put("bindings", "a", {"r": "r-1"})
        assert not path.exists()
        backend.flush()
        assert path.exists()


class TestMakeBackend:
    def test_memory_spec(self):
        assert isinstance(make_backend("memory"), MemoryBackend)

    def test_sqlite_spec(self, tmp_path):
        backend = make_backend(f"sqlite:{tmp_path / 'x.db'}")
        assert isinstance(backend, SqliteBackend)
        backend.close()

    def test_file_spec(self, tmp_path):
        backend = make_backend(f"file:{tmp_path / 'x.json'}")
        assert isinstance(backend, JsonFileBackend)

    @pytest.mark.parametrize(
        "spec", ["sqlite", "file:", "redis:somewhere", "sqlite:"]
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            make_backend(spec)
