"""Profile table: one vectorized kernel, seeded jitter, persistence."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.trust import ClientProfile, ProfileTable, TrustConfig, TrustTier


@pytest.fixture
def config() -> TrustConfig:
    return TrustConfig(seed=11)


class TestScalarBatchEquivalence:
    def test_scalar_equals_batch_bitwise(self, config):
        """The scalar path is the batch kernel on a one-row view, so
        the two must agree to the last bit, not just approximately."""
        clients = [f"c{i}" for i in range(7)]
        scalar = ProfileTable(config)
        batch = ProfileTable(config)
        for table in (scalar, batch):
            for cid in clients:
                table.ensure(cid, now=0.0)
        schedule = [
            (0.4, [True, False, False, True, False, True, False]),
            (1.1, [False, False, True, False, False, False, False]),
            (2.0, [True] * 7),
        ]
        for now, flags in schedule:
            for cid, violated in zip(clients, flags):
                scalar.observe(cid, now, violation=violated)
            batch.observe_batch(now, clients, flags)
        for cid in clients:
            left = scalar.profile(cid)
            right = batch.profile(cid)
            assert left == right  # dataclass equality: exact floats

    def test_batch_aggregates_duplicate_clients(self, config):
        table = ProfileTable(config)
        table.ensure("c", now=0.0)
        table.observe_batch(1.0, ["c", "c", "c"], [False, True, False])
        profile = table.profile("c")
        assert profile.requests == 3
        assert profile.violations == 1
        # dt=1, k=3: instantaneous rate 3 req/s folded once.
        alpha = -math.expm1(-1.0 / config.rate_tau)
        assert profile.rate_ema == pytest.approx(alpha * 3.0)

    def test_empty_batch_is_noop(self, config):
        table = ProfileTable(config)
        rows = table.observe_batch(1.0, [], [])
        assert rows.size == 0
        assert len(table) == 0


class TestDynamics:
    def test_quiet_client_heals_toward_one(self, config):
        table = ProfileTable(config)
        table.observe("benign", now=0.0)
        start = table.trust_of("benign")
        for step in range(1, 20):
            table.observe("benign", now=step * 10.0)
        assert table.trust_of("benign") > start
        assert table.trust_of("benign") > 0.95

    def test_bystander_violation_not_counted(self):
        """A slow client throttled on a flooded replica keeps its
        score: its own rate EMA never clears ``violation_rate``."""
        config = TrustConfig(violation_rate=20.0, seed=11)
        table = ProfileTable(config)
        table.observe("slow", now=0.0)
        before = table.trust_of("slow")
        tier = table.observe("slow", now=1.0, violation=True)  # 1 req/s
        assert table.trust_of("slow") >= before  # healed, not punished
        assert tier is TrustTier.WATCH
        assert table.profile("slow").violations == 1  # still recorded

    def test_fast_client_violation_is_counted(self):
        config = TrustConfig(
            violation_rate=0.0, penalty_cooldown=0.0, heal_tau=1e9,
            seed=11,
        )
        table = ProfileTable(config)
        table.observe("bot", now=0.0)
        before = table.trust_of("bot")
        table.observe("bot", now=0.1, violation=True)
        assert table.trust_of("bot") == pytest.approx(
            before * (1.0 - config.violation_penalty), rel=1e-6
        )

    def test_penalty_cooldown_limits_rate_of_punishment(self):
        config = TrustConfig(
            violation_rate=0.0, penalty_cooldown=10.0, heal_tau=1e9,
            seed=11,
        )
        table = ProfileTable(config)
        table.observe("bot", now=0.0)
        table.observe("bot", now=1.0, violation=True)   # counted
        after_first = table.trust_of("bot")
        table.observe("bot", now=2.0, violation=True)   # inside cooldown
        assert table.trust_of("bot") == pytest.approx(
            after_first, abs=1e-6
        )
        table.observe("bot", now=11.5, violation=True)  # cooldown over
        assert table.trust_of("bot") < after_first
        assert table.profile("bot").violations == 3

    def test_trust_stays_in_unit_interval(self):
        config = TrustConfig(
            violation_rate=0.0, penalty_cooldown=0.0,
            violation_penalty=0.99, seed=11,
        )
        table = ProfileTable(config)
        table.observe("bot", now=0.0)
        for step in range(1, 50):
            table.observe("bot", now=step * 0.1, violation=True)
        assert 0.0 <= table.trust_of("bot") <= 1.0


class TestJitter:
    def test_heal_jitter_is_deterministic_and_order_free(self, config):
        forward = ProfileTable(config)
        backward = ProfileTable(config)
        ids = ["alpha", "beta", "gamma"]
        for cid in ids:
            forward.ensure(cid, now=0.0)
        for cid in reversed(ids):
            backward.ensure(cid, now=0.0)
        for cid in ids:
            assert (
                forward.to_row(cid)["heal_tau"]
                == backward.to_row(cid)["heal_tau"]
            )

    def test_heal_jitter_varies_by_seed_and_client(self):
        one = ProfileTable(TrustConfig(seed=1))
        two = ProfileTable(TrustConfig(seed=2))
        for table in (one, two):
            table.ensure("alpha", now=0.0)
            table.ensure("beta", now=0.0)
        assert one.to_row("alpha")["heal_tau"] != two.to_row("alpha")[
            "heal_tau"
        ]
        assert one.to_row("alpha")["heal_tau"] != one.to_row("beta")[
            "heal_tau"
        ]

    def test_zero_jitter_uses_config_constant(self):
        table = ProfileTable(TrustConfig(heal_jitter=0.0, seed=11))
        table.ensure("c", now=0.0)
        assert table.to_row("c")["heal_tau"] == TrustConfig.heal_tau


class TestPersistenceRows:
    def test_row_roundtrip_restores_exact_state(self, config):
        source = ProfileTable(config)
        source.observe("bot", now=0.0)
        source.observe("bot", now=0.05, violation=True)
        source.observe("bot", now=0.10, violation=True)
        row = source.to_row("bot")

        target = ProfileTable(config)
        target.load_row("bot", row)
        assert target.profile("bot") == source.profile("bot")
        assert target.to_row("bot") == row

    def test_never_penalised_sentinel_survives_json(self, config):
        source = ProfileTable(config)
        source.observe("benign", now=3.0)
        row = source.to_row("benign")
        assert row["last_penalty"] is None  # -inf is not JSON

        target = ProfileTable(config)
        target.load_row("benign", row)
        assert target.to_row("benign")["last_penalty"] is None
        # The restored sentinel must still mean "cooldown never blocks".
        cols_penalty = target.to_row("benign")
        assert cols_penalty["violations"] == 0

    def test_profile_view_is_json_ready(self, config):
        table = ProfileTable(config)
        table.observe("c", now=1.0)
        view = table.profile("c")
        assert isinstance(view, ClientProfile)
        as_dict = view.to_dict()
        assert as_dict["client_id"] == "c"
        assert as_dict["tier"] == "WATCH"
        assert isinstance(as_dict["trust"], float)


def test_table_grows_past_initial_capacity(config):
    table = ProfileTable(config)
    for i in range(200):  # initial capacity is 64
        table.observe(f"c{i}", now=float(i))
    assert len(table) == 200
    assert table.client_ids[0] == "c0"
    assert table.client_ids[-1] == "c199"
    assert "c150" in table
    assert table.trust_of("c150") == pytest.approx(
        TrustConfig.initial_trust
    )


def test_config_validation_rejects_bad_floors():
    with pytest.raises(ValueError):
        TrustConfig(watch_floor=0.8, trusted_floor=0.7)
    with pytest.raises(ValueError):
        TrustConfig(violation_penalty=1.5)
    with pytest.raises(ValueError):
        TrustConfig(throttle_every=0)
    with pytest.raises(ValueError):
        TrustConfig(heal_jitter=1.0)
