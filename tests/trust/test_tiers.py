"""Tier ladder: floors, immediate demotion, graduated promotion."""

from __future__ import annotations

from repro.trust import ProfileTable, TrustConfig, TrustTier, tier_for_score


def test_tier_for_score_floors():
    config = TrustConfig()
    assert tier_for_score(0.9, config) is TrustTier.TRUSTED
    assert tier_for_score(config.trusted_floor, config) is TrustTier.TRUSTED
    assert tier_for_score(0.6, config) is TrustTier.WATCH
    assert tier_for_score(config.watch_floor, config) is TrustTier.WATCH
    assert tier_for_score(0.2, config) is TrustTier.THROTTLED
    assert tier_for_score(0.05, config) is TrustTier.DENIED


def test_tier_ordering_matches_privilege():
    assert (
        TrustTier.DENIED
        < TrustTier.THROTTLED
        < TrustTier.WATCH
        < TrustTier.TRUSTED
    )


def _ladder_config(**overrides) -> TrustConfig:
    """Deterministic ladder dynamics: no jitter, every violation counts
    (no rate gate, no cooldown), 1s heal constant and dwell."""
    params = dict(
        heal_tau=1.0,
        heal_jitter=0.0,
        violation_rate=0.0,
        penalty_cooldown=0.0,
        violation_penalty=0.9,
        promotion_dwell=1.0,
        seed=1,
    )
    params.update(overrides)
    return TrustConfig(**params)


def test_demotion_is_immediate_and_skips_rungs():
    table = ProfileTable(_ladder_config())
    table.observe("bot", now=0.0)  # first sight: WATCH (initial 0.6)
    assert table.tier_of("bot") is TrustTier.WATCH
    # One counted violation with penalty 0.9 crushes the score straight
    # past THROTTLED into DENIED — no rung-at-a-time grace on the way
    # down.  (dt=0.5 so the rate EMA is nonzero and the hit counts.)
    tier = table.observe("bot", now=0.5, violation=True)
    assert tier is TrustTier.DENIED
    assert table.trust_of("bot") < 0.12


def test_promotion_climbs_one_rung_per_dwell():
    table = ProfileTable(_ladder_config())
    table.observe("pc", now=0.0)
    table.observe("pc", now=0.5, violation=True)  # -> DENIED at t=0.5
    assert table.tier_of("pc") is TrustTier.DENIED

    # Quiet observation at t=1.0 heals the score well past the WATCH
    # promotion threshold, but only 0.5s of dwell has accrued: no move.
    table.observe("pc", now=1.0)
    assert table.trust_of("pc") > 0.2
    assert table.tier_of("pc") is TrustTier.DENIED

    # t=1.6: dwell satisfied (1.1s at DENIED).  The score would qualify
    # for WATCH outright, but promotion climbs exactly one rung.
    assert table.observe("pc", now=1.6) is TrustTier.THROTTLED

    # Each further dwell period buys exactly one more rung.
    assert table.observe("pc", now=2.8) is TrustTier.WATCH
    assert table.observe("pc", now=4.0) is TrustTier.TRUSTED
    assert table.trust_of("pc") > 0.9


def test_promotion_requires_hysteresis_margin():
    # Pin a profile just above the WATCH floor while THROTTLED: the
    # bare floor is met but the hysteresis margin is not, so the score
    # may not climb — it would flap right back down.
    config = _ladder_config(heal_tau=1e9)  # freeze healing
    table = ProfileTable(config)
    table.ensure("edge", now=0.0)
    table.load_row("edge", {
        "trust": config.watch_floor + 0.01,
        "tier": int(TrustTier.THROTTLED),
        "tier_since": 0.0,
        "last_seen": 0.0,
    })
    assert table.observe("edge", now=5.0) is TrustTier.THROTTLED

    # The same score with hysteresis switched off does climb.
    bare = _ladder_config(heal_tau=1e9, hysteresis=0.0)
    table2 = ProfileTable(bare)
    table2.ensure("edge", now=0.0)
    table2.load_row("edge", {
        "trust": bare.watch_floor + 0.01,
        "tier": int(TrustTier.THROTTLED),
        "tier_since": 0.0,
        "last_seen": 0.0,
    })
    assert table2.observe("edge", now=5.0) is TrustTier.WATCH
