"""Smoke tests: every shipped example must run and tell its story.

Examples are documentation that executes; a release where
``python examples/quickstart.py`` crashes is broken no matter what the
unit tests say.  The slowest examples are exercised through their
importable ``main()`` with output captured.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_examples_directory_complete(self):
        names = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
        assert names == {
            "quickstart",
            "ecommerce_flash_attack",
            "capacity_planning",
            "adversary_strategies",
            "moving_target_resilience",
            "operating_day",
        }

    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "one shuffle" in out
        assert "MLE estimate" in out
        assert "saved" in out

    def test_capacity_planning(self, capsys):
        out = run_example("capacity_planning", capsys)
        assert "Theorem 1" in out
        assert "mitigation speed" in out

    def test_operating_day(self, capsys):
        out = run_example("operating_day", capsys)
        assert "replica-hours" in out
        assert "maintenance saved" in out

    @pytest.mark.slow
    def test_ecommerce_flash_attack(self, capsys):
        out = run_example("ecommerce_flash_attack", capsys)
        assert "RunReport" in out

    @pytest.mark.slow
    def test_adversary_strategies(self, capsys):
        out = run_example("adversary_strategies", capsys)
        assert "naive-only" in out
        assert "on-off" in out

    @pytest.mark.slow
    def test_moving_target_resilience(self, capsys):
        out = run_example("moving_target_resilience", capsys)
        assert "spoofed-source flood" in out
        assert "hot spares" in out
