"""CLI behaviour of ``repro-lint``: exit codes, formats, filtering."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.cli import main

CLEAN = '"""Docs."""\n\nfrom __future__ import annotations\n\nx = 1.0\n'
DIRTY = "from __future__ import annotations\nimport random\n"


@pytest.fixture
def tree(tmp_path: Path) -> Path:
    root = tmp_path / "repro" / "sim"
    root.mkdir(parents=True)
    (root / "clean.py").write_text(CLEAN, encoding="utf-8")
    (root / "dirty.py").write_text(DIRTY, encoding="utf-8")
    return tmp_path / "repro"


def test_exit_zero_and_summary_on_clean_tree(tree, capsys):
    (tree / "sim" / "dirty.py").unlink()
    assert main([str(tree)]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out


def test_exit_one_with_rule_id_and_location(tree, capsys):
    assert main([str(tree)]) == 1
    out = capsys.readouterr().out
    assert "R1" in out
    assert "dirty.py:2:0" in out


def test_json_format_is_parseable(tree, capsys):
    assert main(["--format", "json", str(tree)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 2
    assert [v["rule"] for v in payload["violations"]] == ["R1"]
    assert {r["id"] for r in payload["rules"]} == {
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
    }


def test_select_limits_active_rules(tree, capsys):
    assert main(["--select", "R3,R5", str(tree)]) == 0
    assert "2 rules active" in capsys.readouterr().out


def test_ignore_drops_rules(tree):
    assert main(["--ignore", "R1", str(tree)]) == 0


def test_unknown_rule_id_is_usage_error(tree):
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "R99", str(tree)])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path / "nope")])
    assert excinfo.value.code == 2


def test_list_rules_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id, slug in [
        ("R1", "no-unseeded-rng"),
        ("R2", "log-space-combinatorics"),
        ("R8", "no-print-in-library"),
    ]:
        assert rule_id in out
        assert slug in out


def test_egg_info_and_pycache_are_skipped(tmp_path, capsys):
    egg = tmp_path / "repro.egg-info"
    egg.mkdir()
    (egg / "junk.py").write_text("import random\n", encoding="utf-8")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "junk.py").write_text("import random\n", encoding="utf-8")
    assert main([str(tmp_path)]) == 0
    assert "0 violations in 0 files" in capsys.readouterr().out
