"""CLI behaviour of ``repro-lint --project``: baselines, ratchet,
graph, and the SARIF code-scanning reporter."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import lint_project, render_sarif
from repro.devtools.cli import main

CLEAN_COMP = """\
class Comp:
    def __init__(self, sim):
        self.sim = sim
        self.peers: set[str] = set()

    def kick(self):
        for peer in sorted(self.peers):
            self.sim.schedule(1.0, peer)
"""

DIRTY_COMP = CLEAN_COMP.replace("sorted(self.peers)", "self.peers")


@pytest.fixture
def tree(tmp_path: Path) -> Path:
    for rel in (
        "repro/__init__.py",
        "repro/core/__init__.py",
        "repro/cloudsim/__init__.py",
    ):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("", encoding="utf-8")
    (tmp_path / "repro/cloudsim/comp.py").write_text(
        DIRTY_COMP, encoding="utf-8"
    )
    return tmp_path / "repro"


def test_project_flag_runs_p_rules(tree, capsys):
    # Selecting a project rule without --project is a usage error: the
    # file-mode registry does not know the P-series.
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "P3", str(tree)])
    assert excinfo.value.code == 2
    capsys.readouterr()
    assert main(["--project", "--select", "P3", str(tree)]) == 1
    out = capsys.readouterr().out
    assert "P3" in out
    assert "comp.py:7" in out


def test_json_output_marks_project_scope(tree, capsys):
    assert main(
        ["--project", "--select", "P3", "--format", "json", str(tree)]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    scopes = {r["id"]: r["scope"] for r in payload["rules"]}
    assert scopes["P3"] == "project"
    assert [v["rule"] for v in payload["violations"]] == ["P3"]
    assert payload["baselined"] == []
    assert payload["stale_baseline"] == []


def test_sarif_output_is_valid_code_scanning_payload(tree, capsys):
    assert main(
        ["--project", "--select", "P3", "--format", "sarif", str(tree)]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    assert {r["id"] for r in driver["rules"]} == {"P3"}
    (result,) = run["results"]
    assert result["ruleId"] == "P3"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("comp.py")
    assert location["region"]["startLine"] == 7
    assert location["region"]["startColumn"] >= 1  # SARIF is 1-based


def test_render_sarif_anchors_uris_at_the_given_base(tree, tmp_path):
    report = lint_project([tree], select=["P3"])
    payload = json.loads(render_sarif(report, base=tmp_path))
    (result,) = payload["runs"][0]["results"]
    uri = result["locations"][0]["physicalLocation"]["artifactLocation"]
    assert uri["uri"] == "repro/cloudsim/comp.py"  # repo-relative POSIX


def test_baseline_ratchet_workflow(tree, tmp_path, capsys):
    baseline = tmp_path / "ratchet.json"

    # 1. Burn the pre-existing violation into the baseline.
    assert main(
        ["--project", "--select", "P3", "--write-baseline",
         f"--baseline={baseline}", str(tree)]
    ) == 0
    assert "1 entries" in capsys.readouterr().out
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert len(payload["entries"]) == 1

    # 2. Baselined violations no longer fail the run.
    assert main(
        ["--project", "--select", "P3", f"--baseline={baseline}",
         str(tree)]
    ) == 0
    out = capsys.readouterr().out
    assert "baseline: 1 excused" in out

    # 3. A *new* violation still fails.
    extra = tree / "cloudsim" / "fresh.py"
    extra.write_text(
        DIRTY_COMP.replace("class Comp", "class Fresh"), encoding="utf-8"
    )
    assert main(
        ["--project", "--select", "P3", f"--baseline={baseline}",
         str(tree)]
    ) == 1
    assert "fresh.py" in capsys.readouterr().out
    extra.unlink()

    # 4. Fixing the baselined violation makes its entry stale — the
    #    ratchet forces a rewrite rather than silently shrinking.
    (tree / "cloudsim" / "comp.py").write_text(
        CLEAN_COMP, encoding="utf-8"
    )
    assert main(
        ["--project", "--select", "P3", f"--baseline={baseline}",
         str(tree)]
    ) == 1
    assert "stale" in capsys.readouterr().out.lower()

    # 5. Rewriting the baseline empties it; the tree is clean.
    assert main(
        ["--project", "--select", "P3", "--write-baseline",
         f"--baseline={baseline}", str(tree)]
    ) == 0
    capsys.readouterr()
    assert main(
        ["--project", "--select", "P3", f"--baseline={baseline}",
         str(tree)]
    ) == 0


def test_baseline_directory_is_usage_error(tree):
    with pytest.raises(SystemExit) as excinfo:
        main(["--project", "--baseline", str(tree)])
    assert excinfo.value.code == 2


def test_graph_dot_export(tree, tmp_path, capsys):
    destination = tmp_path / "imports.dot"
    assert main(["--graph", str(destination), str(tree)]) == 0
    dot = destination.read_text(encoding="utf-8")
    assert dot.startswith("digraph imports")
    assert "repro.cloudsim.comp" in dot


def test_graph_json_export(tree, tmp_path, capsys):
    destination = tmp_path / "imports.json"
    assert main(["--graph", str(destination), str(tree)]) == 0
    payload = json.loads(destination.read_text(encoding="utf-8"))
    assert {"modules", "edges", "layer_edge_counts", "contract"} <= set(
        payload
    )


def test_graph_composes_with_project_lint(tree, tmp_path, capsys):
    destination = tmp_path / "imports.dot"
    assert main(
        ["--project", "--select", "P3", "--graph", str(destination),
         str(tree)]
    ) == 1  # graph written AND the P3 violation still fails the run
    assert destination.exists()


def test_list_rules_includes_project_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id, slug in [
        ("P1", "import-layering"),
        ("P2", "rng-provenance"),
        ("P3", "unordered-iteration"),
        ("P4", "no-wall-clock"),
        ("P5", "dead-export"),
    ]:
        assert rule_id in out
        assert slug in out
        assert "[project]" in out


def test_project_mode_without_package_root_reports(tmp_path, capsys):
    stray = tmp_path / "stray.py"
    stray.write_text(
        '"""Doc."""\n\nfrom __future__ import annotations\n\nx = 1\n',
        encoding="utf-8",
    )
    code = main(["--project", str(stray)])
    out = capsys.readouterr().out
    assert code == 1
    assert "PROJECT" in out


def test_project_report_carries_stage_timings(tree):
    report = lint_project([tree], select=["P3", "P11"])
    for key in ("file_rules", "program_index", "numeric_index",
                "pass_P3", "pass_P11"):
        assert key in report.timings
        assert report.timings[key] >= 0.0


def test_numeric_index_timing_only_for_numeric_passes(tree):
    report = lint_project([tree], select=["P3"])
    assert "numeric_index" not in report.timings
    assert "pass_P3" in report.timings


def test_json_rules_carry_suppression_help(tree, capsys):
    assert main(
        ["--project", "--select", "P3", "--format", "json", str(tree)]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    (rule,) = payload["rules"]
    assert "# reprolint: disable=P3" in rule["suppression"]


def test_sarif_help_includes_pass_specific_markers(tree, capsys):
    assert main(
        ["--project", "--select", "P6,P11,P12", "--format", "sarif",
         str(tree)]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    helps = {
        r["id"]: r["help"]["text"]
        for r in payload["runs"][0]["tool"]["driver"]["rules"]
    }
    assert "# event-loop-safe: <reason>" in helps["P6"]
    assert "# domain: <log|linear> <reason>" in helps["P11"]
    assert "# domain: <log|linear> <reason>" in helps["P12"]
    assert "# reprolint: disable=P11" in helps["P11"]


# ----------------------------------------------------------------------
# --changed incremental mode
# ----------------------------------------------------------------------
R8_VIOLATION = (
    "from __future__ import annotations\n\n\n"
    "def f() -> None:\n    print('x')\n"
)


def _git(cwd: Path, *args: str) -> None:
    import subprocess

    subprocess.run(
        [
            "git",
            "-c", "user.email=ci@example.invalid",
            "-c", "user.name=ci",
            *args,
        ],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


@pytest.fixture
def git_tree(tree: Path, tmp_path: Path, monkeypatch) -> Path:
    monkeypatch.chdir(tmp_path)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "--no-verify", "-m", "seed")
    return tree


def test_changed_lints_only_modified_files(git_tree, tmp_path, capsys):
    # Two violating files: one committed (unchanged), one fresh.
    steady = git_tree / "core" / "steady.py"
    steady.write_text(R8_VIOLATION, encoding="utf-8")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "--no-verify", "-m", "add steady")
    touched = git_tree / "core" / "touched.py"
    touched.write_text(R8_VIOLATION, encoding="utf-8")
    assert main(["--changed=HEAD", "--select", "R8", str(git_tree)]) == 1
    out = capsys.readouterr().out
    assert "touched.py" in out
    assert "steady.py" not in out
    assert "1 files" in out


def test_changed_project_scope_reports_only_changed_files(
    git_tree, capsys
):
    # comp.py's P3 violation is committed and untouched; an identical
    # fresh violation appears in a new file.  Only the new one reports,
    # even though the whole-tree index saw both.
    fresh = git_tree / "cloudsim" / "fresh.py"
    fresh.write_text(
        DIRTY_COMP.replace("class Comp", "class Fresh"), encoding="utf-8"
    )
    assert main(
        ["--project", "--select", "P3", "--changed=HEAD", str(git_tree)]
    ) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out
    assert "comp.py" not in out


def test_changed_skips_stale_baseline_enforcement(
    git_tree, tmp_path, capsys
):
    baseline = tmp_path / "ratchet.json"
    assert main(
        ["--project", "--select", "P3", "--write-baseline",
         f"--baseline={baseline}", str(git_tree)]
    ) == 0
    capsys.readouterr()
    # Fixing the baselined violation makes its entry stale on a full
    # run, but a --changed run only filtered the view — it must not
    # demand a baseline rewrite.
    (git_tree / "cloudsim" / "comp.py").write_text(
        CLEAN_COMP, encoding="utf-8"
    )
    assert main(
        ["--project", "--select", "P3", f"--baseline={baseline}",
         str(git_tree)]
    ) == 1
    assert "stale" in capsys.readouterr().out.lower()
    assert main(
        ["--project", "--select", "P3", f"--baseline={baseline}",
         "--changed=HEAD", str(git_tree)]
    ) == 0


def test_changed_with_no_changes_exits_zero(git_tree, capsys):
    assert main(["--changed=HEAD", "--select", "R8", str(git_tree)]) == 0
    assert "0 violations in 0 files" in capsys.readouterr().out


def test_changed_with_unknown_ref_is_usage_error(git_tree):
    with pytest.raises(SystemExit) as excinfo:
        main(["--changed=not-a-ref", str(git_tree)])
    assert excinfo.value.code == 2


def test_changed_conflicts_with_write_baseline(git_tree):
    with pytest.raises(SystemExit) as excinfo:
        main(
            ["--project", "--changed=HEAD", "--write-baseline",
             str(git_tree)]
        )
    assert excinfo.value.code == 2
