"""Unit tests for every built-in reprolint rule (R1-R8).

Each test materialises a minimal module in a ``repro/...`` directory
under ``tmp_path`` (the rules scope themselves by package location) and
asserts the rule fires on violating code and stays quiet on the
idiomatic alternative.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools import lint_paths
from repro.devtools.runner import lint_file
from repro.devtools.registry import all_rules, resolve_rules


def lint_snippet(
    tmp_path: Path,
    code: str,
    *,
    rel: str = "repro/core/mod.py",
    select: list[str] | None = None,
) -> list[str]:
    """Lint ``code`` placed at ``rel``; return ``"R# line"`` strings.

    ``code`` is dedented; a leading ``HEADER`` line (which tests prepend
    unindented) is stripped first so it does not defeat the dedent.
    """
    if code.startswith(HEADER):
        code = HEADER + textwrap.dedent(code[len(HEADER) :])
    else:
        code = textwrap.dedent(code)
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code, encoding="utf-8")
    report = lint_paths([path], select=select)
    return [f"{v.rule_id} {v.line}" for v in report.violations]


HEADER = "from __future__ import annotations\n"


class TestR1UnseededRNG:
    def test_flags_np_random_seed_and_legacy_samplers(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            import numpy as np

            def bad() -> None:
                np.random.seed(0)
                np.random.shuffle([1, 2])
            """,
            select=["R1"],
        )
        assert hits == ["R1 5", "R1 6"]

    def test_flags_stdlib_random_and_argless_default_rng(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            import random
            from random import shuffle
            import numpy as np

            rng = np.random.default_rng()
            """,
            select=["R1"],
        )
        assert hits == ["R1 2", "R1 3", "R1 6"]

    def test_flags_legacy_import_from_numpy_random(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "from numpy.random import rand\n",
            select=["R1"],
        )
        assert hits == ["R1 2"]

    def test_seeded_generator_is_clean(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            import numpy as np
            from numpy.random import default_rng, SeedSequence

            rng = np.random.default_rng(42)
            rng2 = default_rng(SeedSequence(7))
            """,
            select=["R1"],
        )
        assert hits == []

    def test_test_fixtures_are_exempt(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "import numpy as np\nrng = np.random.default_rng()\n",
            rel="repro/core/test_mod.py",
            select=["R1"],
        )
        assert hits == []


class TestR2LogSpaceCombinatorics:
    def test_flags_math_comb_in_core(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "import math\nx = math.comb(150_000, 75_000)\n",
            select=["R2"],
        )
        assert hits == ["R2 3"]

    def test_flags_imported_factorial_and_its_call(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            from math import factorial

            def f(n: int) -> int:
                return factorial(n)
            """,
            select=["R2"],
        )
        assert hits == ["R2 2", "R2 5"]

    def test_flags_scipy_special_comb(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + "from scipy import special\nx = special.comb(10, 3)\n",
            select=["R2"],
        )
        assert hits == ["R2 3"]

    def test_outside_core_is_exempt(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "import math\nx = math.comb(10, 3)\n",
            rel="repro/experiments/mod.py",
            select=["R2"],
        )
        assert hits == []

    def test_local_factorial_name_is_clean(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            def factorial(n: int) -> int:
                return 1 if n < 2 else n * factorial(n - 1)

            x = factorial(3)
            """,
            select=["R2"],
        )
        assert hits == []


class TestR3FloatEquality:
    def test_flags_equality_with_float_literal(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "def f(p: float) -> bool:\n    return p == 0.3\n",
            select=["R3"],
        )
        assert hits == ["R3 3"]

    def test_flags_float_call_and_math_inf(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            import math

            def f(x: float) -> bool:
                return x == float("-inf") or x != math.inf
            """,
            select=["R3"],
        )
        assert [h.split()[0] for h in hits] == ["R3", "R3"]

    def test_unmarked_zero_sentinel_flagged(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "def f(q: float) -> bool:\n    return q == 0.0\n",
            select=["R3"],
        )
        assert hits == ["R3 3"]

    def test_marked_sentinel_accepted(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            def f(q: float) -> bool:
                return q == 0.0  # exact-sentinel: exp(-inf) is exact 0.0
            """,
            select=["R3"],
        )
        assert hits == []

    def test_standalone_sentinel_covers_next_line(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            def f(q: float) -> bool:
                # exact-sentinel: m == 0 branch returns exact 1.0
                return q == 1.0
            """,
            select=["R3"],
        )
        assert hits == []

    def test_sentinel_marker_requires_reason(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + "def f(q: float) -> bool:\n"
            + "    return q == 0.0  # exact-sentinel:\n",
            select=["R3"],
        )
        assert hits == ["R3 3"]

    def test_int_comparison_is_clean(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "def f(n: int) -> bool:\n    return n == 0\n",
            select=["R3"],
        )
        assert hits == []


class TestR4MutableDefaults:
    def test_flags_list_dict_set_defaults(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            def f(a=[], b={}, *, c=set()):
                return a, b, c
            """,
            select=["R4"],
        )
        assert [h.split()[0] for h in hits] == ["R4", "R4", "R4"]

    def test_none_default_is_clean(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "def f(a=None, b=(), c=0):\n    return a, b, c\n",
            select=["R4"],
        )
        assert hits == []


class TestR5FutureAnnotations:
    def test_flags_missing_future_import(self, tmp_path):
        hits = lint_snippet(tmp_path, "x = 1\n", select=["R5"])
        assert hits == ["R5 1"]

    def test_docstring_only_module_is_exempt(self, tmp_path):
        hits = lint_snippet(tmp_path, '"""Just docs."""\n', select=["R5"])
        assert hits == []

    def test_present_import_is_clean(self, tmp_path):
        hits = lint_snippet(tmp_path, HEADER + "x = 1\n", select=["R5"])
        assert hits == []


class TestR6CoreAnnotations:
    def test_flags_missing_param_and_return(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "def plan(sizes, n_bots: int):\n    return sizes\n",
            select=["R6"],
        )
        assert hits == ["R6 2"]

    def test_private_and_nested_functions_exempt(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            def _helper(x):
                def inner(y):
                    return y
                return inner(x)
            """,
            select=["R6"],
        )
        assert hits == []

    def test_method_self_is_exempt(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            class Planner:
                def solve(self, n_clients: int) -> int:
                    return n_clients
            """,
            select=["R6"],
        )
        assert hits == []

    def test_outside_core_is_exempt(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "def f(x):\n    return x\n",
            rel="repro/sim/mod.py",
            select=["R6"],
        )
        assert hits == []


class TestR7PaperSymbols:
    def test_flags_alias_parameters(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            def plan(num_clients: int, nbots: int, n_replicas: int) -> int:
                return num_clients
            """,
            select=["R7"],
        )
        assert [h.split()[0] for h in hits] == ["R7", "R7"]

    def test_canonical_and_plural_names_clean(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            def sweep(
                n_clients: int,
                bot_counts: tuple[int, ...],
                replica_counts: tuple[int, ...],
            ) -> int:
                return n_clients
            """,
            select=["R7"],
        )
        assert hits == []


class TestR8NoPrint:
    def test_flags_print_in_library(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER + "def f() -> None:\n    print('hi')\n",
            rel="repro/cloudsim/mod.py",
            select=["R8"],
        )
        assert hits == ["R8 3"]

    def test_experiments_and_devtools_exempt(self, tmp_path):
        for rel in ("repro/experiments/mod.py", "repro/devtools/mod.py"):
            hits = lint_snippet(
                tmp_path,
                HEADER + "print('cli output')\n",
                rel=rel,
                select=["R8"],
            )
            assert hits == []

    def test_print_in_docstring_is_clean(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + '''\
            def f() -> None:
                """Example::

                    print("docs only")
                """
            ''',
            rel="repro/sim/mod.py",
            select=["R8"],
        )
        assert hits == []


class TestSuppressions:
    def test_line_disable_comment(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + "def f(p: float) -> bool:\n"
            + "    return p == 0.5  # reprolint: disable=R3\n",
            select=["R3"],
        )
        assert hits == []

    def test_standalone_disable_covers_next_line(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            HEADER
            + """\
            def f(p: float) -> bool:
                # reprolint: disable=R3
                return p == 0.5
            """,
            select=["R3"],
        )
        assert hits == []

    def test_file_level_disable(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            "# reprolint: disable-file=R5\nx = 1\n",
            select=["R5"],
        )
        assert hits == []

    def test_disable_only_silences_listed_rules(self, tmp_path):
        hits = lint_snippet(
            tmp_path,
            "import random  # reprolint: disable=R5\n",
            select=["R1", "R5"],
        )
        assert hits == ["R1 1"]


class TestFramework:
    def test_eight_builtin_rules_registered(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"]

    def test_resolve_rules_rejects_unknown_ids(self):
        import pytest

        with pytest.raises(KeyError):
            resolve_rules(select=["R99"])

    def test_unparsable_file_reports_parse_violation(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n", encoding="utf-8")
        violations = lint_file(path, all_rules())
        assert [v.rule_id for v in violations] == ["PARSE"]
