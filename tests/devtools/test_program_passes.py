"""Unit tests for the whole-program passes (P1-P14).

Each test materialises a minimal ``repro``-shaped package under
``tmp_path`` and runs :func:`repro.devtools.lint_project` with
``select`` isolating one pass, asserting the pass fires on the
violating shape and stays quiet on the idiomatic alternative.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools import lint_project
from repro.devtools.program import ProgramContext, render_dot, render_graph_json
from repro.devtools.runner import default_consumer_roots


def build_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write ``files`` (relative paths -> source) and return the root."""
    for rel, code in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code), encoding="utf-8")
    return tmp_path / "repro"


def hits(tree: Path, select: list[str]) -> list[str]:
    report = lint_project([tree], select=select)
    return [
        f"{v.rule_id} {Path(v.path).name}:{v.line}"
        for v in report.violations
    ]


PKG = {
    "repro/__init__.py": "",
    "repro/core/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/cloudsim/__init__.py": "",
    "repro/experiments/__init__.py": "",
}


class TestP1ImportLayering:
    def test_core_importing_simulator_violates_contract(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/engine.py": "class Simulator:\n    pass\n",
                "repro/core/alg.py": (
                    "from repro.cloudsim.engine import Simulator\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 alg.py:1"]

    def test_core_external_budget_is_stdlib_plus_numpy(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/alg.py": (
                    "import math\nimport numpy as np\nimport scipy\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 alg.py:3"]

    def test_allowed_directions_are_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/alg.py": "def f() -> int:\n    return 1\n",
                "repro/sim/model.py": "from repro.core.alg import f\n",
                "repro/cloudsim/comp.py": (
                    "from repro.core.alg import f\n"
                    "from repro.sim.model import f as g\n"
                ),
                "repro/experiments/fig.py": (
                    "from repro.cloudsim.comp import f\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []

    def test_typing_only_imports_are_exempt(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/engine.py": "class Simulator:\n    pass\n",
                "repro/core/alg.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.cloudsim.engine import Simulator\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []

    def test_sim_reaching_into_cloudsim_violates(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/engine.py": "class Simulator:\n    pass\n",
                "repro/sim/model.py": (
                    "from repro.cloudsim.engine import Simulator\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 model.py:1"]

    def test_every_layer_may_import_obs(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/obs/__init__.py": "",
                "repro/obs/metrics.py": (
                    "class MetricsRegistry:\n    pass\n"
                ),
                "repro/core/alg.py": (
                    "from repro.obs.metrics import MetricsRegistry\n"
                ),
                "repro/sim/model.py": (
                    "from repro.obs.metrics import MetricsRegistry\n"
                ),
                "repro/cloudsim/comp.py": (
                    "from repro.obs.metrics import MetricsRegistry\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []

    def test_obs_importing_other_layers_violates(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/obs/__init__.py": "",
                "repro/core/alg.py": "def f() -> int:\n    return 1\n",
                "repro/obs/metrics.py": "from repro.core.alg import f\n",
            },
        )
        assert hits(tree, ["P1"]) == ["P1 metrics.py:1"]

    def test_obs_external_budget_is_stdlib_only(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/obs/__init__.py": "",
                "repro/obs/metrics.py": (
                    "import json\nimport math\nimport numpy\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 metrics.py:3"]

    def test_service_and_cloudsim_may_import_detect(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/detect/__init__.py": "",
                "repro/detect/sketch.py": (
                    "class CountMinSketch:\n    pass\n"
                ),
                "repro/service/__init__.py": "",
                "repro/service/tokens.py": (
                    "from repro.detect.sketch import CountMinSketch\n"
                ),
                "repro/cloudsim/replica.py": (
                    "from repro.detect.sketch import CountMinSketch\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []

    def test_detect_importing_service_violates(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/detect/__init__.py": "",
                "repro/service/__init__.py": "",
                "repro/service/tokens.py": (
                    "class TokenBucket:\n    pass\n"
                ),
                "repro/detect/sketch.py": (
                    "from repro.service.tokens import TokenBucket\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 sketch.py:1"]

    def test_detect_external_budget_is_stdlib_plus_numpy(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/detect/__init__.py": "",
                "repro/detect/sketch.py": (
                    "import hashlib\nimport numpy as np\nimport scipy\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 sketch.py:3"]

    def test_detect_may_import_obs(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/obs/__init__.py": "",
                "repro/obs/events.py": "class Event:\n    pass\n",
                "repro/detect/__init__.py": "",
                "repro/detect/report.py": (
                    "from repro.obs.events import Event\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []


class TestP1TrustLayer:
    """The trust layer is a leaf beside detect: obs-only imports in,
    core/cloudsim/service/experiments allowed to depend on it."""

    TRUST_PKG = PKG | {
        "repro/obs/__init__.py": "",
        "repro/obs/events.py": "class Event:\n    pass\n",
        "repro/trust/__init__.py": "",
    }

    def test_trust_may_import_obs_only(self, tmp_path):
        tree = build_tree(
            tmp_path,
            self.TRUST_PKG
            | {
                "repro/trust/manager.py": (
                    "from repro.obs.events import Event\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []

    def test_trust_importing_service_violates(self, tmp_path):
        tree = build_tree(
            tmp_path,
            self.TRUST_PKG
            | {
                "repro/service/__init__.py": "",
                "repro/service/tokens.py": (
                    "class TokenBucket:\n    pass\n"
                ),
                "repro/trust/manager.py": (
                    "from repro.service.tokens import TokenBucket\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 manager.py:1"]

    def test_consumers_may_import_trust(self, tmp_path):
        tree = build_tree(
            tmp_path,
            self.TRUST_PKG
            | {
                "repro/service/__init__.py": "",
                "repro/trust/prior.py": (
                    "def bot_count_log_prior(n):\n    return n\n"
                ),
                # core's dependency is the prior bridge to its
                # estimators; cloudsim/service embed the whole ladder.
                "repro/core/estimator.py": (
                    "from repro.trust.prior import bot_count_log_prior\n"
                ),
                "repro/cloudsim/replica.py": (
                    "from repro.trust.prior import bot_count_log_prior\n"
                ),
                "repro/service/backend.py": (
                    "from repro.trust.prior import bot_count_log_prior\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []

    def test_trust_external_budget_is_stdlib_plus_numpy(self, tmp_path):
        tree = build_tree(
            tmp_path,
            self.TRUST_PKG
            | {
                "repro/trust/profile.py": (
                    "import hashlib\nimport numpy as np\nimport scipy\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 profile.py:3"]


class TestP2RngProvenance:
    def test_seed_forwarding_helper_called_without_seed(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/rngutil.py": """\
                import numpy as np

                def make_rng(seed=None):
                    return np.random.default_rng(seed)
                """,
                "repro/cloudsim/comp.py": """\
                from repro.core.rngutil import make_rng

                def build():
                    return make_rng()

                def seeded(seed: int):
                    return make_rng(seed)
                """,
            },
        )
        found = hits(tree, ["P2"])
        assert found == ["P2 comp.py:4"], found

    def test_leak_laundered_through_two_layers(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/rngutil.py": """\
                import numpy as np

                def make_rng(seed=None):
                    return np.random.default_rng(seed)

                def make_component_rng(seed=None):
                    return make_rng(seed)
                """,
                "repro/sim/model.py": """\
                from repro.core.rngutil import make_component_rng

                def scenario():
                    return make_component_rng()
                """,
            },
        )
        found = hits(tree, ["P2"])
        assert found == ["P2 model.py:4"], found

    def test_dataclass_default_factory_reference(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/state.py": """\
                from dataclasses import dataclass, field
                from numpy.random import default_rng

                @dataclass
                class State:
                    rng: object = field(default_factory=default_rng)
                """,
            },
        )
        found = hits(tree, ["P2"])
        assert len(found) == 1 and found[0].startswith("P2 state.py:6")

    def test_trust_layer_is_reproducibility_critical(self, tmp_path):
        """The trust layer's heal-jitter draws join P2's report set:
        an unseeded construction path entering via ``trust`` is
        flagged, while the seeded SeedSequence idiom stays clean."""
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/trust/__init__.py": "",
                "repro/trust/profile.py": """\
                import numpy as np

                def make_rng(seed=None):
                    return np.random.default_rng(seed)

                def jitter():
                    return make_rng().uniform(-1.0, 1.0)

                def seeded_jitter(seed: int, digest: int):
                    seq = np.random.SeedSequence([seed, digest])
                    return np.random.default_rng(seq).uniform(-1.0, 1.0)
                """,
            },
        )
        found = hits(tree, ["P2"])
        assert found == ["P2 profile.py:7"], found

    def test_literal_no_arg_call_is_left_to_r1(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": """\
                import numpy as np

                def build():
                    return np.random.default_rng()
                """,
            },
        )
        # P2 stays silent on the literal site (R1's report) ...
        assert hits(tree, ["P2"]) == []
        # ... and R1 does flag it.
        assert hits(tree, ["R1"]) == ["R1 comp.py:4"]

    def test_explicitly_seeded_paths_are_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/rngutil.py": """\
                import numpy as np

                def make_rng(seed=None):
                    return np.random.default_rng(seed)
                """,
                "repro/cloudsim/comp.py": """\
                from repro.core.rngutil import make_rng

                def build(seed: int):
                    return make_rng(seed)

                def scenario():
                    return build(1234)
                """,
            },
        )
        assert hits(tree, ["P2"]) == []


SCHED_PRELUDE = """\
class Comp:
    def __init__(self, sim):
        self.sim = sim
        self.peers: set[str] = set()
        self.table: dict[str, int] = {}

"""


class TestP3UnorderedIteration:
    def test_set_iteration_feeding_schedule(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": SCHED_PRELUDE
                + """\
    def kick(self):
        for peer in self.peers:
            self.sim.schedule(1.0, peer)
""",
            },
        )
        found = hits(tree, ["P3"])
        assert found == ["P3 comp.py:8"], found

    def test_dict_view_iteration_feeding_schedule(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": SCHED_PRELUDE
                + """\
    def kick(self):
        for name, delay in self.table.items():
            self.sim.schedule(delay, name)
""",
            },
        )
        found = hits(tree, ["P3"])
        assert found == ["P3 comp.py:8"], found

    def test_sorted_iteration_is_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": SCHED_PRELUDE
                + """\
    def kick(self):
        for peer in sorted(self.peers):
            self.sim.schedule(1.0, peer)
        for name, delay in sorted(self.table.items()):
            self.sim.schedule(delay, name)
""",
            },
        )
        assert hits(tree, ["P3"]) == []

    def test_set_iteration_without_event_effect_is_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": SCHED_PRELUDE
                + """\
    def census(self):
        return sum(1 for peer in self.peers if peer)
""",
            },
        )
        assert hits(tree, ["P3"]) == []

    def test_rng_draw_in_loop_is_flagged_even_without_schedule(
        self, tmp_path
    ):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/sim/model.py": """\
                def draw(rng, pool: set[str]):
                    out = []
                    for name in pool:
                        out.append((name, rng.integers(10)))
                    return out
                """,
            },
        )
        found = hits(tree, ["P3"])
        assert found == ["P3 model.py:3"], found

    def test_layer_scoping_ignores_core_and_experiments(self, tmp_path):
        code = SCHED_PRELUDE + """\
    def kick(self):
        for peer in self.peers:
            self.sim.schedule(1.0, peer)
"""
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/alg.py": code,
                "repro/experiments/fig.py": code,
            },
        )
        assert hits(tree, ["P3"]) == []


class TestP4WallClock:
    def test_time_read_in_simulator_is_flagged(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/clock.py": """\
                import time

                def stamp():
                    return time.time()
                """,
            },
        )
        assert hits(tree, ["P4"]) == ["P4 clock.py:4"]

    def test_from_import_alias_is_caught(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/sim/model.py": """\
                from time import perf_counter as tick

                def stamp():
                    return tick()
                """,
            },
        )
        assert hits(tree, ["P4"]) == ["P4 model.py:4"]

    def test_wall_clock_outside_simulator_is_allowed(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/experiments/bench.py": """\
                import time

                def stamp():
                    return time.time()
                """,
            },
        )
        assert hits(tree, ["P4"]) == []


class TestP5DeadExports:
    def test_broken_and_dead_exports(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/sim/__init__.py": """\
                from .model import used, unused

                __all__ = ["used", "unused", "ghost"]
                """,
                "repro/sim/model.py": (
                    "def used():\n    pass\n\ndef unused():\n    pass\n"
                ),
                "repro/experiments/fig.py": "from repro.sim import used\n",
            },
        )
        found = hits(tree, ["P5"])
        assert "P5 __init__.py:3" in found  # ghost and unused both line 3
        report = lint_project([tree], select=["P5"])
        messages = sorted(v.message for v in report.violations)
        assert any("ghost" in m and "broken export" in m for m in messages)
        assert any("unused" in m and "no cross-module use" in m
                   for m in messages)
        assert not any("`used`" in m for m in messages)

    def test_dotted_from_import_counts_as_facade_use(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/sim/__init__.py": (
                    "from . import model\n\n__all__ = [\"model\"]\n"
                ),
                "repro/sim/model.py": "def run():\n    pass\n",
                "repro/experiments/fig.py": (
                    "from repro.sim.model import run\n"
                ),
            },
        )
        assert hits(tree, ["P5"]) == []


class TestProjectSuppressions:
    def test_inline_disable_silences_one_site(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": SCHED_PRELUDE
                + """\
    def kick(self):
        for peer in self.peers:  # reprolint: disable=P3
            self.sim.schedule(1.0, peer)

    def kick2(self):
        for peer in self.peers:
            self.sim.schedule(1.0, peer)
""",
            },
        )
        found = hits(tree, ["P3"])
        assert found == ["P3 comp.py:12"], found

    def test_file_disable_silences_whole_module(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": (
                    "# reprolint: disable-file=P3\n" + SCHED_PRELUDE
                )
                + """\
    def kick(self):
        for peer in self.peers:
            self.sim.schedule(1.0, peer)
""",
            },
        )
        assert hits(tree, ["P3"]) == []

    def test_p1_suppression_on_import_line(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/alg.py": (
                    "import scipy  # reprolint: disable=P1\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []


SERVICE_PKG = PKG | {
    "repro/service/__init__.py": "",
    "repro/runtime/__init__.py": "",
    "repro/obs/__init__.py": "",
}


class TestP6AsyncBlocking:
    def test_time_sleep_in_async_service_fn(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/worker.py": """\
                import asyncio
                import time

                async def tick():
                    time.sleep(0.1)
                    await asyncio.sleep(0.1)
                """,
            },
        )
        found = hits(tree, ["P6"])
        assert found == ["P6 worker.py:5"], found

    def test_transitive_blocking_through_sync_helper(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/worker.py": """\
                import time

                def pause():
                    time.sleep(0.1)

                async def tick():
                    pause()
                """,
            },
        )
        found = hits(tree, ["P6"])
        assert found == ["P6 worker.py:7"], found

    def test_cpu_heavy_core_call_is_flagged(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/core/planner.py": "def dp_plan(n):\n    return n\n",
                "repro/service/worker.py": """\
                from repro.core.planner import dp_plan

                async def tick():
                    dp_plan(3)
                """,
            },
        )
        found = hits(tree, ["P6"])
        assert found == ["P6 worker.py:4"], found

    def test_event_loop_safe_marker_suppresses_with_reason(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/core/planner.py": "def dp_plan(n):\n    return n\n",
                "repro/service/worker.py": """\
                from repro.core.planner import dp_plan

                async def tick():
                    dp_plan(3)  # event-loop-safe: tiny grid, sub-ms
                """,
            },
        )
        assert hits(tree, ["P6"]) == []

    def test_bare_marker_without_reason_does_not_suppress(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/core/planner.py": "def dp_plan(n):\n    return n\n",
                "repro/service/worker.py": """\
                from repro.core.planner import dp_plan

                async def tick():
                    dp_plan(3)  # event-loop-safe:
                """,
            },
        )
        found = hits(tree, ["P6"])
        assert found == ["P6 worker.py:4"], found

    def test_standalone_marker_covers_next_line(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/core/planner.py": "def dp_plan(n):\n    return n\n",
                "repro/service/worker.py": """\
                from repro.core.planner import dp_plan

                async def tick():
                    # event-loop-safe: tiny grid, sub-ms
                    dp_plan(3)
                """,
            },
        )
        assert hits(tree, ["P6"]) == []

    def test_async_outside_service_layer_is_out_of_scope(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/runtime/worker.py": """\
                import time

                async def tick():
                    time.sleep(0.1)
                """,
            },
        )
        assert hits(tree, ["P6"]) == []


class TestP7OrphanCoroutines:
    def test_discarded_create_task_handle(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/worker.py": """\
                import asyncio

                async def job():
                    return 1

                async def boot():
                    asyncio.create_task(job())
                """,
            },
        )
        found = hits(tree, ["P7"])
        assert found == ["P7 worker.py:7"], found

    def test_retained_handle_is_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/worker.py": """\
                import asyncio

                async def job():
                    return 1

                async def boot():
                    task = asyncio.create_task(job())
                    await task
                """,
            },
        )
        assert hits(tree, ["P7"]) == []

    def test_done_callback_chain_is_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/worker.py": """\
                import asyncio

                async def job():
                    return 1

                def report(task):
                    task.exception()

                async def boot():
                    asyncio.create_task(job()).add_done_callback(report)
                """,
            },
        )
        assert hits(tree, ["P7"]) == []

    def test_bare_coroutine_call_never_awaited(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/worker.py": """\
                async def job():
                    return 1

                async def boot():
                    job()

                async def fine():
                    await job()
                """,
            },
        )
        found = hits(tree, ["P7"])
        assert found == ["P7 worker.py:5"], found


class TestP8ExecutorSubmission:
    def test_lambda_fn_is_flagged(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/runtime/task.py": "class Task:\n    pass\n",
                "repro/runtime/grids.py": """\
                from .task import Task

                def build():
                    return [Task(fn=lambda: 1, params={})]
                """,
            },
        )
        found = hits(tree, ["P8"])
        assert found == ["P8 grids.py:4"], found

    def test_nested_closure_fn_is_flagged(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/runtime/task.py": "class Task:\n    pass\n",
                "repro/runtime/grids.py": """\
                from .task import Task

                def build(k):
                    def cell():
                        return k
                    return Task(fn=cell, params={})
                """,
            },
        )
        found = hits(tree, ["P8"])
        assert found == ["P8 grids.py:6"], found

    def test_partial_fn_is_flagged(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/runtime/task.py": "class Task:\n    pass\n",
                "repro/runtime/grids.py": """\
                from functools import partial

                from .task import Task

                def cell(k):
                    return k

                def build():
                    return Task(fn=partial(cell, 3), params={})
                """,
            },
        )
        found = hits(tree, ["P8"])
        assert found == ["P8 grids.py:9"], found

    def test_non_json_params_are_flagged(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/runtime/task.py": "class Task:\n    pass\n",
                "repro/runtime/grids.py": """\
                from .task import Task

                def cell(k):
                    return k

                def build():
                    return Task(fn=cell, params={"ids": {1, 2}})
                """,
            },
        )
        found = hits(tree, ["P8"])
        assert found == ["P8 grids.py:7"], found

    def test_pool_submit_lambda_is_flagged(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/runtime/executor.py": """\
                def run(pool):
                    return pool.submit(lambda: 1)
                """,
            },
        )
        found = hits(tree, ["P8"])
        assert found == ["P8 executor.py:2"], found

    def test_module_level_fn_with_json_params_is_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/runtime/task.py": "class Task:\n    pass\n",
                "repro/runtime/grids.py": """\
                from .task import Task

                def cell(k):
                    return k

                def build(pool):
                    pool.submit(cell, 3)
                    return Task(fn=cell, params={"k": [1, 2]})
                """,
            },
        )
        assert hits(tree, ["P8"]) == []


RACE_HEADER = """\
import asyncio

class Service:
    def __init__(self):
        self.table: dict[str, str] = {}
        self._lock = asyncio.Lock()

"""

RACE_MAIN = """\
    async def main(self):
        t1 = asyncio.create_task(self.writer_a())
        t2 = asyncio.create_task(self.writer_b())
        await asyncio.gather(t1, t2)
"""


class TestP9SharedStateRaces:
    def test_two_roots_writing_one_container(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/svc.py": RACE_HEADER
                + """\
    async def writer_a(self):
        self.table["a"] = "1"

    async def writer_b(self):
        self.table["b"] = "2"

"""
                + RACE_MAIN,
            },
        )
        found = hits(tree, ["P9"])
        assert found == ["P9 svc.py:9"], found

    def test_lock_guarded_writes_are_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/svc.py": RACE_HEADER
                + """\
    async def writer_a(self):
        async with self._lock:
            self.table["a"] = "1"

    async def writer_b(self):
        async with self._lock:
            self.table["b"] = "2"

"""
                + RACE_MAIN,
            },
        )
        assert hits(tree, ["P9"]) == []

    def test_single_writer_root_is_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/svc.py": RACE_HEADER
                + """\
    async def writer_a(self):
        self.table["a"] = "1"

    async def writer_b(self):
        return len(self.table)

"""
                + RACE_MAIN,
            },
        )
        assert hits(tree, ["P9"]) == []

    def test_disable_comment_documents_ownership(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/svc.py": RACE_HEADER
                + """\
    async def writer_a(self):
        # single atomic write per turn, no await splits it
        # reprolint: disable=P9
        self.table["a"] = "1"

    async def writer_b(self):
        self.table["b"] = "2"

"""
                + RACE_MAIN,
            },
        )
        assert hits(tree, ["P9"]) == []


HANDLER_HEADER = """\
import asyncio

class Server:
    def __init__(self, registry):
        self.registry = registry
        self._count = registry.counter("requests_total", "req")
        self.whitelist: set[str] = set()

    async def start(self):
        self._srv = await asyncio.start_server(self._handle, "", 0)

"""


class TestP10HotPathDiscipline:

    def test_get_or_create_metric_on_request_path(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/svc.py": HANDLER_HEADER
                + """\
    async def _handle(self, reader, writer):
        self.registry.counter("requests_total", "req").inc()
""",
            },
        )
        found = hits(tree, ["P10"])
        assert found == ["P10 svc.py:13"], found

    def test_container_scan_on_request_path(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/svc.py": HANDLER_HEADER
                + """\
    async def _handle(self, reader, writer):
        return [c for c in self.whitelist if c]
""",
            },
        )
        found = hits(tree, ["P10"])
        assert found == ["P10 svc.py:13"], found

    def test_prebound_handle_and_membership_test_are_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/svc.py": HANDLER_HEADER
                + """\
    async def _handle(self, reader, writer):
        self._count.inc()
        return "c" in self.whitelist
""",
            },
        )
        assert hits(tree, ["P10"]) == []

    def test_scan_off_the_handler_path_is_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            SERVICE_PKG
            | {
                "repro/service/svc.py": HANDLER_HEADER
                + """\
    async def _handle(self, reader, writer):
        self._count.inc()

    def sweep(self):
        return sorted(self.whitelist)
""",
            },
        )
        assert hits(tree, ["P10"]) == []


class TestGraphExports:
    def _program(self, tmp_path) -> ProgramContext:
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/alg.py": "def f() -> int:\n    return 1\n",
                "repro/sim/model.py": "from repro.core.alg import f\n",
            },
        )
        return ProgramContext.build(
            tree, consumer_roots=default_consumer_roots(tree)
        )

    def test_dot_render_clusters_by_layer(self, tmp_path):
        dot = render_dot(self._program(tmp_path))
        assert dot.startswith("digraph imports")
        assert 'label="core"' in dot
        assert '"repro.sim.model" -> "repro.core.alg"' in dot

    def test_json_render_carries_contract_and_counts(self, tmp_path):
        payload = render_graph_json(self._program(tmp_path))
        assert payload["layer_edge_counts"] == {"sim -> core": 1}
        assert set(payload["contract"]) >= {"core", "sim", "cloudsim"}
        names = {m["name"] for m in payload["modules"]}
        assert "repro.sim.model" in names


class TestP11LogDomainConfusion:
    def _tree(self, tmp_path, body: str, layer: str = "core"):
        return build_tree(
            tmp_path, PKG | {f"repro/{layer}/alg.py": body}
        )

    def test_log_plus_linear_addition_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                lp = math.lgamma(n + 1)
                return lp + 0.5
            """,
        )
        assert hits(tree, ["P11"]) == ["P11 alg.py:5"]

    def test_linear_minus_log_subtraction_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                lp = math.lgamma(n + 1)
                return 0.5 - lp
            """,
        )
        assert hits(tree, ["P11"]) == ["P11 alg.py:5"]

    def test_log_times_linear_product_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                lp = math.log(n)
                return lp * 0.25
            """,
        )
        assert hits(tree, ["P11"]) == ["P11 alg.py:5"]

    def test_log_vs_linear_comparison_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> bool:
                lp = math.lgamma(n + 1)
                return lp > 0.5
            """,
        )
        assert hits(tree, ["P11"]) == ["P11 alg.py:5"]

    def test_sum_over_log_probabilities_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import numpy as np

            def f(xs) -> float:
                logs = np.log(xs)
                return sum(logs)
            """,
        )
        assert hits(tree, ["P11"]) == ["P11 alg.py:5"]

    def test_method_sum_over_log_array_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import numpy as np

            def f(xs) -> float:
                logs = np.log(xs)
                return logs.sum()
            """,
        )
        assert hits(tree, ["P11"]) == ["P11 alg.py:5"]

    def test_unclamped_exp_of_log_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                lp = math.lgamma(n + 1)
                p = math.exp(lp)
                return min(1.0, p)
            """,
        )
        assert hits(tree, ["P11"]) == ["P11 alg.py:5"]

    def test_exp_of_log_ratio_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int, k: int) -> float:
                la = math.lgamma(n + 1)
                lb = math.lgamma(k + 1)
                return min(1.0, math.exp(la - lb))
            """,
        )
        assert hits(tree, ["P11"]) == []

    def test_exp_clamped_by_min_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                lp = math.lgamma(n + 1)
                return min(1.0, math.exp(lp))
            """,
        )
        assert hits(tree, ["P11"]) == []

    def test_exp_clamped_by_clip_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import numpy as np

            def f(xs) -> float:
                logs = np.log(xs)
                return np.clip(np.exp(logs), 0.0, 1.0)
            """,
        )
        assert hits(tree, ["P11"]) == []

    def test_log_plus_log_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int, k: int) -> float:
                la = math.lgamma(n + 1)
                lb = math.lgamma(k + 1)
                return la + lb
            """,
        )
        assert hits(tree, ["P11"]) == []

    def test_disable_comment_suppresses(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                lp = math.lgamma(n + 1)
                return lp + 0.5  # reprolint: disable=P11
            """,
        )
        assert hits(tree, ["P11"]) == []

    def test_domain_linear_annotation_corrects_inference(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                # domain: linear calibrated weight, not a log-probability
                w = math.lgamma(n + 1)
                return w + 0.5
            """,
        )
        assert hits(tree, ["P11"]) == []


class TestP12ProbabilityRangeEscape:
    def _tree(self, tmp_path, body: str, layer: str = "core"):
        files = PKG | {f"repro/{layer}/alg.py": body}
        if layer not in ("core", "sim", "cloudsim", "experiments"):
            files = files | {f"repro/{layer}/__init__.py": ""}
        return build_tree(tmp_path, files)

    RAW_RETURN = """\
    import math

    def f(n: int) -> float:
        lp = math.lgamma(n + 1)
        return math.exp(lp)  # reprolint: disable=P11
    """

    def test_unclamped_exp_return_in_core_fires(self, tmp_path):
        tree = self._tree(tmp_path, self.RAW_RETURN)
        assert hits(tree, ["P12"]) == ["P12 alg.py:5"]

    def test_unclamped_exp_return_in_sim_fires(self, tmp_path):
        tree = self._tree(tmp_path, self.RAW_RETURN, layer="sim")
        assert hits(tree, ["P12"]) == ["P12 alg.py:5"]

    def test_experiments_layer_is_exempt(self, tmp_path):
        tree = self._tree(tmp_path, self.RAW_RETURN, layer="experiments")
        assert hits(tree, ["P12"]) == []

    def test_min_clamp_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                lp = math.lgamma(n + 1)
                return min(1.0, math.exp(lp))
            """,
        )
        assert hits(tree, ["P12"]) == []

    def test_np_clip_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import numpy as np

            def f(xs) -> float:
                logs = np.log(xs)
                return np.clip(np.exp(logs), 0.0, 1.0)
            """,
        )
        assert hits(tree, ["P12"]) == []

    def test_domain_linear_annotation_excuses_return(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                lp = math.lgamma(n + 1)
                # domain: linear validated upstream by construction
                return math.exp(lp)  # reprolint: disable=P11
            """,
        )
        assert hits(tree, ["P12"]) == []

    def test_bare_domain_marker_without_reason_still_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                lp = math.lgamma(n + 1)
                # domain: linear
                return math.exp(lp)  # reprolint: disable=P11
            """,
        )
        assert hits(tree, ["P12"]) == ["P12 alg.py:6"]

    def test_interprocedural_raw_summary_fires_at_caller(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def _helper(n: int) -> float:
                lp = math.lgamma(n + 1)
                # reprolint: disable=P11, P12
                return math.exp(lp)

            def f(n: int) -> float:
                return _helper(n)
            """,
        )
        assert hits(tree, ["P12"]) == ["P12 alg.py:9"]

    def test_disable_comment_suppresses(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(n: int) -> float:
                lp = math.lgamma(n + 1)
                # reprolint: disable=P11, P12
                return math.exp(lp)
            """,
        )
        assert hits(tree, ["P12"]) == []

    def test_plain_probability_constant_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            def f() -> float:
                return 0.5
            """,
        )
        assert hits(tree, ["P12"]) == []


class TestP13NumericStability:
    def _tree(self, tmp_path, body: str, module: str = "core/alg.py"):
        return build_tree(tmp_path, PKG | {f"repro/{module}": body})

    def test_log_of_one_minus_x_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(x: float) -> float:
                return math.log(1.0 - x)
            """,
        )
        assert hits(tree, ["P13"]) == ["P13 alg.py:4"]

    def test_np_log_variant_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import numpy as np

            def f(x) -> float:
                return np.log(1 - x)
            """,
        )
        assert hits(tree, ["P13"]) == ["P13 alg.py:4"]

    def test_log_of_one_minus_exp_suggests_log1mexp(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(t: float) -> float:
                return math.log(1.0 - math.exp(t))
            """,
        )
        report_hits = hits(tree, ["P13"])
        assert report_hits == ["P13 alg.py:4"]

    def test_log1p_of_negated_exp_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(t: float) -> float:
                return math.log1p(-math.exp(t))
            """,
        )
        assert hits(tree, ["P13"]) == ["P13 alg.py:4"]

    def test_log_sum_exp_shape_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import numpy as np

            def f(logs) -> float:
                return np.log(np.sum(np.exp(logs)))
            """,
        )
        assert hits(tree, ["P13"]) == ["P13 alg.py:4"]

    def test_log1p_of_plain_negation_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(x: float) -> float:
                return math.log1p(-x)
            """,
        )
        assert hits(tree, ["P13"]) == []

    def test_lgamma_difference_outside_combinatorics_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(a: int, b: int) -> float:
                return math.lgamma(a + 1) - math.lgamma(b + 1)
            """,
        )
        assert hits(tree, ["P13"]) == ["P13 alg.py:4"]

    def test_lgamma_difference_inside_combinatorics_is_exempt(
        self, tmp_path
    ):
        tree = self._tree(
            tmp_path,
            """\
            import math

            def f(a: int, b: int) -> float:
                return math.lgamma(a + 1) - math.lgamma(b + 1)
            """,
            module="core/combinatorics.py",
        )
        assert hits(tree, ["P13"]) == []

    def test_division_by_unguarded_len_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            def f(xs) -> float:
                return sum(xs) / len(xs)
            """,
        )
        assert hits(tree, ["P13"]) == ["P13 alg.py:2"]

    def test_division_guarded_by_emptiness_check_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            def f(xs) -> float:
                if not xs:
                    return 0.0
                return sum(xs) / len(xs)
            """,
        )
        assert hits(tree, ["P13"]) == []

    def test_division_by_unguarded_size_fires(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            def f(xs) -> float:
                return float(xs.sum()) / xs.size
            """,
        )
        assert hits(tree, ["P13"]) == ["P13 alg.py:2"]

    def test_max_floored_denominator_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            def f(xs) -> float:
                return sum(xs) / max(1, len(xs))
            """,
        )
        assert hits(tree, ["P13"]) == []


class TestP14VectorizationReadiness:
    SCALAR_LOOP = """\
    import numpy as np

    def f(n: int) -> np.ndarray:
        out = np.zeros(n + 1)
        for i in range(n):
            out[i] = i / 2.0
        return out
    """

    def _tree(self, tmp_path, body: str, layer: str = "core"):
        return build_tree(
            tmp_path, PKG | {f"repro/{layer}/alg.py": body}
        )

    def test_scalar_loop_over_float_array_fires(self, tmp_path):
        tree = self._tree(tmp_path, self.SCALAR_LOOP)
        assert hits(tree, ["P14"]) == ["P14 alg.py:5"]

    def test_only_outermost_loop_of_a_nest_is_reported(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import numpy as np

            def f(n: int) -> np.ndarray:
                out = np.zeros((n, n))
                for i in range(n):
                    for j in range(n):
                        out[i, j] = i / (j + 1.0)
                return out
            """,
        )
        assert hits(tree, ["P14"]) == ["P14 alg.py:5"]

    def test_message_carries_iter_text_and_nest_depth(self, tmp_path):
        tree = self._tree(tmp_path, self.SCALAR_LOOP)
        report = lint_project([tree], select=["P14"])
        assert len(report.violations) == 1
        message = report.violations[0].message
        assert "`range(n)`" in message
        assert "nest depth 1" in message
        assert "alg.f" in message

    def test_while_loop_is_not_inventoried(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import numpy as np

            def f(n: int) -> np.ndarray:
                out = np.zeros(n)
                i = 0
                while i < n:
                    out[i] = i / 2.0
                    i += 1
                return out
            """,
        )
        assert hits(tree, ["P14"]) == []

    def test_attribute_subscript_store_is_not_inventoried(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            class Cache:
                def fill(self, n: int) -> None:
                    for i in range(n):
                        self.buf[i] = i / 2.0
            """,
        )
        assert hits(tree, ["P14"]) == []

    def test_sim_layer_loop_is_not_inventoried(self, tmp_path):
        tree = self._tree(tmp_path, self.SCALAR_LOOP, layer="sim")
        assert hits(tree, ["P14"]) == []

    def test_array_without_numeric_evidence_is_not_inventoried(
        self, tmp_path
    ):
        tree = self._tree(
            tmp_path,
            """\
            def f(xs, n: int) -> None:
                for i in range(n):
                    xs[i] = helper(i)

            def helper(i: int):
                return object()
            """,
        )
        assert hits(tree, ["P14"]) == []

    def test_append_only_loop_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            def f(n: int) -> list:
                out = []
                for i in range(n):
                    out.append(i / 2.0)
                return out
            """,
        )
        assert hits(tree, ["P14"]) == []

    def test_disable_comment_suppresses(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """\
            import numpy as np

            def f(n: int) -> np.ndarray:
                out = np.zeros(n + 1)
                # reprolint: disable=P14
                for i in range(n):
                    out[i] = i / 2.0
                return out
            """,
        )
        assert hits(tree, ["P14"]) == []
