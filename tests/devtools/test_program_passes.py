"""Unit tests for the whole-program passes (P1-P5).

Each test materialises a minimal ``repro``-shaped package under
``tmp_path`` and runs :func:`repro.devtools.lint_project` with
``select`` isolating one pass, asserting the pass fires on the
violating shape and stays quiet on the idiomatic alternative.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools import lint_project
from repro.devtools.program import ProgramContext, render_dot, render_graph_json
from repro.devtools.runner import default_consumer_roots


def build_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write ``files`` (relative paths -> source) and return the root."""
    for rel, code in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code), encoding="utf-8")
    return tmp_path / "repro"


def hits(tree: Path, select: list[str]) -> list[str]:
    report = lint_project([tree], select=select)
    return [
        f"{v.rule_id} {Path(v.path).name}:{v.line}"
        for v in report.violations
    ]


PKG = {
    "repro/__init__.py": "",
    "repro/core/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/cloudsim/__init__.py": "",
    "repro/experiments/__init__.py": "",
}


class TestP1ImportLayering:
    def test_core_importing_simulator_violates_contract(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/engine.py": "class Simulator:\n    pass\n",
                "repro/core/alg.py": (
                    "from repro.cloudsim.engine import Simulator\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 alg.py:1"]

    def test_core_external_budget_is_stdlib_plus_numpy(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/alg.py": (
                    "import math\nimport numpy as np\nimport scipy\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 alg.py:3"]

    def test_allowed_directions_are_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/alg.py": "def f() -> int:\n    return 1\n",
                "repro/sim/model.py": "from repro.core.alg import f\n",
                "repro/cloudsim/comp.py": (
                    "from repro.core.alg import f\n"
                    "from repro.sim.model import f as g\n"
                ),
                "repro/experiments/fig.py": (
                    "from repro.cloudsim.comp import f\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []

    def test_typing_only_imports_are_exempt(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/engine.py": "class Simulator:\n    pass\n",
                "repro/core/alg.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.cloudsim.engine import Simulator\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []

    def test_sim_reaching_into_cloudsim_violates(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/engine.py": "class Simulator:\n    pass\n",
                "repro/sim/model.py": (
                    "from repro.cloudsim.engine import Simulator\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 model.py:1"]

    def test_every_layer_may_import_obs(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/obs/__init__.py": "",
                "repro/obs/metrics.py": (
                    "class MetricsRegistry:\n    pass\n"
                ),
                "repro/core/alg.py": (
                    "from repro.obs.metrics import MetricsRegistry\n"
                ),
                "repro/sim/model.py": (
                    "from repro.obs.metrics import MetricsRegistry\n"
                ),
                "repro/cloudsim/comp.py": (
                    "from repro.obs.metrics import MetricsRegistry\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []

    def test_obs_importing_other_layers_violates(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/obs/__init__.py": "",
                "repro/core/alg.py": "def f() -> int:\n    return 1\n",
                "repro/obs/metrics.py": "from repro.core.alg import f\n",
            },
        )
        assert hits(tree, ["P1"]) == ["P1 metrics.py:1"]

    def test_obs_external_budget_is_stdlib_only(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/obs/__init__.py": "",
                "repro/obs/metrics.py": (
                    "import json\nimport math\nimport numpy\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == ["P1 metrics.py:3"]


class TestP2RngProvenance:
    def test_seed_forwarding_helper_called_without_seed(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/rngutil.py": """\
                import numpy as np

                def make_rng(seed=None):
                    return np.random.default_rng(seed)
                """,
                "repro/cloudsim/comp.py": """\
                from repro.core.rngutil import make_rng

                def build():
                    return make_rng()

                def seeded(seed: int):
                    return make_rng(seed)
                """,
            },
        )
        found = hits(tree, ["P2"])
        assert found == ["P2 comp.py:4"], found

    def test_leak_laundered_through_two_layers(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/rngutil.py": """\
                import numpy as np

                def make_rng(seed=None):
                    return np.random.default_rng(seed)

                def make_component_rng(seed=None):
                    return make_rng(seed)
                """,
                "repro/sim/model.py": """\
                from repro.core.rngutil import make_component_rng

                def scenario():
                    return make_component_rng()
                """,
            },
        )
        found = hits(tree, ["P2"])
        assert found == ["P2 model.py:4"], found

    def test_dataclass_default_factory_reference(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/state.py": """\
                from dataclasses import dataclass, field
                from numpy.random import default_rng

                @dataclass
                class State:
                    rng: object = field(default_factory=default_rng)
                """,
            },
        )
        found = hits(tree, ["P2"])
        assert len(found) == 1 and found[0].startswith("P2 state.py:6")

    def test_literal_no_arg_call_is_left_to_r1(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": """\
                import numpy as np

                def build():
                    return np.random.default_rng()
                """,
            },
        )
        # P2 stays silent on the literal site (R1's report) ...
        assert hits(tree, ["P2"]) == []
        # ... and R1 does flag it.
        assert hits(tree, ["R1"]) == ["R1 comp.py:4"]

    def test_explicitly_seeded_paths_are_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/rngutil.py": """\
                import numpy as np

                def make_rng(seed=None):
                    return np.random.default_rng(seed)
                """,
                "repro/cloudsim/comp.py": """\
                from repro.core.rngutil import make_rng

                def build(seed: int):
                    return make_rng(seed)

                def scenario():
                    return build(1234)
                """,
            },
        )
        assert hits(tree, ["P2"]) == []


SCHED_PRELUDE = """\
class Comp:
    def __init__(self, sim):
        self.sim = sim
        self.peers: set[str] = set()
        self.table: dict[str, int] = {}

"""


class TestP3UnorderedIteration:
    def test_set_iteration_feeding_schedule(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": SCHED_PRELUDE
                + """\
    def kick(self):
        for peer in self.peers:
            self.sim.schedule(1.0, peer)
""",
            },
        )
        found = hits(tree, ["P3"])
        assert found == ["P3 comp.py:8"], found

    def test_dict_view_iteration_feeding_schedule(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": SCHED_PRELUDE
                + """\
    def kick(self):
        for name, delay in self.table.items():
            self.sim.schedule(delay, name)
""",
            },
        )
        found = hits(tree, ["P3"])
        assert found == ["P3 comp.py:8"], found

    def test_sorted_iteration_is_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": SCHED_PRELUDE
                + """\
    def kick(self):
        for peer in sorted(self.peers):
            self.sim.schedule(1.0, peer)
        for name, delay in sorted(self.table.items()):
            self.sim.schedule(delay, name)
""",
            },
        )
        assert hits(tree, ["P3"]) == []

    def test_set_iteration_without_event_effect_is_clean(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": SCHED_PRELUDE
                + """\
    def census(self):
        return sum(1 for peer in self.peers if peer)
""",
            },
        )
        assert hits(tree, ["P3"]) == []

    def test_rng_draw_in_loop_is_flagged_even_without_schedule(
        self, tmp_path
    ):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/sim/model.py": """\
                def draw(rng, pool: set[str]):
                    out = []
                    for name in pool:
                        out.append((name, rng.integers(10)))
                    return out
                """,
            },
        )
        found = hits(tree, ["P3"])
        assert found == ["P3 model.py:3"], found

    def test_layer_scoping_ignores_core_and_experiments(self, tmp_path):
        code = SCHED_PRELUDE + """\
    def kick(self):
        for peer in self.peers:
            self.sim.schedule(1.0, peer)
"""
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/alg.py": code,
                "repro/experiments/fig.py": code,
            },
        )
        assert hits(tree, ["P3"]) == []


class TestP4WallClock:
    def test_time_read_in_simulator_is_flagged(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/clock.py": """\
                import time

                def stamp():
                    return time.time()
                """,
            },
        )
        assert hits(tree, ["P4"]) == ["P4 clock.py:4"]

    def test_from_import_alias_is_caught(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/sim/model.py": """\
                from time import perf_counter as tick

                def stamp():
                    return tick()
                """,
            },
        )
        assert hits(tree, ["P4"]) == ["P4 model.py:4"]

    def test_wall_clock_outside_simulator_is_allowed(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/experiments/bench.py": """\
                import time

                def stamp():
                    return time.time()
                """,
            },
        )
        assert hits(tree, ["P4"]) == []


class TestP5DeadExports:
    def test_broken_and_dead_exports(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/sim/__init__.py": """\
                from .model import used, unused

                __all__ = ["used", "unused", "ghost"]
                """,
                "repro/sim/model.py": (
                    "def used():\n    pass\n\ndef unused():\n    pass\n"
                ),
                "repro/experiments/fig.py": "from repro.sim import used\n",
            },
        )
        found = hits(tree, ["P5"])
        assert "P5 __init__.py:3" in found  # ghost and unused both line 3
        report = lint_project([tree], select=["P5"])
        messages = sorted(v.message for v in report.violations)
        assert any("ghost" in m and "broken export" in m for m in messages)
        assert any("unused" in m and "no cross-module use" in m
                   for m in messages)
        assert not any("`used`" in m for m in messages)

    def test_dotted_from_import_counts_as_facade_use(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/sim/__init__.py": (
                    "from . import model\n\n__all__ = [\"model\"]\n"
                ),
                "repro/sim/model.py": "def run():\n    pass\n",
                "repro/experiments/fig.py": (
                    "from repro.sim.model import run\n"
                ),
            },
        )
        assert hits(tree, ["P5"]) == []


class TestProjectSuppressions:
    def test_inline_disable_silences_one_site(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": SCHED_PRELUDE
                + """\
    def kick(self):
        for peer in self.peers:  # reprolint: disable=P3
            self.sim.schedule(1.0, peer)

    def kick2(self):
        for peer in self.peers:
            self.sim.schedule(1.0, peer)
""",
            },
        )
        found = hits(tree, ["P3"])
        assert found == ["P3 comp.py:12"], found

    def test_file_disable_silences_whole_module(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/cloudsim/comp.py": (
                    "# reprolint: disable-file=P3\n" + SCHED_PRELUDE
                )
                + """\
    def kick(self):
        for peer in self.peers:
            self.sim.schedule(1.0, peer)
""",
            },
        )
        assert hits(tree, ["P3"]) == []

    def test_p1_suppression_on_import_line(self, tmp_path):
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/alg.py": (
                    "import scipy  # reprolint: disable=P1\n"
                ),
            },
        )
        assert hits(tree, ["P1"]) == []


class TestGraphExports:
    def _program(self, tmp_path) -> ProgramContext:
        tree = build_tree(
            tmp_path,
            PKG
            | {
                "repro/core/alg.py": "def f() -> int:\n    return 1\n",
                "repro/sim/model.py": "from repro.core.alg import f\n",
            },
        )
        return ProgramContext.build(
            tree, consumer_roots=default_consumer_roots(tree)
        )

    def test_dot_render_clusters_by_layer(self, tmp_path):
        dot = render_dot(self._program(tmp_path))
        assert dot.startswith("digraph imports")
        assert 'label="core"' in dot
        assert '"repro.sim.model" -> "repro.core.alg"' in dot

    def test_json_render_carries_contract_and_counts(self, tmp_path):
        payload = render_graph_json(self._program(tmp_path))
        assert payload["layer_edge_counts"] == {"sim -> core": 1}
        assert set(payload["contract"]) >= {"core", "sim", "cloudsim"}
        names = {m["name"] for m in payload["modules"]}
        assert "repro.sim.model" in names
