"""The integration gate: ``src/repro`` must stay reprolint-clean.

This is the test that makes the invariants real for future PRs: any new
R1-R8 violation anywhere under ``src/repro`` fails the suite with the
rule ID and exact location, and the per-rule canary checks prove the
linter would actually catch a regression of each class (a silently
broken rule would otherwise let the clean-tree assertion rot).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import lint_paths, lint_project, render_text
from repro.devtools.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"

#: one minimal violating module per rule — the canary set
CANARIES = {
    "R1": "from __future__ import annotations\nimport numpy as np\n"
    "rng = np.random.default_rng()\n",
    "R2": "from __future__ import annotations\nimport math\n"
    "x = math.comb(10, 3)\n",
    "R3": "from __future__ import annotations\n"
    "def f(p: float) -> bool:\n    return p == 0.25\n",
    "R4": "from __future__ import annotations\n"
    "def f(a=[]) -> None:\n    a.append(1)\n",
    "R5": "x = 1\n",
    "R6": "from __future__ import annotations\n"
    "def plan(sizes):\n    return sizes\n",
    "R7": "from __future__ import annotations\n"
    "def plan(num_clients: int) -> int:\n    return num_clients\n",
    "R8": "from __future__ import annotations\n"
    "def f() -> None:\n    print('x')\n",
}


def test_src_repro_is_reprolint_clean():
    report = lint_paths([SRC])
    assert report.files_checked > 50
    assert report.ok, "\n" + render_text(report)


def test_src_repro_is_project_clean():
    """The whole-program passes (P1-P14) must hold on the tree.

    P14 graduated from ratchet to clean gate when the vectorized core
    landed: the committed ``.reprolint-p14-baseline.json`` is empty, so
    all fourteen passes must hold with nothing excused.
    """
    report = lint_project(
        [SRC], baseline_path=REPO_ROOT / ".reprolint-p14-baseline.json"
    )
    assert report.files_checked > 50
    assert len(report.project_rules) == 14
    assert report.ok, "\n" + render_text(report)
    assert not report.baselined


def test_numeric_passes_clean_without_baseline():
    """P11-P14 hold over the whole tree with *no* baseline: every real
    numeric-domain finding was fixed or carries a reasoned
    ``# domain:``/``disable=`` annotation at the site, and every hot
    numeric loop in src/repro is vectorized."""
    report = lint_project([SRC], select=["P11", "P12", "P13", "P14"])
    assert report.ok, "\n" + render_text(report)


def test_committed_baseline_holds_no_debt():
    """The ratchet file is committed and empty: new violations cannot
    hide behind it, and fixed ones cannot silently linger."""
    baseline = REPO_ROOT / ".reprolint-baseline.json"
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert payload["entries"] == []


def test_p14_baseline_is_exactly_the_current_inventory():
    """The committed P14 baseline is empty and the tree really is
    loop-free: the vectorization debt was burned to zero, and a
    regression can neither hide behind the file nor linger in it."""
    baseline = REPO_ROOT / ".reprolint-p14-baseline.json"
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert payload["entries"] == []
    report = lint_project(
        [SRC], select=["P14"], baseline_path=baseline
    )
    assert not report.violations, "\n" + render_text(report)
    assert not report.stale_baseline, "\n" + render_text(report)


@pytest.mark.parametrize("rule_id", sorted(CANARIES))
def test_new_violation_fails_with_rule_id_and_location(
    rule_id, tmp_path, capsys
):
    """Dropping one violating file into a copy of core/ must fail."""
    tree = tmp_path / "repro" / "core"
    tree.mkdir(parents=True)
    bad = tree / "freshly_broken.py"
    bad.write_text(CANARIES[rule_id], encoding="utf-8")
    exit_code = main([str(tmp_path / "repro")])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert rule_id in out
    line = next(l for l in out.splitlines() if rule_id in l)
    assert "freshly_broken.py" in line
    # path:line:col prefix present
    assert line.split(f" {rule_id} ")[0].count(":") >= 2


def test_console_entry_point_runs_against_src():
    """`repro-lint` behaves identically when invoked as a subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro.devtools.cli", str(SRC)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 violations" in result.stdout


def test_mypy_strict_core_is_clean():
    """Gate: runs only where mypy is installed (CI installs it)."""
    pytest.importorskip("mypy")
    if shutil.which("mypy") is None:  # pragma: no cover
        pytest.skip("mypy module present but no executable")
    result = subprocess.run(
        ["mypy", "--strict", "src/repro/core"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
