"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: property tests stay meaningful but the full
# suite remains fast enough to run on every change.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)
