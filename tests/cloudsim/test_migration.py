"""Tests for the Figure 12 migration-latency emulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloudsim.migration import (
    MigrationModel,
    PAGE_BYTES,
    simulate_migration,
)


class TestModelBasics:
    def test_page_size_matches_prototype(self):
        assert PAGE_BYTES == 246 * 1024

    def test_sample_fields(self, rng):
        model = MigrationModel()
        sample = model.simulate_once(10, rng)
        assert sample.n_clients == 10
        assert len(sample.per_client_times) == 10
        assert sample.total_time == max(sample.per_client_times)
        assert sample.per_client_mean == pytest.approx(
            np.mean(sample.per_client_times)
        )

    def test_total_at_least_mean(self, rng):
        model = MigrationModel()
        for n in (1, 5, 30):
            sample = model.simulate_once(n, rng)
            assert sample.total_time >= sample.per_client_mean

    def test_invalid_client_count(self, rng):
        with pytest.raises(ValueError):
            MigrationModel().simulate_once(0, rng)

    def test_transfer_time_positive_and_rtt_sensitive(self, rng):
        model = MigrationModel(bandwidth_sigma=0.01)
        fast = np.mean([model.transfer_time(rng, 0.01) for _ in range(200)])
        slow = np.mean([model.transfer_time(rng, 0.30) for _ in range(200)])
        assert 0 < fast < slow


class TestFigure12Shape:
    def test_total_time_grows_with_clients(self):
        means = []
        for n in (10, 30, 60):
            samples = simulate_migration(n, repetitions=10, seed=3)
            means.append(np.mean([s.total_time for s in samples]))
        assert means[0] < means[1] < means[2]

    def test_per_client_grows_slower_than_total(self):
        small = simulate_migration(10, repetitions=10, seed=4)
        large = simulate_migration(60, repetitions=10, seed=4)
        total_growth = np.mean(
            [s.total_time for s in large]
        ) / np.mean([s.total_time for s in small])
        per_client_growth = np.mean(
            [s.per_client_mean for s in large]
        ) / np.mean([s.per_client_mean for s in small])
        assert per_client_growth < total_growth

    def test_paper_calibration_ranges(self):
        """The paper's headline numbers: 60 clients < 5 s, mean 1-2.5 s."""
        samples = simulate_migration(60, repetitions=15, seed=5)
        total = np.mean([s.total_time for s in samples])
        per_client = np.mean([s.per_client_mean for s in samples])
        assert total < 5.0
        assert 1.0 <= per_client <= 2.5

    def test_reproducible_given_seed(self):
        first = simulate_migration(20, repetitions=3, seed=9)
        second = simulate_migration(20, repetitions=3, seed=9)
        assert [s.total_time for s in first] == [
            s.total_time for s in second
        ]
