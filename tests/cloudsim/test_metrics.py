"""Unit tests for the QoS metrics collector."""

from __future__ import annotations

import pytest

from repro.cloudsim.clients import BenignClient
from repro.cloudsim.metrics import MetricsCollector, QoSWindow, WindowSample
from repro.cloudsim.system import CloudConfig, CloudContext, CloudDefenseSystem
from repro.sim.qos import QoSWindow as SharedQoSWindow


@pytest.fixture
def ctx():
    return CloudContext(CloudConfig(), seed=95)


class TestWindowSample:
    def test_shared_schema_alias(self):
        # One comparison format: cloudsim's WindowSample IS the shared
        # record the live service telemetry emits.
        assert WindowSample is SharedQoSWindow
        assert QoSWindow is SharedQoSWindow

    def test_ratios(self):
        sample = WindowSample(
            time=1.0, benign_sent=10, benign_ok=8,
            latency_sum=1.6, latency_count=8, attacked_replicas=0,
            active_replicas=4, shuffles_completed=0,
        )
        assert sample.success_ratio == pytest.approx(0.8)
        assert sample.mean_latency == pytest.approx(0.2)

    def test_empty_window_defaults(self):
        sample = WindowSample(
            time=0.0, benign_sent=0, benign_ok=0,
            latency_sum=0.0, latency_count=0, attacked_replicas=0,
            active_replicas=0, shuffles_completed=0,
        )
        assert sample.success_ratio == 1.0
        assert sample.mean_latency == 0.0

    def test_failed_but_completed_latency_counts(self):
        """A failed request with a measured duration is part of the
        latency mean — an ok-only denominator would hide exactly the
        slow failures an attack produces."""
        sample = WindowSample(
            time=1.0, benign_sent=4, benign_ok=2,
            latency_sum=2.0, latency_count=4, attacked_replicas=1,
            active_replicas=4, shuffles_completed=0,
        )
        assert sample.mean_latency == pytest.approx(0.5)


class TestCollector:
    def test_records_per_kind(self, ctx):
        collector = MetricsCollector(ctx)
        benign = BenignClient(ctx, "u1")
        collector.record_request(benign, ok=True, latency=0.1)
        collector.record_request(benign, ok=False, latency=None)
        assert collector.benign_success_ratio() == pytest.approx(0.5)
        assert collector.totals["benign"]["sent"] == 2

    def test_failed_request_latency_not_dropped(self, ctx):
        """Regression: failed-but-completed requests used to vanish
        from the window latency sum entirely."""
        collector = MetricsCollector(ctx)
        benign = BenignClient(ctx, "u1")
        collector.record_request(benign, ok=True, latency=0.1)
        collector.record_request(benign, ok=False, latency=0.3)
        collector.record_request(benign, ok=False, latency=None)
        assert collector._window_latency == pytest.approx(0.4)
        assert collector._window_latency_count == 2
        assert collector.totals["benign"]["latency"] == pytest.approx(0.4)

    def test_unknown_kind_defaults_to_perfect(self, ctx):
        collector = MetricsCollector(ctx)
        assert collector.benign_success_ratio("persistent") == 1.0

    def test_snapshots_accumulate(self):
        system = CloudDefenseSystem(seed=96)
        system.add_benign_clients(10)
        system.run(duration=12.0)
        samples = system.ctx.metrics.samples
        assert len(samples) >= 10
        assert all(
            later.time > earlier.time
            for earlier, later in zip(samples, samples[1:])
        )

    def test_success_ratio_between_empty_slice(self, ctx):
        collector = MetricsCollector(ctx)
        assert collector.success_ratio_between(0.0, 1.0) == 1.0

    def test_stop_halts_snapshots(self):
        system = CloudDefenseSystem(seed=97)
        system.add_benign_clients(5)
        system.build()
        system.ctx.metrics.stop()
        system.run(duration=10.0)
        assert system.ctx.metrics.samples == []


class TestQosTimelineShape:
    def test_attack_dips_then_recovers(self):
        """The canonical defense story told by the timeline itself:
        success ratio collapses when the flood lands and is restored
        after the shuffles."""
        system = CloudDefenseSystem(
            CloudConfig(naive_pps=80_000.0), seed=98
        )
        system.add_benign_clients(80)
        system.add_persistent_bots(10)
        report = system.run(duration=200.0)
        assert report.shuffles >= 1
        ratios = [sample.success_ratio for sample in report.samples
                  if sample.benign_sent > 0]
        trough = min(ratios)
        tail = ratios[-20:]
        assert trough < 0.9  # the attack visibly hurt
        assert sum(tail) / len(tail) > 0.95  # and was healed
