"""Tests for replica servers: whitelists, capacity, redirects."""

from __future__ import annotations

import pytest

from repro.cloudsim.network import Endpoint
from repro.cloudsim.replica import ReplicaServer, ReplicaState
from repro.cloudsim.system import CloudConfig, CloudContext


@pytest.fixture
def ctx():
    return CloudContext(CloudConfig(), seed=0)


@pytest.fixture
def replica(ctx):
    server = ReplicaServer(
        ctx,
        Endpoint("cloud-0", "replica-t"),
        net_capacity=1000.0,
        cpu_capacity=100.0,
    )
    server.activate()
    return server


class TestLifecycle:
    def test_boots_inactive(self, ctx):
        server = ReplicaServer(ctx, Endpoint("cloud-0", "r"), 10, 10)
        assert server.state is ReplicaState.BOOTING
        assert not server.is_active
        server.activate()
        assert server.is_active

    def test_retire_clears_state(self, replica):
        replica.admit("c1", object())
        replica.receive_flood(500)
        replica.retire()
        assert replica.state is ReplicaState.RETIRED
        assert replica.n_clients == 0
        assert replica.net_utilization() == 0.0

    def test_retired_replica_null_routes_floods(self, replica):
        replica.retire()
        replica.receive_flood(10_000)
        assert replica.stats.flood_packets == 0.0


class TestWhitelist:
    def test_unwhitelisted_request_rejected(self, replica):
        outcomes = []
        replica.handle_request("stranger", 1.0,
                               lambda ok, t: outcomes.append(ok))
        assert outcomes == [False]
        assert replica.stats.requests_rejected == 1

    def test_whitelisted_request_served(self, replica):
        replica.admit("c1", object())
        outcomes = []
        replica.handle_request("c1", 1.0,
                               lambda ok, t: outcomes.append((ok, t)))
        assert outcomes[0][0] is True
        assert outcomes[0][1] > 0
        assert replica.stats.requests_served == 1

    def test_evict_removes_whitelist(self, replica):
        replica.admit("c1", object())
        replica.evict("c1")
        outcomes = []
        replica.handle_request("c1", 1.0,
                               lambda ok, t: outcomes.append(ok))
        assert outcomes == [False]

    def test_inactive_replica_serves_nothing(self, ctx):
        server = ReplicaServer(ctx, Endpoint("cloud-0", "r"), 10, 10)
        server.admit("c1", object())
        outcomes = []
        server.handle_request("c1", 1.0, lambda ok, t: outcomes.append(ok))
        assert outcomes == [False]


class TestOverload:
    def test_fresh_replica_not_overloaded(self, replica):
        assert not replica.overloaded()
        assert replica.drop_probability() == 0.0

    def test_flood_saturates_network(self, replica):
        # Dump far more than a second's capacity instantaneously.
        replica.receive_flood(50_000)
        assert replica.net_utilization() > 1.0
        assert replica.overloaded()
        assert replica.drop_probability() > 0.5

    def test_expensive_requests_saturate_cpu(self, ctx, replica):
        replica.admit("bot", object())
        for _ in range(40):
            replica.handle_request("bot", 25.0, lambda ok, t: None)
        assert replica.cpu_utilization() > 1.0
        assert replica.overloaded()

    def test_load_decays_over_time(self, ctx, replica):
        replica.receive_flood(50_000)
        high = replica.net_utilization()
        ctx.sim.run_until(60.0)
        assert replica.net_utilization() < high / 100

    def test_service_time_inflates_under_load(self, ctx, replica):
        replica.admit("c", object())
        light_times = []
        replica.handle_request("c", 1.0,
                               lambda ok, t: light_times.append(t))
        for _ in range(60):
            replica.cpu_meter.add(ctx.now, 25.0)
        heavy_times = []
        replica.handle_request("c", 1.0,
                               lambda ok, t: heavy_times.append(t))
        if heavy_times and heavy_times[0] > 0:
            assert heavy_times[0] > light_times[0]


class TestRedirects:
    def test_pushes_are_serialized(self, ctx, replica):
        delivered = []
        for position in range(5):
            replica.push_redirect(
                f"c{position}",
                Endpoint("cloud-1", "new"),
                deliver=lambda cid, ep: delivered.append((ctx.now, cid)),
                position=position,
            )
        ctx.sim.run_until(30.0)
        assert len(delivered) == 5
        times = [t for t, _ in delivered]
        assert times == sorted(times)
        assert replica.stats.redirects_sent == 5

    def test_overload_slows_pushes(self, ctx):
        cfg = CloudConfig()
        quiet_ctx = CloudContext(cfg, seed=1)
        quiet = ReplicaServer(
            quiet_ctx, Endpoint("cloud-0", "q"), 1000.0, 100.0
        )
        quiet.activate()
        busy_ctx = CloudContext(cfg, seed=1)
        busy = ReplicaServer(
            busy_ctx, Endpoint("cloud-0", "b"), 1000.0, 100.0
        )
        busy.activate()
        busy.receive_flood(1_000_000)

        quiet_times, busy_times = [], []
        for position in range(10):
            quiet.push_redirect(
                f"c{position}", Endpoint("cloud-1", "n"),
                lambda cid, ep: quiet_times.append(quiet_ctx.now),
                position,
            )
            busy.push_redirect(
                f"c{position}", Endpoint("cloud-1", "n"),
                lambda cid, ep: busy_times.append(busy_ctx.now),
                position,
            )
        quiet_ctx.sim.run_until(120.0)
        busy_ctx.sim.run_until(120.0)
        assert max(busy_times) > max(quiet_times)
