"""Tests for botnet hit-list management and flooding."""

from __future__ import annotations

import pytest

from repro.cloudsim.botnet import Botnet
from repro.cloudsim.network import Endpoint
from repro.cloudsim.replica import ReplicaServer
from repro.cloudsim.system import CloudConfig, CloudContext


@pytest.fixture
def ctx():
    return CloudContext(CloudConfig(), seed=0)


def make_replica(ctx, name):
    replica = ReplicaServer(ctx, Endpoint("cloud-0", name), 1000.0, 100.0)
    replica.activate()
    ctx.register_replica(replica)
    return replica


class TestHitList:
    def test_reveal_respects_propagation_delay(self, ctx):
        botnet = Botnet(ctx, naive_pps=100.0, propagation_delay=5.0)
        botnet.reveal("replica-x")
        assert botnet.targets() == []  # not propagated yet
        ctx.sim.run_until(6.0)
        assert botnet.targets() == ["replica-x"]

    def test_duplicate_reveals_are_idempotent(self, ctx):
        botnet = Botnet(ctx, naive_pps=100.0, propagation_delay=0.0)
        botnet.reveal("replica-x")
        first_entry = botnet.hit_list["replica-x"]
        botnet.reveal("replica-x")
        assert botnet.hit_list["replica-x"] is first_entry
        assert botnet.reveals == 2

    def test_forget(self, ctx):
        botnet = Botnet(ctx, naive_pps=100.0)
        botnet.reveal("replica-x")
        botnet.forget("replica-x")
        assert botnet.hit_list == {}


class TestFlooding:
    def test_flood_reaches_active_replica(self, ctx):
        replica = make_replica(ctx, "replica-x")
        botnet = Botnet(ctx, naive_pps=1000.0, propagation_delay=0.0)
        botnet.reveal("replica-x")
        botnet.start()
        ctx.sim.run_until(5.0)
        assert replica.stats.flood_packets > 0
        assert botnet.packets_effective > 0
        assert botnet.packets_wasted == 0

    def test_flood_to_retired_replica_is_wasted(self, ctx):
        replica = make_replica(ctx, "replica-x")
        botnet = Botnet(ctx, naive_pps=1000.0, propagation_delay=0.0,
                        prune_delay=1e9)
        botnet.reveal("replica-x")
        replica.retire()
        botnet.start()
        ctx.sim.run_until(5.0)
        assert botnet.packets_wasted > 0
        assert botnet.packets_effective == 0
        assert botnet.waste_ratio == 1.0

    def test_flood_splits_across_targets(self, ctx):
        first = make_replica(ctx, "replica-a")
        second = make_replica(ctx, "replica-b")
        botnet = Botnet(ctx, naive_pps=1000.0, propagation_delay=0.0)
        botnet.reveal("replica-a")
        botnet.reveal("replica-b")
        botnet.start()
        ctx.sim.run_until(4.0)
        assert first.stats.flood_packets == pytest.approx(
            second.stats.flood_packets
        )

    def test_prune_drops_dead_targets(self, ctx):
        replica = make_replica(ctx, "replica-x")
        botnet = Botnet(ctx, naive_pps=1000.0, propagation_delay=0.0,
                        prune_delay=3.0)
        botnet.reveal("replica-x")
        botnet.start()
        ctx.sim.run_until(1.0)
        replica.retire()
        ctx.sim.run_until(10.0)
        assert "replica-x" not in botnet.hit_list

    def test_stop_halts_flooding(self, ctx):
        replica = make_replica(ctx, "replica-x")
        botnet = Botnet(ctx, naive_pps=1000.0, propagation_delay=0.0)
        botnet.reveal("replica-x")
        botnet.start()
        ctx.sim.run_until(2.0)
        level = replica.stats.flood_packets
        botnet.stop()
        ctx.sim.run_until(10.0)
        assert replica.stats.flood_packets == level

    def test_waste_ratio_no_traffic(self, ctx):
        botnet = Botnet(ctx, naive_pps=1000.0)
        assert botnet.waste_ratio == 0.0
