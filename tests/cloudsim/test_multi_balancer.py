"""Tests for multiple load balancers per cloud domain (§III-B)."""

from __future__ import annotations

import pytest

from repro.cloudsim.loadbalancer import DomainDirectory, LoadBalancer
from repro.cloudsim.system import CloudConfig, CloudContext, CloudDefenseSystem


class TestDirectorySharing:
    def test_codomain_balancers_share_state(self):
        ctx = CloudContext(CloudConfig(), seed=81)
        first = LoadBalancer(ctx, "cloud-0", index=0)
        second = LoadBalancer(
            ctx, "cloud-0", index=1, directory=first.directory
        )
        replica = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        first.register_replica(replica)
        # The second frontend sees the replica without registering it.
        assert second.active_replicas() == [replica]
        # And sticky memory written through one is read through the other.
        target = first.assign("c1", object())
        assert second.assign("c1", object()) == target

    def test_distinct_endpoints(self):
        ctx = CloudContext(CloudConfig(), seed=82)
        directory = DomainDirectory("cloud-0")
        frontends = [
            LoadBalancer(ctx, "cloud-0", index=i, directory=directory)
            for i in range(3)
        ]
        addresses = {lb.endpoint.address for lb in frontends}
        assert len(addresses) == 3


class TestSystemWithMultipleBalancers:
    def test_dns_spreads_over_all_frontends(self):
        config = CloudConfig(n_domains=2, balancers_per_domain=3)
        system = CloudDefenseSystem(config, seed=83)
        system.build()
        seen = {
            system.ctx.dns.resolve(system.ctx.dns.service_name).address
            for _ in range(12)
        }
        assert len(seen) == 6  # 2 domains x 3 frontends

    def test_sticky_sessions_across_frontends(self):
        """A client landing on a different frontend keeps its replica."""
        config = CloudConfig(n_domains=1, balancers_per_domain=3,
                             initial_replicas_per_domain=4)
        system = CloudDefenseSystem(config, seed=84)
        system.build()
        frontends = system.ctx.domain_balancers["cloud-0"]
        first = frontends[0].assign("client-x", object())
        for other in frontends[1:]:
            assert other.assign("client-x", object()) == first

    def test_full_run_with_multiple_balancers(self):
        config = CloudConfig(balancers_per_domain=2)
        system = CloudDefenseSystem(config, seed=85)
        system.add_benign_clients(50)
        system.add_persistent_bots(5)
        report = system.run(duration=120.0)
        assert report.shuffles >= 1
        assert report.benign_success_last_quarter > 0.9
        # Every frontend handled some joins (round-robin DNS).
        assigned = [
            lb.clients_assigned
            for frontends in system.ctx.domain_balancers.values()
            for lb in frontends
        ]
        assert sum(1 for count in assigned if count > 0) >= 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CloudConfig(balancers_per_domain=0)
