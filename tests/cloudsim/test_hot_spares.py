"""Tests for hot-spare replicas (paper Section III-C)."""

from __future__ import annotations

from repro.cloudsim.clients import BenignClient
from repro.cloudsim.loadbalancer import LoadBalancer
from repro.cloudsim.system import CloudConfig, CloudContext


def make_ctx(**overrides):
    config = CloudConfig(
        boot_delay=5.0,
        detection_interval=0.5,
        migration_grace=1.0,
        shuffle_replicas=3,
        **overrides,
    )
    ctx = CloudContext(config, seed=41)
    for domain in ctx.domains:
        balancer = LoadBalancer(ctx, domain)
        ctx.balancers[domain] = balancer
        ctx.dns.register(balancer)
    return ctx


def attack_with_clients(ctx, n_clients=6):
    victim = ctx.coordinator.new_replica("cloud-0", activate_now=True)
    for index in range(n_clients):
        client = BenignClient(ctx, f"c{index}")
        client.replica_endpoint = victim.endpoint
        victim.admit(client.client_id, client)
    victim.receive_flood(1_000_000)
    return victim


class TestProvisioning:
    def test_spares_boot_hidden(self):
        ctx = make_ctx()
        ctx.coordinator.provision_spares(3)
        assert ctx.coordinator.spare_count == 3
        ctx.sim.run_until(6.0)
        # Booted, tracked, but not advertised to any load balancer.
        for balancer in ctx.balancers.values():
            assert balancer.active_replicas() == []

    def test_claim_returns_none_before_boot(self):
        ctx = make_ctx()
        ctx.coordinator.provision_spares(2)
        assert ctx.coordinator._claim_spare() is None  # still booting

    def test_claim_registers_with_balancer(self):
        ctx = make_ctx()
        ctx.coordinator.provision_spares(1)
        ctx.sim.run_until(6.0)
        replica = ctx.coordinator._claim_spare()
        assert replica is not None
        balancer = ctx.balancers[replica.endpoint.domain]
        assert replica in balancer.active_replicas()
        assert ctx.coordinator.spare_count == 0


class TestShuffleLatency:
    def test_spares_remove_boot_delay_from_shuffle(self):
        # Without spares the shuffle waits out boot_delay=5 s.
        cold_ctx = make_ctx()
        attack_with_clients(cold_ctx)
        cold_ctx.coordinator.start_monitoring()
        cold_ctx.sim.run_until(40.0)
        cold = cold_ctx.coordinator.shuffles[0]
        cold_latency = cold.completed_at - cold.started_at

        # With pre-booted spares the replacement set is ready instantly.
        hot_ctx = make_ctx(hot_spares=4)
        hot_ctx.coordinator.provision_spares(4)
        hot_ctx.sim.run_until(6.0)  # let the spares boot before the attack
        attack_with_clients(hot_ctx)
        hot_ctx.coordinator.start_monitoring()
        hot_ctx.sim.run_until(46.0)
        hot = hot_ctx.coordinator.shuffles[0]
        hot_latency = hot.completed_at - hot.started_at

        assert hot_latency < cold_latency - 3.0  # the 5 s boot vanished

    def test_spares_replenished_after_shuffle(self):
        ctx = make_ctx(hot_spares=3)
        ctx.coordinator.provision_spares(3)
        ctx.sim.run_until(6.0)
        attack_with_clients(ctx)
        ctx.coordinator.start_monitoring()
        ctx.sim.run_until(40.0)
        assert ctx.coordinator.shuffle_count >= 1
        assert ctx.coordinator.spare_count == 3

    def test_partial_spares_mix_with_boots(self):
        ctx = make_ctx(hot_spares=1)
        ctx.coordinator.provision_spares(1)
        ctx.sim.run_until(6.0)
        attack_with_clients(ctx, n_clients=9)
        ctx.coordinator.start_monitoring()
        ctx.sim.run_until(40.0)
        record = ctx.coordinator.shuffles[0]
        # shuffle_replicas=3: one spare claimed + two fresh boots.
        assert len(record.new_replicas) == 3
        for address in record.new_replicas:
            replica = ctx.replica_by_address(address)
            assert replica.is_active
