"""Tests for the Section VII resilience claims: spoofing and scanning."""

from __future__ import annotations

import pytest

from repro.cloudsim.recon import ReconnaissanceScanner, SpoofingFlooder
from repro.cloudsim.system import CloudConfig, CloudDefenseSystem


def make_system(**config_kwargs):
    system = CloudDefenseSystem(CloudConfig(**config_kwargs), seed=31)
    system.build()
    return system


class TestSpoofingFlooder:
    def test_spoofed_flood_never_reaches_replicas(self):
        """Paper: spoofed sources cannot complete the redirect handshake,
        so replicas see none of their traffic."""
        system = make_system()
        flooder = SpoofingFlooder(system.ctx, packets_per_second=50_000.0)
        flooder.start()
        system.ctx.sim.run_until(30.0)
        assert flooder.packets_sent > 1_000_000
        assert flooder.replica_addresses_learned == 0
        for replica in system.ctx.all_replicas():
            assert replica.stats.flood_packets == 0.0
            assert replica.net_utilization() == 0.0
        # The junk landed on the (absorbing) load balancers instead.
        absorbed = sum(
            balancer.spoofed_packets
            for balancer in system.ctx.balancers.values()
        )
        assert absorbed == pytest.approx(flooder.packets_sent)

    def test_no_shuffles_triggered_by_spoofing(self):
        system = make_system()
        flooder = SpoofingFlooder(system.ctx, packets_per_second=100_000.0)
        flooder.start()
        system.ctx.sim.run_until(30.0)
        assert system.ctx.coordinator.shuffle_count == 0

    def test_stop(self):
        system = make_system()
        flooder = SpoofingFlooder(system.ctx)
        flooder.start()
        system.ctx.sim.run_until(5.0)
        sent = flooder.packets_sent
        flooder.stop()
        system.ctx.sim.run_until(15.0)
        assert flooder.packets_sent == sent


class TestReconnaissanceScanner:
    def test_hit_probability_matches_pool_ratio(self):
        system = make_system(n_domains=2, initial_replicas_per_domain=2)
        scanner = ReconnaissanceScanner(system.ctx, pool_size=1_000)
        assert scanner.hit_probability() == pytest.approx(4 / 1_000)

    def test_discoveries_are_whitelist_rejected(self):
        """Even a lucky scan hit cannot consume application service."""
        system = make_system()
        scanner = ReconnaissanceScanner(
            system.ctx, pool_size=100, probes_per_second=500.0,
        )
        scanner.start()
        system.ctx.sim.run_until(20.0)
        assert scanner.report.hits > 0  # the pool is tiny; hits happen
        assert scanner.report.admitted_requests == 0
        rejected = sum(
            replica.stats.requests_rejected
            for replica in system.ctx.all_replicas()
        )
        assert rejected >= scanner.report.hits

    def test_discoveries_go_stale_after_substitution(self):
        """Moving targets rot the scanner's notebook."""
        system = make_system()
        scanner = ReconnaissanceScanner(
            system.ctx, pool_size=50, probes_per_second=200.0,
        )
        scanner.start()
        system.ctx.sim.run_until(10.0)
        assert scanner.report.hits > 0
        assert scanner.stale_fraction() == 0.0
        # Force a substitution cycle of every active replica.
        for replica in list(system.ctx.active_replicas()):
            replacement = system.ctx.coordinator.new_replica(
                replica.endpoint.domain, activate_now=True
            )
            assert replacement.is_active
            system.ctx.retire_replica(replica)
        assert scanner.stale_fraction() == 1.0

    def test_scanner_against_large_pool_rarely_hits(self):
        system = make_system()
        scanner = ReconnaissanceScanner(
            system.ctx, pool_size=1_000_000, probes_per_second=1_000.0,
        )
        scanner.start()
        system.ctx.sim.run_until(30.0)
        assert scanner.report.probes > 25_000
        # 4 replicas in a million-address pool: hits are essentially nil.
        assert scanner.report.hits <= 2

    def test_validation(self):
        system = make_system()
        with pytest.raises(ValueError):
            ReconnaissanceScanner(system.ctx, pool_size=0)
