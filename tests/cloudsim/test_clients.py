"""Tests for benign clients, persistent bots and on-off bots."""

from __future__ import annotations

import pytest

from repro.cloudsim.botnet import Botnet
from repro.cloudsim.clients import BenignClient, OnOffBot, PersistentBot
from repro.cloudsim.loadbalancer import LoadBalancer
from repro.cloudsim.network import Endpoint
from repro.cloudsim.system import CloudConfig, CloudContext


@pytest.fixture
def ctx():
    config = CloudConfig(think_time=0.5, reveal_delay=0.2)
    context = CloudContext(config, seed=0)
    for domain in context.domains:
        balancer = LoadBalancer(context, domain)
        context.balancers[domain] = balancer
        context.dns.register(balancer)
    context.coordinator.new_replica("cloud-0", activate_now=True)
    context.coordinator.new_replica("cloud-1", activate_now=True)
    return context


class TestBenignClient:
    def test_join_assigns_replica(self, ctx):
        client = BenignClient(ctx, "u1")
        client.join()
        ctx.sim.run_until(2.0)
        assert client.replica_endpoint is not None
        replica = ctx.replica_at(client.replica_endpoint)
        assert "u1" in replica.whitelist

    def test_requests_succeed_on_healthy_replica(self, ctx):
        client = BenignClient(ctx, "u1")
        client.join()
        ctx.sim.run_until(30.0)
        assert client.stats.requests_sent > 10
        assert client.stats.success_ratio > 0.95
        assert client.stats.mean_latency > 0

    def test_redirect_switches_replica(self, ctx):
        client = BenignClient(ctx, "u1")
        client.join()
        ctx.sim.run_until(2.0)
        new_endpoint = Endpoint("cloud-1", "replica-2")
        client.receive_redirect(new_endpoint)
        assert client.replica_endpoint == new_endpoint
        assert client.stats.migrations == 1

    def test_rejoins_when_replica_retired(self, ctx):
        client = BenignClient(ctx, "u1")
        client.join()
        ctx.sim.run_until(2.0)
        old = ctx.replica_at(client.replica_endpoint)
        ctx.retire_replica(old)
        ctx.sim.run_until(20.0)
        assert client.stats.rejoins >= 1
        assert client.replica_endpoint is not None
        assert client.replica_endpoint.address != old.endpoint.address

    def test_leave_evicts(self, ctx):
        client = BenignClient(ctx, "u1")
        client.join()
        ctx.sim.run_until(2.0)
        replica = ctx.replica_at(client.replica_endpoint)
        client.leave()
        assert "u1" not in replica.whitelist
        sent_before = client.stats.requests_sent
        ctx.sim.run_until(20.0)
        assert client.stats.requests_sent == sent_before

    def test_retry_when_no_replicas(self):
        config = CloudConfig(join_retry_delay=0.5)
        context = CloudContext(config, seed=0)
        balancer = LoadBalancer(context, context.domains[0])
        context.balancers[context.domains[0]] = balancer
        context.dns.register(balancer)
        client = BenignClient(context, "u1")
        client.join()
        context.sim.run_until(3.0)
        assert client.replica_endpoint is None
        # Replica appears; the retry loop should eventually land.
        context.coordinator.new_replica(context.domains[0],
                                        activate_now=True)
        context.sim.run_until(10.0)
        assert client.replica_endpoint is not None


class TestPersistentBot:
    def test_reveals_assignment_to_botnet(self, ctx):
        botnet = Botnet(ctx, naive_pps=0.0, propagation_delay=0.0)
        bot = PersistentBot(ctx, "b1", botnet)
        bot.join()
        ctx.sim.run_until(5.0)
        assert bot.replica_endpoint is not None
        assert bot.replica_endpoint.address in botnet.hit_list

    def test_reveals_again_after_redirect(self, ctx):
        botnet = Botnet(ctx, naive_pps=0.0, propagation_delay=0.0)
        bot = PersistentBot(ctx, "b1", botnet)
        bot.join()
        ctx.sim.run_until(5.0)
        target = Endpoint("cloud-1", "replica-2")
        bot.receive_redirect(target)
        ctx.sim.run_until(10.0)
        assert "replica-2" in botnet.hit_list

    def test_stale_reveal_suppressed(self, ctx):
        botnet = Botnet(ctx, naive_pps=0.0, propagation_delay=0.0)
        bot = PersistentBot(ctx, "b1", botnet)
        bot.join()
        ctx.sim.run_until(1.0)
        if bot.replica_endpoint is None:
            ctx.sim.run_until(3.0)
        original = bot.replica_endpoint.address
        # Redirect lands before the (exponential) reveal fires: the old
        # address must not be revealed afterwards.
        botnet.hit_list.clear()
        bot.receive_redirect(Endpoint("cloud-1", "replica-2"))
        ctx.sim.run_until(20.0)
        assert original not in botnet.hit_list

    def test_computational_bot_uses_attack_work(self, ctx):
        botnet = Botnet(ctx, naive_pps=0.0)
        bot = PersistentBot(ctx, "b1", botnet, computational=True)
        assert bot._request_work == ctx.config.attack_work


class TestOnOffBot:
    def test_goes_quiet_after_redirect(self, ctx):
        botnet = Botnet(ctx, naive_pps=0.0, propagation_delay=0.0)
        bot = OnOffBot(ctx, "b1", botnet, off_duration=50.0)
        bot.join()
        ctx.sim.run_until(5.0)
        botnet.hit_list.clear()
        bot.receive_redirect(Endpoint("cloud-1", "replica-2"))
        ctx.sim.run_until(20.0)  # still inside the off window
        assert "replica-2" not in botnet.hit_list

    def test_resumes_after_off_period(self, ctx):
        botnet = Botnet(ctx, naive_pps=0.0, propagation_delay=0.0)
        bot = OnOffBot(ctx, "b1", botnet, off_duration=10.0)
        bot.join()
        ctx.sim.run_until(5.0)
        botnet.hit_list.clear()
        bot.receive_redirect(Endpoint("cloud-1", "replica-2"))
        ctx.sim.run_until(40.0)  # past the off window
        assert "replica-2" in botnet.hit_list
