"""Tests for the redirecting load balancer."""

from __future__ import annotations

import pytest

from repro.cloudsim.loadbalancer import LoadBalancer
from repro.cloudsim.network import Endpoint
from repro.cloudsim.replica import ReplicaServer
from repro.cloudsim.system import CloudConfig, CloudContext


@pytest.fixture
def ctx():
    return CloudContext(CloudConfig(assignment_memory=100.0), seed=0)


@pytest.fixture
def balancer(ctx):
    return LoadBalancer(ctx, "cloud-0")


def make_replica(ctx, name, domain="cloud-0"):
    replica = ReplicaServer(ctx, Endpoint(domain, name), 1000.0, 100.0)
    replica.activate()
    return replica


class TestRegistry:
    def test_register_and_deregister(self, ctx, balancer):
        replica = make_replica(ctx, "r1")
        balancer.register_replica(replica)
        assert balancer.active_replicas() == [replica]
        balancer.deregister_replica("r1")
        assert balancer.active_replicas() == []

    def test_wrong_domain_rejected(self, ctx, balancer):
        replica = make_replica(ctx, "r1", domain="cloud-1")
        with pytest.raises(ValueError, match="domain"):
            balancer.register_replica(replica)

    def test_inactive_replicas_excluded(self, ctx, balancer):
        replica = make_replica(ctx, "r1")
        balancer.register_replica(replica)
        replica.retire()
        assert balancer.active_replicas() == []


class TestAssignment:
    def test_no_replicas_returns_none(self, balancer):
        assert balancer.assign("c1", object()) is None

    def test_assignment_whitelists_client(self, ctx, balancer):
        replica = make_replica(ctx, "r1")
        balancer.register_replica(replica)
        target = balancer.assign("c1", object())
        assert target == replica.endpoint
        assert "c1" in replica.whitelist

    def test_sticky_sessions(self, ctx, balancer):
        for name in ("r1", "r2", "r3"):
            balancer.register_replica(make_replica(ctx, name))
        first = balancer.assign("c1", object())
        for _ in range(5):
            assert balancer.assign("c1", object()) == first

    def test_least_loaded_spread(self, ctx, balancer):
        replicas = [make_replica(ctx, f"r{i}") for i in range(3)]
        for replica in replicas:
            balancer.register_replica(replica)
        for index in range(9):
            balancer.assign(f"c{index}", object())
        counts = sorted(r.n_clients for r in replicas)
        assert counts == [3, 3, 3]

    def test_reentry_pinned_within_memory(self, ctx, balancer):
        """Section VII: bots cannot reshuffle themselves by re-entering."""
        replicas = [make_replica(ctx, f"r{i}") for i in range(4)]
        for replica in replicas:
            balancer.register_replica(replica)
        first = balancer.assign("bot", object())
        # The bot "leaves" and re-enters shortly after.
        ctx.sim.run_until(10.0)
        again = balancer.assign("bot", object())
        assert again == first

    def test_memory_expires(self, ctx, balancer):
        replicas = [make_replica(ctx, f"r{i}") for i in range(2)]
        for replica in replicas:
            balancer.register_replica(replica)
        balancer.assign("c1", object())
        ctx.sim.run_until(200.0)  # beyond assignment_memory=100
        # Load the first replica so least-loaded picks differently.
        for index in range(4):
            balancer.assign(f"filler{index}", object())
        target = balancer.assign("c1", object())
        assert target is not None  # fresh assignment path taken

    def test_pinned_replica_gone_falls_through(self, ctx, balancer):
        replica = make_replica(ctx, "r1")
        balancer.register_replica(replica)
        balancer.assign("c1", object())
        replica.retire()
        balancer.deregister_replica("r1")
        fresh = make_replica(ctx, "r2")
        balancer.register_replica(fresh)
        target = balancer.assign("c1", object())
        assert target == fresh.endpoint

    def test_record_shuffle_assignment_updates_memory(self, ctx, balancer):
        r1, r2 = make_replica(ctx, "r1"), make_replica(ctx, "r2")
        balancer.register_replica(r1)
        balancer.register_replica(r2)
        balancer.assign("c1", object())
        balancer.record_shuffle_assignment("c1", r2)
        assert balancer.assign("c1", object()) == r2.endpoint

    def test_forget(self, ctx, balancer):
        replica = make_replica(ctx, "r1")
        balancer.register_replica(replica)
        balancer.assign("c1", object())
        balancer.forget("c1")
        assert "c1" not in balancer.assignments
