"""Robustness of the Figure 12 emulation to its calibration constants.

DESIGN.md §5.3 claims the *shape* of Figure 12 is a property of the
mechanism (serialized single-threaded pushes + per-client reload), not of
the calibrated constants.  These tests perturb every model parameter and
assert the shape survives: totals grow with the client count, the total
grows faster than the per-client mean, and ordering is preserved.
"""

from __future__ import annotations

import numpy as np
from repro.cloudsim.migration import MigrationModel, simulate_migration


def shape_holds(model: MigrationModel, seed: int = 0) -> None:
    counts = (10, 30, 60)
    totals, means = [], []
    for n in counts:
        samples = simulate_migration(
            n, repetitions=8, seed=seed, model=model
        )
        totals.append(np.mean([s.total_time for s in samples]))
        means.append(np.mean([s.per_client_mean for s in samples]))
    assert totals[0] < totals[1] < totals[2], "totals must rise"
    assert means[0] <= means[1] <= means[2] + 1e-9, "means must not fall"
    total_growth = totals[-1] / totals[0]
    mean_growth = means[-1] / means[0]
    assert total_growth > mean_growth, "serialization effect must show"


class TestParameterRobustness:
    def test_baseline(self):
        shape_holds(MigrationModel())

    def test_slow_clients(self):
        shape_holds(MigrationModel(bandwidth_median=150_000.0))

    def test_fast_clients(self):
        shape_holds(MigrationModel(bandwidth_median=5_000_000.0))

    def test_high_rtt(self):
        shape_holds(MigrationModel(client_rtt_median=0.200))

    def test_low_rtt(self):
        shape_holds(MigrationModel(client_rtt_median=0.020))

    def test_slow_server_pushes(self):
        shape_holds(MigrationModel(push_service_min=0.05,
                                   push_service_max=0.15))

    def test_fast_server_pushes(self):
        shape_holds(MigrationModel(push_service_min=0.005,
                                   push_service_max=0.015))

    def test_noisy_network(self):
        shape_holds(MigrationModel(rtt_sigma=0.8, bandwidth_sigma=0.9))


class TestCalibrationEnvelope:
    def test_default_constants_match_paper_envelope(self):
        """Only the *default* constants are calibrated to the paper's
        absolute numbers; perturbed models above keep the shape only."""
        samples = simulate_migration(60, repetitions=15, seed=2)
        total = np.mean([s.total_time for s in samples])
        per_client = np.mean([s.per_client_mean for s in samples])
        assert 2.0 < total < 5.0
        assert 1.0 < per_client < 2.5
