"""Tests for the structured tracing facility.

``cloudsim.trace`` is now a deprecated shim over ``repro.obs``; these
tests keep the legacy surface working verbatim, so the shim's
DeprecationWarning is expected and silenced module-wide (the warning
itself is asserted in ``tests/obs/test_obs_events.py``).
"""

from __future__ import annotations

import json

import pytest

from repro.cloudsim.system import CloudConfig, CloudDefenseSystem
from repro.cloudsim.trace import TraceEvent, Tracer

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestTracer:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", x=1)
        tracer.emit(2.0, "b", y=2)
        tracer.emit(3.0, "a", x=3)
        assert len(tracer) == 3
        assert [e.data["x"] for e in tracer.of_kind("a")] == [1, 3]
        assert [e.kind for e in tracer.between(1.5, 3.0)] == ["b", "a"]

    def test_kind_filter(self):
        tracer = Tracer(kinds=frozenset({"keep"}))
        tracer.emit(0.0, "keep", n=1)
        tracer.emit(0.0, "drop", n=2)
        assert len(tracer) == 1
        assert tracer.events[0].kind == "keep"

    def test_capacity_drops_oldest(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.emit(float(index), "tick", n=index)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert [e.data["n"] for e in tracer.events] == [3, 4]

    def test_jsonl_export(self):
        tracer = Tracer()
        tracer.emit(1.25, "thing", value="x")
        lines = tracer.to_jsonl().splitlines()
        record = json.loads(lines[0])
        assert record == {"time": 1.25, "kind": "thing", "value": "x"}

    def test_event_json_rounds_time(self):
        event = TraceEvent(time=1.23456789, kind="k", data={})
        assert json.loads(event.to_json())["time"] == 1.234568


class TestSystemIntegration:
    def test_untraced_run_works(self):
        system = CloudDefenseSystem(seed=1)
        system.add_benign_clients(10)
        report = system.run(duration=10.0)
        assert report.shuffles == 0  # and no tracer errors

    def test_attack_produces_trace_timeline(self):
        system = CloudDefenseSystem(CloudConfig(), seed=3)
        tracer = Tracer()
        system.ctx.attach_tracer(tracer)
        system.add_benign_clients(60)
        system.add_persistent_bots(6)
        system.run(duration=120.0)

        detections = tracer.of_kind("attack_detected")
        starts = tracer.of_kind("shuffle_started")
        completions = tracer.of_kind("shuffle_completed")
        retirements = tracer.of_kind("replica_retired")
        reveals = tracer.of_kind("botnet_reveal")

        assert detections and starts and completions
        assert len(starts) == len(completions)
        assert len(retirements) >= len(detections)
        assert reveals  # persistent bots betrayed addresses
        # Causality: each completion follows its start.
        for start, done in zip(starts, completions):
            assert done.time > start.time
            assert done.data["duration"] == pytest.approx(
                done.time - start.time, abs=1e-6
            )
        # Timeline is ordered.
        times = [event.time for event in tracer.events]
        assert times == sorted(times)

    def test_trace_filtering_in_system(self):
        system = CloudDefenseSystem(seed=4)
        tracer = Tracer(kinds=frozenset({"shuffle_completed"}))
        system.ctx.attach_tracer(tracer)
        system.add_benign_clients(40)
        system.add_persistent_bots(5)
        system.run(duration=90.0)
        kinds = {event.kind for event in tracer.events}
        assert kinds <= {"shuffle_completed"}

    def test_jsonl_of_real_run_parses(self):
        system = CloudDefenseSystem(seed=5)
        tracer = Tracer()
        system.ctx.attach_tracer(tracer)
        system.add_benign_clients(30)
        system.add_persistent_bots(4)
        system.run(duration=60.0)
        for line in tracer.to_jsonl().splitlines():
            record = json.loads(line)
            assert "time" in record and "kind" in record
