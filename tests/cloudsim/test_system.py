"""Tests for the CloudDefenseSystem facade and metrics collection."""

from __future__ import annotations

import pytest

from repro.cloudsim.system import CloudConfig, CloudDefenseSystem


class TestConfig:
    def test_defaults_valid(self):
        CloudConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudConfig(n_domains=0)
        with pytest.raises(ValueError):
            CloudConfig(shuffle_replicas=0)


class TestBuild:
    def test_topology(self):
        system = CloudDefenseSystem(CloudConfig(n_domains=3,
                                                initial_replicas_per_domain=2))
        system.build()
        assert len(system.ctx.balancers) == 3
        assert len(system.ctx.active_replicas()) == 6

    def test_build_idempotent(self):
        system = CloudDefenseSystem()
        system.build()
        replicas = len(system.ctx.all_replicas())
        system.build()
        assert len(system.ctx.all_replicas()) == replicas


class TestQuietOperation:
    def test_no_attack_no_shuffles(self):
        system = CloudDefenseSystem(seed=1)
        system.add_benign_clients(40)
        report = system.run(duration=60.0)
        assert report.shuffles == 0
        assert report.benign_success_overall > 0.95
        assert report.benign_migrations == 0.0
        assert report.naive_waste_ratio == 0.0

    def test_metrics_samples_cover_run(self):
        system = CloudDefenseSystem(seed=2)
        system.add_benign_clients(10)
        report = system.run(duration=30.0)
        assert len(report.samples) >= 25
        times = [s.time for s in report.samples]
        assert times == sorted(times)


class TestUnderAttack:
    def test_attack_triggers_shuffles_and_recovery(self):
        system = CloudDefenseSystem(seed=3)
        system.add_benign_clients(80)
        system.add_persistent_bots(8)
        report = system.run(duration=150.0)
        assert report.shuffles >= 1
        assert report.replicas_recycled >= 1
        # The tail of the run should be healthy again.
        assert report.benign_success_last_quarter > 0.9
        assert report.naive_waste_ratio > 0.0

    def test_computational_attack_detected(self):
        config = CloudConfig(naive_pps=0.0)  # no network flood at all
        system = CloudDefenseSystem(config, seed=4)
        system.add_benign_clients(40)
        system.add_persistent_bots(10, computational=True)
        report = system.run(duration=120.0)
        # CPU-exhaustion alone must still trigger the moving target.
        assert report.shuffles >= 1

    def test_report_describe(self):
        system = CloudDefenseSystem(seed=5)
        system.add_benign_clients(10)
        report = system.run(duration=20.0)
        text = report.describe()
        assert "shuffles=" in text
        assert "benign_ok=" in text
