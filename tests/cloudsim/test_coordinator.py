"""Tests for the coordination server's detection and shuffle pipeline."""

from __future__ import annotations

import pytest

from repro.cloudsim.clients import BenignClient
from repro.cloudsim.loadbalancer import LoadBalancer
from repro.cloudsim.replica import ReplicaState
from repro.cloudsim.system import CloudConfig, CloudContext


@pytest.fixture
def ctx():
    config = CloudConfig(
        boot_delay=1.0,
        detection_interval=0.5,
        migration_grace=2.0,
        shuffle_replicas=4,
    )
    context = CloudContext(config, seed=0)
    for domain in context.domains:
        balancer = LoadBalancer(context, domain)
        context.balancers[domain] = balancer
        context.dns.register(balancer)
    return context


def add_clients(ctx, replica, count, prefix="c"):
    clients = []
    for index in range(count):
        client = BenignClient(ctx, f"{prefix}{index}")
        client.replica_endpoint = replica.endpoint
        replica.admit(client.client_id, client)
        clients.append(client)
    return clients


class TestProvisioning:
    def test_new_replica_boots_after_delay(self, ctx):
        replica = ctx.coordinator.new_replica("cloud-0")
        assert not replica.is_active
        ctx.sim.run_until(2.0)
        assert replica.is_active

    def test_activate_now(self, ctx):
        replica = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        assert replica.is_active

    def test_unique_addresses(self, ctx):
        first = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        second = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        assert first.endpoint.address != second.endpoint.address

    def test_registered_with_balancer(self, ctx):
        replica = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        assert replica in ctx.balancers["cloud-0"].active_replicas()


class TestDetection:
    def test_overloaded_replica_detected(self, ctx):
        replica = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        replica.receive_flood(1_000_000)
        assert ctx.coordinator.attacked_replicas() == [replica]

    def test_quiet_replica_not_detected(self, ctx):
        ctx.coordinator.new_replica("cloud-0", activate_now=True)
        assert ctx.coordinator.attacked_replicas() == []


class TestShuffleOperation:
    def test_full_shuffle_pipeline(self, ctx):
        victim = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        clients = add_clients(ctx, victim, 12)
        victim.receive_flood(1_000_000)
        ctx.coordinator.start_monitoring()
        ctx.sim.run_until(30.0)

        # One shuffle happened, the victim was retired, and every client
        # now points at a fresh, active replica that whitelists it.
        assert ctx.coordinator.shuffle_count >= 1
        assert victim.state is ReplicaState.RETIRED
        record = ctx.coordinator.shuffles[0]
        assert record.n_clients == 12
        assert sum(record.group_sizes) == 12
        assert record.completed_at is not None
        assert record.completed_at > record.started_at
        for client in clients:
            assert client.replica_endpoint is not None
            assert client.replica_endpoint.address != victim.endpoint.address
            new_replica = ctx.replica_at(client.replica_endpoint)
            assert new_replica.is_active
            assert client.client_id in new_replica.whitelist
            assert client.stats.migrations >= 1

    def test_unattacked_replicas_not_shuffled(self, ctx):
        victim = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        bystander = ctx.coordinator.new_replica("cloud-1", activate_now=True)
        add_clients(ctx, victim, 6, prefix="v")
        safe_clients = add_clients(ctx, bystander, 6, prefix="s")
        victim.receive_flood(1_000_000)
        ctx.coordinator.start_monitoring()
        ctx.sim.run_until(30.0)
        assert bystander.is_active
        for client in safe_clients:
            assert client.replica_endpoint == bystander.endpoint
            assert client.stats.migrations == 0

    def test_empty_attacked_replica_just_replaced(self, ctx):
        victim = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        victim.receive_flood(1_000_000)
        ctx.coordinator.start_monitoring()
        ctx.sim.run_until(10.0)
        assert victim.state is ReplicaState.RETIRED
        assert ctx.coordinator.shuffle_count >= 1
        assert ctx.coordinator.shuffles[0].n_clients == 0

    def test_shuffle_replica_cap(self, ctx):
        victim = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        add_clients(ctx, victim, 2)  # fewer clients than shuffle_replicas=4
        victim.receive_flood(1_000_000)
        ctx.coordinator.start_monitoring()
        ctx.sim.run_until(20.0)
        record = ctx.coordinator.shuffles[0]
        assert len(record.new_replicas) == 2  # capped at client count

    def test_estimates_recorded(self, ctx):
        victim = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        add_clients(ctx, victim, 8)
        victim.receive_flood(1_000_000)
        ctx.coordinator.start_monitoring()
        ctx.sim.run_until(20.0)
        record = ctx.coordinator.shuffles[0]
        assert 1 <= record.estimated_bots <= 8

    def test_monitoring_stop(self, ctx):
        victim = ctx.coordinator.new_replica("cloud-0", activate_now=True)
        ctx.coordinator.start_monitoring()
        ctx.coordinator.stop_monitoring()
        victim.receive_flood(1_000_000)
        ctx.sim.run_until(10.0)
        assert ctx.coordinator.shuffle_count == 0
