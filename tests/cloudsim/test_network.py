"""Tests for the latency model and load meters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloudsim.network import Endpoint, LatencyModel, LoadMeter


class TestEndpoint:
    def test_same_domain(self):
        a = Endpoint("cloud-0", "replica-1")
        b = Endpoint("cloud-0", "replica-2")
        c = Endpoint("cloud-1", "replica-3")
        assert a.same_domain(b)
        assert not a.same_domain(c)

    def test_hashable_identity(self):
        a = Endpoint("cloud-0", "replica-1")
        assert a == Endpoint("cloud-0", "replica-1")
        assert len({a, Endpoint("cloud-0", "replica-1")}) == 1


class TestLatencyModel:
    def test_positive_latencies(self, rng):
        model = LatencyModel()
        a = Endpoint("cloud-0", "x")
        b = Endpoint("internet", "y")
        for _ in range(100):
            assert model.one_way(a, b, rng) > 0

    def test_intra_domain_faster_than_inter(self, rng):
        model = LatencyModel()
        local = Endpoint("cloud-0", "x"), Endpoint("cloud-0", "y")
        remote = Endpoint("cloud-0", "x"), Endpoint("internet", "y")
        local_mean = np.mean(
            [model.one_way(*local, rng) for _ in range(300)]
        )
        remote_mean = np.mean(
            [model.one_way(*remote, rng) for _ in range(300)]
        )
        assert local_mean < remote_mean / 5

    def test_round_trip_roughly_double(self, rng):
        model = LatencyModel(sigma=0.01)
        a, b = Endpoint("cloud-0", "x"), Endpoint("internet", "y")
        one = np.mean([model.one_way(a, b, rng) for _ in range(500)])
        rtts = np.mean([model.round_trip(a, b, rng) for _ in range(500)])
        assert rtts == pytest.approx(2 * one, rel=0.1)


class TestLoadMeter:
    def test_rate_after_burst(self):
        meter = LoadMeter(half_life=2.0)
        meter.add(0.0, 100.0)
        # Immediately after, rate ~ amount / (half_life / ln 2).
        expected = 100.0 / (2.0 / np.log(2))
        assert meter.rate(0.0) == pytest.approx(expected)

    def test_decay_halves_per_half_life(self):
        meter = LoadMeter(half_life=2.0)
        meter.add(0.0, 100.0)
        early = meter.rate(0.0)
        late = meter.rate(2.0)
        assert late == pytest.approx(early / 2)

    def test_steady_stream_estimates_rate(self):
        meter = LoadMeter(half_life=1.0)
        # 50 units per 0.1 s = 500 units/s steady state.
        for step in range(200):
            meter.add(step * 0.1, 50.0)
        assert meter.rate(19.9) == pytest.approx(500.0, rel=0.1)

    def test_time_backwards_rejected(self):
        meter = LoadMeter()
        meter.add(5.0, 1.0)
        with pytest.raises(ValueError):
            meter.add(4.0, 1.0)

    def test_reset(self):
        meter = LoadMeter()
        meter.add(0.0, 10.0)
        meter.reset()
        assert meter.rate(0.0) == 0.0
