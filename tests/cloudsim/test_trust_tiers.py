"""The trust ladder mirrored into the simulated cloud.

Same :class:`repro.trust.TrustManager` as the live service, clocked by
sim-time: replicas consult the tier gate between whitelist and load
accounting, shuffle rounds trace a per-cohort tier census, and the run
report carries the final tier table.
"""

from __future__ import annotations

import pytest

from repro.cloudsim.system import CloudConfig, CloudDefenseSystem
from repro.obs import EventLog
from repro.trust import TIER_NAMES


def run_system(
    seed: int, trust_enabled: bool, tracer: EventLog | None = None
):
    system = CloudDefenseSystem(
        CloudConfig(trust_enabled=trust_enabled), seed=seed
    )
    if tracer is not None:
        system.ctx.attach_tracer(tracer)
    system.add_benign_clients(30)
    system.add_persistent_bots(5)
    return system, system.run(duration=60.0)


class TestDisabledDefault:
    def test_no_trust_state_and_none_in_report(self):
        system, report = run_system(seed=5, trust_enabled=False)
        assert system.ctx.trust is None
        assert report.trust_tiers is None


class TestEnabled:
    def test_population_lands_in_tier_table(self):
        system, report = run_system(seed=5, trust_enabled=True)
        assert system.ctx.trust is not None
        assert report.trust_tiers is not None
        assert tuple(report.trust_tiers) == TIER_NAMES
        # Every client that issued a request has a profile; the census
        # covers the whole profiled population.
        assert sum(report.trust_tiers.values()) == len(system.ctx.trust)
        assert sum(report.trust_tiers.values()) >= 30

    def test_replicas_share_the_context_manager(self):
        system, _ = run_system(seed=5, trust_enabled=True)
        for replica in system.ctx.all_replicas():
            assert replica.ctx.trust is system.ctx.trust

    def test_shuffles_trace_a_cohort_census(self):
        tracer = EventLog(source="cloudsim")
        _, report = run_system(seed=5, trust_enabled=True, tracer=tracer)
        assert report.shuffles > 0
        snapshots = list(tracer.of_kind("trust_snapshot"))
        assert snapshots, "attacked cohorts should be traced"
        for event in snapshots:
            assert event.data["clients"] == sum(
                event.data["tiers"].values()
            )
            assert 0.0 <= event.data["mean_trust"] <= 1.0

    def test_same_seed_same_run_with_trust(self):
        def fingerprint(seed: int):
            system, report = run_system(seed, trust_enabled=True)
            return (
                report.shuffles,
                report.benign_success_overall,
                report.trust_tiers,
                system.ctx.sim.events_processed,
            )

        assert fingerprint(41) == fingerprint(41)

    def test_gated_requests_are_counted_separately(self):
        """The gate statistic exists on every replica even when the
        default tunables never demote anyone (cloudsim's paced bots
        stay under the violation rate)."""
        system, _ = run_system(seed=5, trust_enabled=True)
        for replica in system.ctx.all_replicas():
            assert replica.stats.requests_gated >= 0


def test_trust_flag_validates_like_any_cloud_config_field():
    config = CloudConfig(trust_enabled=True)
    assert config.trust_enabled is True
    with pytest.raises(TypeError):
        CloudConfig(trust_enabled=True, not_a_field=1)
