"""Tests for fault injection, healing, and scale-down."""

from __future__ import annotations

from repro.cloudsim.faults import ChaosMonkey
from repro.cloudsim.replica import ReplicaState
from repro.cloudsim.system import CloudConfig, CloudDefenseSystem
from repro.cloudsim.trace import Tracer


class TestReplicaFail:
    def test_fail_clears_state(self):
        system = CloudDefenseSystem(seed=61)
        system.build()
        replica = system.ctx.active_replicas()[0]
        replica.admit("c1", object())
        system.ctx.fail_replica(replica)
        assert replica.state is ReplicaState.FAILED
        assert not replica.is_active
        assert replica.n_clients == 0
        balancer = system.ctx.balancers[replica.endpoint.domain]
        assert replica.endpoint.address not in balancer.replicas


class TestHealing:
    def test_failed_replica_is_replaced(self):
        system = CloudDefenseSystem(CloudConfig(boot_delay=1.0), seed=62)
        system.build()
        victim = system.ctx.active_replicas()[0]
        domain = victim.endpoint.domain
        system.ctx.fail_replica(victim)
        system.ctx.sim.run_until(10.0)
        balancer = system.ctx.balancers[domain]
        assert (
            len(balancer.active_replicas())
            >= system.config.initial_replicas_per_domain
        )

    def test_clients_recover_from_crash(self):
        system = CloudDefenseSystem(CloudConfig(boot_delay=1.0), seed=63)
        system.add_benign_clients(30)
        system.ctx.sim.run_until(10.0)
        victim = max(
            system.ctx.active_replicas(), key=lambda r: r.n_clients
        )
        assert victim.n_clients > 0
        system.ctx.fail_replica(victim)
        report = system.run(duration=60.0)
        # Everyone who lost their replica re-entered and resumed service.
        rejoins = sum(client.stats.rejoins for client in system.benign)
        assert rejoins > 0
        assert report.benign_success_last_quarter > 0.9

    def test_scale_down_after_attack(self):
        """Post-mitigation the fleet shrinks back toward the baseline."""
        system = CloudDefenseSystem(CloudConfig(boot_delay=1.0), seed=64)
        system.add_benign_clients(60)
        system.add_persistent_bots(6)
        system.run(duration=300.0)
        baseline_total = (
            system.config.n_domains
            * system.config.initial_replicas_per_domain
        )
        active = len(system.ctx.active_replicas())
        # Shuffles ballooned the fleet mid-attack; idle extras get retired
        # afterwards.  Clients keep some above-baseline replicas alive, so
        # allow headroom — the point is it is far below the attack peak.
        assert active < baseline_total + system.config.shuffle_replicas * 3


class TestChaosMonkey:
    def test_crashes_happen_and_service_survives(self):
        system = CloudDefenseSystem(CloudConfig(boot_delay=1.0), seed=65)
        tracer = Tracer()
        system.ctx.attach_tracer(tracer)
        system.add_benign_clients(40)
        monkey = ChaosMonkey(system.ctx, crash_rate=0.2)
        monkey.start()
        report = system.run(duration=120.0)
        assert monkey.crashes > 5
        assert len(tracer.of_kind("replica_crashed")) == monkey.crashes
        # Availability dips but the healing loop keeps the service alive.
        assert report.benign_success_overall > 0.7
        assert len(system.ctx.active_replicas()) >= 1

    def test_stop(self):
        system = CloudDefenseSystem(seed=66)
        system.build()
        monkey = ChaosMonkey(system.ctx, crash_rate=5.0)
        monkey.start()
        system.ctx.sim.run_until(5.0)
        crashed = monkey.crashes
        monkey.stop()
        system.ctx.sim.run_until(20.0)
        assert monkey.crashes == crashed
