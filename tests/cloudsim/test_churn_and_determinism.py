"""Tests for benign churn and whole-simulation determinism."""

from __future__ import annotations

import pytest

from repro.cloudsim.system import CloudConfig, CloudDefenseSystem


class TestChurn:
    def test_churn_populates_and_departs(self):
        system = CloudDefenseSystem(seed=51)
        system.enable_churn(arrival_rate=2.0, mean_session=20.0)
        system.run(duration=60.0)
        arrived = len(system.benign)
        assert arrived > 60  # ~120 expected
        active = sum(1 for client in system.benign if client.active)
        departed = arrived - active
        assert departed > 0
        # Departed clients are evicted from whitelists.
        for client in system.benign:
            if client.active or client.replica_endpoint is not None:
                continue
            for replica in system.ctx.all_replicas():
                assert client.client_id not in replica.whitelist

    def test_churn_under_attack_still_recovers(self):
        system = CloudDefenseSystem(seed=52)
        system.add_benign_clients(40)
        system.add_persistent_bots(6)
        system.enable_churn(arrival_rate=1.0, mean_session=60.0)
        report = system.run(duration=150.0)
        assert report.shuffles >= 1
        assert report.benign_success_last_quarter > 0.85

    def test_validation(self):
        system = CloudDefenseSystem(seed=53)
        with pytest.raises(ValueError):
            system.enable_churn(arrival_rate=0.0)


class TestDeterminism:
    def run_once(self, seed: int):
        system = CloudDefenseSystem(CloudConfig(), seed=seed)
        system.add_benign_clients(50)
        system.add_persistent_bots(5)
        report = system.run(duration=90.0)
        return (
            report.shuffles,
            report.benign_success_overall,
            report.replicas_recycled,
            system.ctx.sim.events_processed,
        )

    def test_same_seed_identical_run(self):
        assert self.run_once(77) == self.run_once(77)

    def test_different_seed_differs(self):
        assert self.run_once(77) != self.run_once(78)
