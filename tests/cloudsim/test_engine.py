"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloudsim.engine import SimulationError, Simulator, every


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, second)

        def second():
            log.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        times = []
        for delay in delays:
            sim.schedule(delay, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("early"))
        sim.schedule(10.0, lambda: log.append("late"))
        sim.run_until(5.0)
        assert log == ["early"]
        assert sim.now == 5.0
        sim.run_until(20.0)
        assert log == ["early", "late"]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []
        assert sim.events_processed == 0

    def test_max_events_guard(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.001, storm)

        sim.schedule(0.001, storm)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_until(1e9, max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run_until(100.0)

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError, match="already running"):
            sim.run()


class TestEvery:
    def test_periodic_fires_until_stopped(self):
        sim = Simulator()
        log = []
        stop = every(sim, 1.0, lambda: log.append(sim.now))
        sim.run_until(3.5)
        assert log == [1.0, 2.0, 3.0]
        stop()
        sim.run_until(10.0)
        assert log == [1.0, 2.0, 3.0]

    def test_jitter_applied(self):
        sim = Simulator()
        log = []
        every(sim, 1.0, lambda: log.append(sim.now), jitter=lambda: 0.5)
        sim.run_until(4.0)
        assert log == [1.5, 3.0]
