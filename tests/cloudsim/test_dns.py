"""Tests for the DNS front door."""

from __future__ import annotations

import pytest

from repro.cloudsim.dns import DnsServer
from repro.cloudsim.loadbalancer import LoadBalancer
from repro.cloudsim.system import CloudConfig, CloudContext


@pytest.fixture
def ctx():
    return CloudContext(CloudConfig(), seed=0)


class TestDns:
    def test_round_robin_over_balancers(self, ctx):
        dns = DnsServer("svc.example")
        balancers = [LoadBalancer(ctx, f"cloud-{i}") for i in range(3)]
        for balancer in balancers:
            dns.register(balancer)
        endpoints = [dns.resolve("svc.example") for _ in range(6)]
        assert endpoints[:3] == [b.endpoint for b in balancers]
        assert endpoints[3:] == [b.endpoint for b in balancers]
        assert dns.queries == 6

    def test_unknown_name(self, ctx):
        dns = DnsServer("svc.example")
        dns.register(LoadBalancer(ctx, "cloud-0"))
        with pytest.raises(KeyError):
            dns.resolve("evil.example")

    def test_no_balancers(self):
        dns = DnsServer()
        with pytest.raises(RuntimeError):
            dns.resolve(dns.service_name)

    def test_balancer_for(self, ctx):
        dns = DnsServer("svc.example")
        balancer = LoadBalancer(ctx, "cloud-0")
        dns.register(balancer)
        endpoint = dns.resolve("svc.example")
        assert dns.balancer_for(endpoint) is balancer

    def test_balancer_for_unknown(self, ctx):
        dns = DnsServer("svc.example")
        dns.register(LoadBalancer(ctx, "cloud-0"))
        from repro.cloudsim.network import Endpoint

        with pytest.raises(KeyError):
            dns.balancer_for(Endpoint("cloud-9", "nothing"))
