"""Shuffles spanning multiple cloud domains."""

from __future__ import annotations

import pytest

from repro.cloudsim.clients import BenignClient
from repro.cloudsim.loadbalancer import LoadBalancer
from repro.cloudsim.replica import ReplicaState
from repro.cloudsim.system import CloudConfig, CloudContext


@pytest.fixture
def ctx():
    config = CloudConfig(
        n_domains=3,
        boot_delay=1.0,
        detection_interval=0.5,
        migration_grace=2.0,
        shuffle_replicas=6,
    )
    context = CloudContext(config, seed=91)
    for domain in context.domains:
        balancer = LoadBalancer(context, domain)
        context.balancers[domain] = balancer
        context.dns.register(balancer)
    return context


def victim_with_clients(ctx, domain, count, prefix):
    victim = ctx.coordinator.new_replica(domain, activate_now=True)
    for index in range(count):
        client = BenignClient(ctx, f"{prefix}{index}")
        client.replica_endpoint = victim.endpoint
        victim.admit(client.client_id, client)
    victim.receive_flood(1_000_000)
    return victim


class TestCrossDomainShuffle:
    def test_simultaneous_attacks_shuffled_together(self, ctx):
        """Replicas attacked in different domains join one shuffle set."""
        first = victim_with_clients(ctx, "cloud-0", 5, "a")
        second = victim_with_clients(ctx, "cloud-1", 5, "b")
        ctx.coordinator.start_monitoring()
        ctx.sim.run_until(30.0)
        record = ctx.coordinator.shuffles[0]
        assert set(record.attacked_replicas) == {
            first.endpoint.address,
            second.endpoint.address,
        }
        assert record.n_clients == 10
        assert first.state is ReplicaState.RETIRED
        assert second.state is ReplicaState.RETIRED

    def test_replacements_spread_across_domains(self, ctx):
        victim_with_clients(ctx, "cloud-0", 12, "c")
        ctx.coordinator.start_monitoring()
        ctx.sim.run_until(30.0)
        record = ctx.coordinator.shuffles[0]
        domains = {
            ctx.replica_by_address(address).endpoint.domain
            for address in record.new_replicas
        }
        # 6 replacement replicas over 3 domains: all domains used.
        assert len(domains) == 3

    def test_clients_may_change_domains(self, ctx):
        victim = victim_with_clients(ctx, "cloud-0", 9, "d")
        clients = list(victim.assigned_clients.values())
        ctx.coordinator.start_monitoring()
        ctx.sim.run_until(30.0)
        landed_domains = {
            client.replica_endpoint.domain for client in clients
        }
        assert len(landed_domains) >= 2  # migration crossed domains
