"""The live coordination server (paper Section III-D, over real sockets).

This is the online counterpart of :class:`repro.cloudsim.coordinator.
Coordinator`: the same detect → estimate → plan → shuffle → substitute
loop, but driven by wall-clock saturation signals from real asyncio TCP
backends instead of simulated load meters.

Control plane (UTF-8 lines on the coordinator's own port — the paper's
command-and-control channel, assumed unattackable)::

    C -> S:  JOIN <client_id>      authenticate + get an assignment
             WHERE <client_id>     re-query after MOVED/DENY
             SNAPSHOT              one-line JSON telemetry dump
    S -> C:  ASSIGN <client_id> <host>:<port> <replica_id>

Per sweep the coordinator polls the pool for saturated replicas; the
count ``X`` feeds the attack-scale estimators through the unified
:func:`repro.core.api.estimate` seam:

- round 1 (near-uniform assignment): exact occupancy MLE;
- later rounds: the Poisson-binomial ``method="weighted"`` likelihood on
  the previous plan's group sizes — after a shuffle every persistent bot
  lives inside the reshuffled subset, so the subset's plan is the right
  occupancy model;
- degenerate observations (every replica attacked — Theorem 1 regime)
  fall back to the previous believed count, or on round 1 to the
  Theorem 1 saturation threshold ``P·ln(P)`` — the smallest bot count
  that *expects* to saturate all replicas, hence the least-biased guess
  consistent with the observation.

Shuffle plans come from the precomputed :class:`repro.core.plan_cache.
PlanCache` (greedy fallback when the replacement count differs from the
cache's ``P``).  The loop stops shuffling when the planner's own
``E[S]`` drops below one client — no further shuffle is expected to save
anyone, i.e. the remaining reshuffled population is believed to be all
bots: quarantine.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.api import EstimateRequest, PlanRequest
from ..core.api import estimate as core_estimate
from ..core.api import plan as core_plan
from ..core.estimator import BotEstimate
from ..core.plan import ShufflePlan
from ..core.plan_cache import PlanCache, make_plan_store
from ..obs.events import Event
from ..obs.instruments import Instruments, resolve_instruments
from ..trust import TrustConfig, TrustManager, bot_count_log_prior, make_backend
from .backend import ReplicaBackend
from .config import ServiceConfig
from .pool import ReplicaPool

__all__ = ["LiveShuffleRecord", "ServiceCoordinator", "theorem1_fallback"]


def theorem1_fallback(n_replicas: int) -> int:
    """Bot-count guess when MLE degenerates with no prior belief.

    ``X = P`` only says ``M`` exceeds the Theorem 1 saturation threshold
    ``log_{1-1/P}(1/P) ~ P ln P``; the threshold itself is the smallest
    count consistent with what was seen.
    """
    if n_replicas < 2:
        return 1
    return math.ceil(
        math.log(1.0 / n_replicas) / math.log1p(-1.0 / n_replicas)
    )


@dataclass
class LiveShuffleRecord:
    """Audit record of one live shuffle operation."""

    started_at: float
    completed_at: float | None
    attacked_replicas: tuple[str, ...]
    n_clients: int
    n_attacked: int
    estimated_bots: int
    estimator: str
    group_sizes: tuple[int, ...]
    new_replicas: tuple[str, ...]
    algorithm: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "attacked_replicas": list(self.attacked_replicas),
            "n_clients": self.n_clients,
            "n_attacked": self.n_attacked,
            "estimated_bots": self.estimated_bots,
            "estimator": self.estimator,
            "group_sizes": list(self.group_sizes),
            "new_replicas": list(self.new_replicas),
            "algorithm": self.algorithm,
        }


@dataclass
class _LastPlan:
    plan: ShufflePlan
    replica_ids: tuple[str, ...] = field(default_factory=tuple)


class ServiceCoordinator:
    """Central controller of the live defense.

    Args:
        config: service tunables.
        max_shuffles: hard round cap (see :mod:`repro.service.budget`);
            ``None`` means uncapped.
        clock: monotonic time source shared with the pool.
        instruments: optional :class:`repro.obs.Instruments` (falls back
            to the installed process default).  Enables the span tree
            per shuffle round (estimate → plan → shuffle → substitute),
            the shuffle/detection counters, and the per-replica
            token-bucket series; the bundle is shared with the pool and
            every backend it spawns.
    """

    def __init__(
        self,
        config: ServiceConfig,
        max_shuffles: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        instruments: Instruments | None = None,
    ) -> None:
        self.config = config
        self.max_shuffles = max_shuffles
        self._clock = clock
        self.instruments = resolve_instruments(instruments)
        #: pluggable persistence behind bindings + profiles + belief;
        #: the memory backend keeps the historical in-process-only
        #: behaviour, sqlite/file survive a coordinator kill.
        self.state = make_backend(config.state_backend)
        self.trust: TrustManager | None = (
            TrustManager(
                TrustConfig(
                    seed=config.seed,
                    prior_strength=config.trust_prior_strength,
                ),
                storage=self.state,
                instruments=self.instruments,
            )
            if config.trust_enabled
            else None
        )
        self.pool = ReplicaPool(
            config,
            clock=clock,
            instruments=self.instruments,
            trust=self.trust,
        )
        self.plan_cache = PlanCache(
            n_replicas=config.n_replicas,
            client_grid=config.plan_client_grid,
            bot_grid=config.plan_bot_grid,
            # The concrete store is the runtime layer's ResultCache,
            # registered via the plan-store factory at `import repro`;
            # the service stays below the runtime in the layer graph.
            store=(
                make_plan_store(config.plan_cache_dir)
                if config.plan_cache_dir
                else None
            ),
        )
        self._rng = np.random.default_rng(config.seed)
        #: exception that killed the detection loop, if any (see
        #: :meth:`_on_detect_done`); ``None`` while healthy.
        self.detect_error: BaseException | None = None
        self.assignments: dict[str, str] = {}
        self.shuffles: list[LiveShuffleRecord] = []
        self.believed_bots: int | None = None
        #: clients named by per-replica heavy-hitter reports as holding
        #: a dominant share of a saturated window (sketch detector
        #: only).  Its size lower-bounds the bot population and
        #: guards the quarantine decision in :meth:`_shuffle`.
        self.suspected_bots: set[str] = set()
        self.quarantine_replicas: set[str] = set()
        self.budget_exhausted = False
        self._calm_sweeps = 0
        self._pending_attacked: set[str] = set()
        self._pending_sweeps = 0
        self._last_plan: _LastPlan | None = None
        #: shuffle rounds credited from a previous incarnation (state
        #: restored from a persistent backend); counted into
        #: :attr:`shuffles_completed` so the budget spans the restart.
        self._restored_shuffles = 0
        self.restored = False
        self._dirty_bindings: set[str] = set()
        self._belief_dirty = False
        self._shuffle_in_progress = False
        self._running = False
        self._detect_task: asyncio.Task | None = None
        self._control: asyncio.base_events.Server | None = None
        self.control_port: int | None = None
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Boot the pool, precompute plans, open the control channel."""
        # Whole-grid DP precomputation is the heaviest call in the
        # service; a worker thread keeps the loop free to boot the pool.
        await asyncio.get_running_loop().run_in_executor(
            None, self.plan_cache.precompute
        )
        await self.pool.start()
        await self._restore_state()
        self._control = await asyncio.start_server(
            self._handle_control, self.config.host, self.config.control_port
        )
        self.control_port = self._control.sockets[0].getsockname()[1]
        self._running = True
        self._started_at = self._clock()
        self._detect_task = asyncio.create_task(self._detect_loop())
        self._detect_task.add_done_callback(self._on_detect_done)

    def _on_detect_done(self, task: asyncio.Task) -> None:
        """Surface a crashed detection loop instead of swallowing it.

        Without this callback an exception inside the loop dies with
        the task object and the service keeps serving with detection
        silently off — the worst failure mode a moving-target defense
        can have.
        """
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        self.detect_error = exc
        self._running = False
        if self.instruments is not None:
            self.instruments.registry.counter(
                "service_detect_loop_failures_total",
                "Detection loops that died with an exception.",
            ).inc()

    async def stop(self) -> None:
        self._running = False
        if self._detect_task is not None:
            self._detect_task.cancel()
            # gather(return_exceptions=True) so a loop that already
            # crashed (see detect_error) does not re-raise at shutdown.
            await asyncio.gather(
                self._detect_task, return_exceptions=True
            )
            self._detect_task = None
        if self._control is not None:
            self._control.close()
            await self._control.wait_closed()
            self._control = None
        await self.pool.stop()
        # event-loop-safe: final flush at shutdown, nothing left to stall
        self._persist_state()
        self.state.close()

    @property
    def control_address(self) -> tuple[str, int]:
        if self.control_port is None:
            raise RuntimeError("coordinator not started")
        return (self.config.host, self.control_port)

    @property
    def shuffles_completed(self) -> int:
        """Rounds executed, *including* rounds a restored predecessor
        ran against the same state backend — the shuffle budget is a
        property of the scenario, not of one process incarnation."""
        return len(self.shuffles) + self._restored_shuffles

    #: Consecutive calm detection sweeps (no actionable attack) before
    #: a non-empty quarantine counts as converged.
    CALM_SWEEPS = 10

    #: Quarantine once the planner's Equation 1 expects fewer than this
    #: many clients saved by another round.  Below 1.0 because an
    #: expectation of, say, 0.7 is still worth a (cheap) round when the
    #: sticky bot belief may overcount by one or two stragglers.
    QUARANTINE_EXPECTED_SAVED = 0.5

    #: Endgame dispersion kicks in only when the subset fits within
    #: this many times the configured pool size (bounds the transient
    #: replica fan-out of the singleton round).
    DISPERSE_MAX_FACTOR = 4

    #: A reported heavy hitter becomes a *suspect* when its guaranteed
    #: (error-discounted) count holds at least this share of the
    #: saturated replica's window.  Bots flooding a replica each hold a
    #: large share of its window; a benign client on the same replica
    #: holds a sliver — 10% separates them with a wide margin at the
    #: configured bucket rates.
    SUSPECT_MIN_SHARE = 0.1

    @property
    def quarantined(self) -> bool:
        """True once every attack is pinned inside the quarantine set.

        Requires a calm streak: bots still flood their quarantine
        replicas, but no replica outside the set has looked attacked
        for :data:`CALM_SWEEPS` consecutive sweeps.
        """
        return (
            bool(self.quarantine_replicas)
            and self._calm_sweeps >= self.CALM_SWEEPS
        )

    # ------------------------------------------------------------------
    # assignment (control plane)
    # ------------------------------------------------------------------
    def assign(self, client_id: str) -> ReplicaBackend:
        """Bind a client to a replica (least-loaded; sticky thereafter)."""
        replica_id = self.assignments.get(client_id)
        if replica_id is not None:
            backend = self.pool.get(replica_id)
            if backend is not None and backend.is_active:
                return backend
        active = self.pool.active()
        if not active:
            raise RuntimeError("no active replicas")
        backend = min(active, key=lambda b: b.n_clients)
        backend.admit(client_id)
        # Written from the control handler (here) and the shuffle path;
        # every read-modify-write completes without an intervening
        # await, so the single-threaded loop cannot interleave them.
        # reprolint: disable=P9
        self.assignments[client_id] = backend.replica_id
        # Same single-op argument as the assignment write above.
        # reprolint: disable=P9
        self._dirty_bindings.add(client_id)
        return backend

    # ------------------------------------------------------------------
    # state persistence (bindings + belief + trust profiles)
    # ------------------------------------------------------------------
    def _belief_document(self) -> dict[str, object]:
        return {
            "believed_bots": self.believed_bots,
            "shuffles_completed": self.shuffles_completed,
            "suspected_bots": sorted(self.suspected_bots),
            "quarantine_replicas": sorted(self.quarantine_replicas),
        }

    def _persist_state(self) -> None:
        """Flush dirty bindings, trust rows, and the belief document.

        Batched: one ``put_many`` per dirty namespace, called at most
        once per detection sweep, so the write volume is bounded by
        the population (and usually far below it).
        """
        if self._dirty_bindings:
            self.state.put_many(
                "bindings",
                [
                    (client_id, {"replica": self.assignments[client_id]})
                    for client_id in sorted(self._dirty_bindings)
                    if client_id in self.assignments
                ],
            )
            self._dirty_bindings.clear()
            self._belief_dirty = True
        if self.trust is not None:
            self.trust.persist()
        if self._belief_dirty:
            self.state.put("state", "belief", self._belief_document())
            self._belief_dirty = False
        self.state.flush()

    async def _restore_state(self) -> None:
        """Resume from a persistent backend's bindings/profiles/belief.

        Restored clients regroup onto the fresh pool: each old
        replica's cohort stays together — quarantined cohorts get a
        fresh replica that re-enters the quarantine set immediately,
        everyone else maps round-robin onto the base pool — so the
        separation the previous incarnation *paid shuffle rounds for*
        survives the restart instead of being re-learned.  The
        previous plan is not restored, so the first post-restart
        estimate falls back to the uniform-occupancy MLE.
        """
        if self.trust is not None:
            self.trust.restore()
        belief = self.state.get("state", "belief")
        if belief is not None:
            raw = belief.get("believed_bots")
            self.believed_bots = None if raw is None else int(raw)
            self._restored_shuffles = int(
                belief.get("shuffles_completed", 0)
            )
            # Startup-only write: runs in start(), before the detect
            # loop (the only other writer) is even created.
            # reprolint: disable=P9
            self.suspected_bots = {
                str(s) for s in belief.get("suspected_bots", [])
            }
        bindings = self.state.items("bindings")
        if not bindings:
            self.restored = belief is not None
            return
        self.restored = True
        old_quarantine = (
            {str(r) for r in belief.get("quarantine_replicas", [])}
            if belief is not None
            else set()
        )
        groups: dict[str, list[str]] = {}
        for client_id, doc in bindings:
            groups.setdefault(str(doc.get("replica", "")), []).append(
                client_id
            )
        base = self.pool.active()
        cursor = 0
        for old_id in sorted(groups):
            if old_id in old_quarantine:
                backend = await self.pool.spawn()
                # Startup-only write (see suspected_bots above).
                # reprolint: disable=P9
                self.quarantine_replicas.add(backend.replica_id)
            else:
                backend = base[cursor % len(base)]
                cursor += 1
            for client_id in groups[old_id]:
                backend.admit(client_id)
                self.assignments[client_id] = backend.replica_id
                self._dirty_bindings.add(client_id)
        self._belief_dirty = True
        # event-loop-safe: one-time startup write before serving begins
        self._persist_state()

    def _maybe_persist(self) -> None:
        """Write back state if anything changed since the last sweep."""
        if (
            self._dirty_bindings
            or self._belief_dirty
            or (self.trust is not None and self.trust.dirty)
        ):
            self._persist_state()

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                parts = line.decode("utf-8", "replace").split()
                if len(parts) == 2 and parts[0] in ("JOIN", "WHERE"):
                    backend = self.assign(parts[1])
                    host, port = backend.address
                    reply = (
                        f"ASSIGN {parts[1]} {host}:{port} "
                        f"{backend.replica_id}"
                    )
                elif parts == ["SNAPSHOT"]:
                    reply = json.dumps(self.snapshot())
                else:
                    reply = "ERR malformed"
                writer.write((reply + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # detection loop
    # ------------------------------------------------------------------
    async def _detect_loop(self) -> None:
        obs = self.instruments
        while self._running:
            await asyncio.sleep(self.config.detection_interval)
            if obs is not None:
                obs.registry.counter(
                    "service_detection_sweeps_total",
                    "Detection sweeps of the control loop.",
                ).inc()
            if self._shuffle_in_progress:
                continue
            # event-loop-safe: bounded batch write, at most once a sweep
            self._maybe_persist()
            # Quarantined replicas are expected to stay flooded — only
            # attacks outside the quarantine set are actionable.
            attacked_now = {
                b.replica_id for b in self.pool.attacked()
                if b.replica_id not in self.quarantine_replicas
            }
            if not attacked_now and not self._pending_attacked:
                self._calm_sweeps += 1
                continue
            self._calm_sweeps = 0
            # Confirmation: saturation monitors cross their thresholds
            # at slightly different moments; accumulate the attacked
            # union for a few sweeps so one shuffle (and one estimator
            # observation X) covers the whole co-saturating set.
            self._pending_attacked |= attacked_now
            self._pending_sweeps += 1
            if self._pending_sweeps <= self.config.detection_confirmations:
                continue
            # Evidence collection fires once per confirmation window,
            # keyed on the sweep *count* rather than each sweep's
            # wall-clock arrival: the report content is a property of
            # the confirmed attacked set, and sampling it exactly once
            # removes a scheduling-dependent source of run-to-run
            # variance (how many sweeps a window spanned used to decide
            # how many report events landed in the audit trail).
            self._collect_reports(self._pending_attacked)
            targets = [
                backend
                for replica_id in sorted(self._pending_attacked)
                if (backend := self.pool.get(replica_id)) is not None
                and backend.is_active
            ]
            self._pending_attacked.clear()
            self._pending_sweeps = 0
            if not targets:
                continue
            if (
                self.max_shuffles is not None
                and self.shuffles_completed >= self.max_shuffles
            ):
                self.budget_exhausted = True
                continue
            await self._shuffle(targets)

    def _collect_reports(self, attacked_ids: set[str]) -> None:
        """Harvest heavy-hitter evidence from saturated replicas.

        In sketch-detector mode every saturated replica can say *who*
        filled its window.  Each report rides the obs audit trail
        (kind ``heavy_hitters``, rendered by ``repro-obs summarize``),
        and talkers holding a dominant guaranteed share become
        suspects — each demonstrably sent attack-scale traffic, so
        the set's size is a hard lower bound on the bot population.
        The bound guards the quarantine decision in :meth:`_shuffle`:
        the coordinator refuses to write a subset off as all-bot
        while more bots are demonstrated than it believes exist.
        """
        obs = self.instruments
        for replica_id in sorted(attacked_ids):
            backend = self.pool.get(replica_id)
            if backend is None or not backend.is_active:
                continue
            if obs is not None and self.trust is not None:
                cohort = sorted(backend.whitelist)
                obs.events.append(Event(
                    time=self._clock(),
                    kind="trust_snapshot",
                    data={
                        "replica": replica_id,
                        "clients": len(cohort),
                        "tiers": self.trust.tier_counts(cohort),
                        "mean_trust": self.trust.mean_trust(cohort),
                    },
                    source="service",
                ))
            report = backend.heavy_hitter_report()
            if report is None:  # exact detector: no attribution
                continue
            if obs is not None:
                obs.events.append(report.to_event(source="service"))
            self.suspected_bots.update(
                report.suspects(self.SUSPECT_MIN_SHARE)
            )
        if obs is not None and self.trust is not None:
            gauge = obs.registry.gauge(
                "service_trust_tier_clients",
                "Whitelisted clients per trust tier (all replicas).",
                ("tier",),
            )
            for tier, count in self.trust.tier_counts(
                sorted(self.assignments)
            ).items():
                gauge.set(float(count), tier=tier)
        if obs is not None and self.suspected_bots:
            obs.registry.gauge(
                "service_suspected_bots",
                "Distinct clients named by heavy-hitter reports.",
            ).set(float(len(self.suspected_bots)))

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def _trust_prior(
        self, clients: Sequence[str], upper: int
    ) -> np.ndarray | None:
        """Trust-derived log-prior over bot counts, or ``None``.

        The expected bot count under the trust model is the subset's
        low-trust mass ``sum(1 - trust)``; the prior pulls the MAP
        estimate toward it without overriding the occupancy evidence.
        With trust disabled (or strength 0) this returns ``None`` and
        the estimators run their historical pure-likelihood path —
        bit-identical to the pre-trust service.
        """
        if self.trust is None:
            return None
        strength = self.config.trust_prior_strength
        if strength <= 0:
            return None
        return bot_count_log_prior(
            upper=upper,
            expected=self.trust.low_trust_mass(clients),
            strength=strength,
        )

    def _estimate(
        self,
        attacked_ids: tuple[str, ...],
        n_clients: int,
        clients: Sequence[str] = (),
    ) -> tuple[int, str]:
        """Believed bot count from the observed attack pattern."""
        n_attacked = len(attacked_ids)
        last = self._last_plan
        if last is not None and set(attacked_ids) <= set(last.replica_ids):
            # Every bot rode the previous shuffle, so the previous plan's
            # sizes are the occupancy model for this observation.
            estimate = core_estimate(
                EstimateRequest(
                    n_attacked=n_attacked,
                    sizes=last.plan.group_sizes,
                    n_clients=last.plan.n_clients,
                    log_prior=self._trust_prior(
                        clients, last.plan.n_clients
                    ),
                    method="weighted",
                ),
                instruments=self.instruments,
            )
            name = "weighted"
        else:
            upper = max(n_clients, n_attacked)
            estimate = core_estimate(
                EstimateRequest(
                    n_attacked=n_attacked,
                    n_replicas=max(self.pool.n_active, 1),
                    upper_bound=upper,
                    log_prior=self._trust_prior(clients, upper),
                    method="mle",
                ),
                instruments=self.instruments,
            )
            name = "mle"
        m_hat = self._resolve(estimate)
        # Belief persistence: persistent bots never leave the
        # reshuffled subset, so the true M is constant while per-round
        # observations only ever *miss* bots (a bot mid-reconnect is
        # invisible to this sweep).  Keeping the running maximum makes
        # the endgame terminate: once the subset shrinks to the
        # believed count, Equation 1 yields E[S] ~ 0 and the
        # coordinator quarantines instead of shuffling bots forever.
        if self.believed_bots is not None:
            m_hat = max(m_hat, self.believed_bots)
        self.believed_bots = m_hat
        believed = max(1, min(m_hat, n_clients)) if n_clients else 0
        return believed, name

    def _resolve(self, estimate: BotEstimate) -> int:
        if not estimate.degenerate:
            return estimate.m_hat
        if self.believed_bots is not None:
            return self.believed_bots
        return theorem1_fallback(max(self.pool.n_active, 1))

    # ------------------------------------------------------------------
    # shuffle operation
    # ------------------------------------------------------------------
    async def _shuffle(self, attacked: list[ReplicaBackend]) -> None:
        self._shuffle_in_progress = True
        obs = self.instruments
        try:
            if obs is None:
                await self._shuffle_impl(attacked, None)
                return
            before = self.shuffles_completed
            with obs.spans.span(
                "shuffle_round", n_attacked=len(attacked)
            ) as span:
                await self._shuffle_impl(attacked, obs)
                span.set(completed=self.shuffles_completed > before)
            if self.shuffles_completed > before:
                record = self.shuffles[-1]
                obs.registry.counter(
                    "service_shuffle_rounds_total",
                    "Completed live shuffle rounds by estimator.",
                    ("estimator",),
                ).inc(estimator=record.estimator)
                completed_at = (
                    record.completed_at
                    if record.completed_at is not None
                    else record.started_at
                )
                obs.registry.histogram(
                    "service_shuffle_duration_seconds",
                    "Wall-clock duration of one live shuffle round.",
                    buckets=(0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0),
                ).observe(completed_at - record.started_at)
            if self.believed_bots is not None:
                obs.registry.gauge(
                    "service_believed_bots",
                    "Coordinator's sticky bot-count belief.",
                ).set(float(self.believed_bots))
            obs.registry.gauge(
                "service_quarantine_replicas",
                "Replicas pinned in the quarantine set.",
            ).set(float(len(self.quarantine_replicas)))
        finally:
            self._shuffle_in_progress = False

    async def _shuffle_impl(
        self,
        attacked: list[ReplicaBackend],
        obs: Instruments | None,
    ) -> None:
        spans = obs.spans if obs is not None else None
        started = self._clock()
        attacked_ids = tuple(b.replica_id for b in attacked)
        # Canonical client order before the permutation below: the
        # shuffle must not depend on whitelist-set iteration history.
        clients = sorted(
            cid for b in attacked for cid in b.whitelist
        )
        n_clients = len(clients)
        with (
            spans.span("estimate") if spans is not None else nullcontext()
        ) as span:
            # event-loop-safe: closed-form estimators, sub-ms at pool scale
            believed, estimator = self._estimate(
                attacked_ids, n_clients, clients
            )
            if span is not None:
                span.set(believed=believed, estimator=estimator)

        if n_clients == 0:
            # Flooded but empty replicas: substitute, nothing to plan.
            with (
                spans.span("substitute")
                if spans is not None
                else nullcontext()
            ):
                replacements = await self.pool.substitute(
                    list(attacked_ids)
                )
            self.shuffles.append(LiveShuffleRecord(
                started_at=started, completed_at=self._clock(),
                attacked_replicas=attacked_ids, n_clients=0,
                n_attacked=len(attacked_ids), estimated_bots=believed,
                estimator=estimator, group_sizes=(),
                new_replicas=tuple(
                    b.replica_id for b in replacements
                ),
            ))
            self._belief_dirty = True
            return

        # Plan across the full shuffle width, not just the attacked
        # count: with one attacked replica and one replacement there
        # is nowhere to separate bots from benign.  Replicas whose
        # planned group is empty are never booted, and only the
        # attacked instances retire, so the pool grows elastically
        # during an attack (clean replicas accumulate saved clients)
        # — the paper's scale-out-under-attack behaviour.
        width = min(self.config.n_replicas, n_clients)
        if (
            2 * believed >= n_clients
            and 2 <= n_clients
            <= self.DISPERSE_MAX_FACTOR * self.config.n_replicas
        ):
            # Endgame dispersion: the subset is small and believed
            # mostly bots — give every remaining client a replica
            # of their own.  One singleton round separates every
            # benign straggler from every bot exactly, instead of
            # grinding out fractional E[S] with mixed groups.
            width = n_clients
        with (
            spans.span("plan") if spans is not None else nullcontext()
        ) as span:
            plan = core_plan(
                PlanRequest(
                    n_clients=n_clients,
                    n_bots=believed,
                    n_replicas=width,
                    method="cached",
                    cache=self.plan_cache,
                ),
                instruments=self.instruments,
            )
            if span is not None:
                span.set(
                    algorithm=plan.algorithm,
                    expected_saved=plan.expected_saved,
                )
        if plan.expected_saved < self.QUARANTINE_EXPECTED_SAVED:
            # Equation 1 says no further shuffle of *these* clients
            # saves anyone: the population is believed all-bot (the
            # common case is a single bot isolated on its own
            # replica).  Before giving up on them, check the
            # heavy-hitter evidence: every suspect demonstrably sent
            # a dominant share of some saturated window (guaranteed
            # counts, not estimates), so the bot population is at
            # least that large.  If more bots are demonstrated than
            # the structural estimate has converged to, quarantining
            # now would write off clients a wider shuffle could still
            # save — adopt the demonstrated floor and let the next
            # sweep re-plan with it instead.
            demonstrated = len(self.suspected_bots)
            if (
                self.believed_bots is not None
                and demonstrated > self.believed_bots
            ):
                self.believed_bots = demonstrated
                self._belief_dirty = True
                return
            # Quarantine the replicas — leave the bots flooding
            # them — and keep watching the rest.
            self.quarantine_replicas.update(attacked_ids)
            self._belief_dirty = True
            return

        with (
            spans.span("shuffle") if spans is not None else nullcontext()
        ):
            sizes = plan.nonempty_sizes()
            replacements = [await self.pool.spawn() for _ in sizes]
            order = [
                clients[i] for i in self._rng.permutation(n_clients)
            ]
            cursor = 0
            for backend, size in zip(replacements, sizes):
                for _ in range(size):
                    client_id = order[cursor]
                    cursor += 1
                    backend.admit(client_id)
                    self.assignments[client_id] = backend.replica_id
                    self._dirty_bindings.add(client_id)
            assert cursor == n_clients, "plan sizes must cover every client"
        # Old instances close only after every client is rebound, so
        # a MOVED straggler always finds its new home via WHERE.
        with (
            spans.span("substitute")
            if spans is not None
            else nullcontext()
        ):
            for replica_id in attacked_ids:
                await self.pool.retire(replica_id)

        record = LiveShuffleRecord(
            started_at=started, completed_at=self._clock(),
            attacked_replicas=attacked_ids, n_clients=n_clients,
            n_attacked=len(attacked_ids), estimated_bots=believed,
            estimator=estimator, group_sizes=plan.group_sizes,
            new_replicas=tuple(b.replica_id for b in replacements),
            algorithm=plan.algorithm,
        )
        self.shuffles.append(record)
        self._belief_dirty = True
        self._last_plan = _LastPlan(
            plan=plan, replica_ids=record.new_replicas
        )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """JSON-ready state dump (served on SNAPSHOT and /metrics)."""
        now = self._clock()
        return {
            "uptime": (
                now - self._started_at if self._started_at is not None
                else 0.0
            ),
            "n_active": self.pool.n_active,
            "n_assignments": len(self.assignments),
            "attacked": [b.replica_id for b in self.pool.attacked()],
            "shuffles_completed": self.shuffles_completed,
            "max_shuffles": self.max_shuffles,
            "budget_exhausted": self.budget_exhausted,
            "believed_bots": self.believed_bots,
            "detector": self.config.detector,
            "state_backend": self.config.state_backend,
            "restored": self.restored,
            "restored_shuffles": self._restored_shuffles,
            "trust": (
                None if self.trust is None else self.trust.snapshot()
            ),
            "suspected_bots": sorted(self.suspected_bots),
            "quarantined": self.quarantined,
            "quarantine_replicas": sorted(self.quarantine_replicas),
            "plan_cache": {
                "cells": self.plan_cache.cells,
                "hits": self.plan_cache.hits,
                "fallbacks": self.plan_cache.fallbacks,
                "store_hits": self.plan_cache.store_hits,
            },
            "replicas": self.pool.snapshot(),
            "shuffles": [record.to_dict() for record in self.shuffles],
        }
