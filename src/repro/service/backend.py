"""Replica backends: lightweight asyncio TCP application servers.

Each :class:`ReplicaBackend` is the live analogue of
:class:`repro.cloudsim.replica.ReplicaServer`: bound to its own unique
``(host, port)`` address, enforcing whitelist admission ("only admitting
clients whose IPs are confirmed by the referring load balancer" — here,
client IDs confirmed by the coordinator), and owning one finite
resource, a token bucket standing in for the replica's service
capacity.  A drained bucket throttles requests, and a sustained
throttle ratio raises the ``attacked`` signal the coordinator's
detection sweep polls — saturation *is* the observable, exactly as in
the paper's load-based detection.

Wire protocol (UTF-8 lines)::

    C -> R:  REQ <client_id> <seq>
    R -> C:  OK <seq> <replica_id>     served (echo identifies routing)
             THROTTLED <seq>           bucket drained (overload)
             DENY <seq>                client not whitelisted
             MOVED <seq>               replica quiescing/retired
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from ..detect import HeavyHitterReport, SketchParams
from ..obs.instruments import Instruments
from ..obs.metrics import Counter
from ..trust import TrustManager
from .config import ServiceConfig
from .tokens import SaturationMonitor, SketchSaturationMonitor, TokenBucket

__all__ = ["BackendStats", "ReplicaBackend"]


class BackendStats:
    """Lifetime counters for one replica backend."""

    __slots__ = ("served", "throttled", "denied", "moved")

    def __init__(self) -> None:
        self.served = 0
        self.throttled = 0
        self.denied = 0
        self.moved = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "served": self.served,
            "throttled": self.throttled,
            "denied": self.denied,
            "moved": self.moved,
        }


class ReplicaBackend:
    """One live replica server at a unique localhost port.

    Args:
        config: shared service tunables (bucket sizing, saturation
            thresholds).
        replica_id: stable identifier (``r-<n>``), echoed in responses
            so clients and tests can observe routing.
        clock: monotonic time source, injectable for tests.
        instruments: optional :class:`repro.obs.Instruments`; per-request
            outcomes land in ``service_token_bucket_requests_total``
            (the counter is bound once here so the request hot path pays
            a single ``is not None`` check).
        trust: optional shared :class:`repro.trust.TrustManager`; when
            given, whitelisted requests pass the graduated tier gate
            *between* the whitelist check and the token bucket —
            DENIED-tier clients get the DENY verdict, THROTTLED-tier
            clients get THROTTLED for all but one in
            ``throttle_every`` requests, and neither spends bucket
            tokens.  Gated rejections still land in the saturation
            monitor: the flood *is* the detection signal, and a
            policy-starved bot must keep looking like an attack so
            the shuffle loop can corner it.
    """

    def __init__(
        self,
        config: ServiceConfig,
        replica_id: str,
        clock: Callable[[], float] = time.monotonic,
        instruments: Instruments | None = None,
        trust: TrustManager | None = None,
    ) -> None:
        self.config = config
        self.replica_id = replica_id
        self.instruments = instruments
        self.trust = trust
        self._requests_total: Counter | None = (
            None
            if instruments is None
            else instruments.registry.counter(
                "service_token_bucket_requests_total",
                "Requests by replica and token-bucket outcome.",
                ("replica", "outcome"),
            )
        )
        self.bucket = TokenBucket(
            rate=config.bucket_rate, burst=config.bucket_burst, clock=clock
        )
        self.monitor: SaturationMonitor | SketchSaturationMonitor
        if config.detector == "sketch":
            self.monitor = SketchSaturationMonitor(
                window=config.saturation_window,
                overload_ratio=config.overload_ratio,
                min_events=config.min_window_events,
                clock=clock,
                params=SketchParams(
                    epsilon=config.sketch_epsilon,
                    delta=config.sketch_delta,
                    top_k=config.sketch_top_k,
                ),
                epochs=config.sketch_epochs,
            )
        else:
            self.monitor = SaturationMonitor(
                window=config.saturation_window,
                overload_ratio=config.overload_ratio,
                min_events=config.min_window_events,
                clock=clock,
            )
        self._clock = clock
        self.whitelist: set[str] = set()
        self.stats = BackendStats()
        self.quiescing = False
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self.host = config.host
        self.port: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, port: int = 0) -> None:
        """Bind and serve at a fresh port (0 = OS-assigned)."""
        if self._server is not None:
            raise RuntimeError(f"{self.replica_id} already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Retire the backend: the port stops accepting connections.

        The live analogue of null-routing a retired replica's address —
        a bot still flooding it is wasting its effort on a dead socket.
        """
        self.quiescing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Established connections outlive Server.close(); drop them so
        # clients see EOF now instead of a half-dead socket, and wait
        # for the handlers to unwind before declaring the port dark.
        for writer in list(self._connections):
            writer.close()
        # Handler tasks discard their own entries, but a concurrent
        # discard during this clear() is harmless: both sides only
        # remove, and each mutation is a single atomic set op on the
        # one event loop (no await splits a read-modify-write).
        # reprolint: disable=P9
        self._connections.clear()
        if self._handlers:
            await asyncio.gather(
                *list(self._handlers), return_exceptions=True
            )
            # reprolint: disable=P9
            self._handlers.clear()

    @property
    def is_active(self) -> bool:
        return self._server is not None and not self.quiescing

    @property
    def address(self) -> tuple[str, int]:
        if self.port is None:
            raise RuntimeError(f"{self.replica_id} not started")
        return (self.host, self.port)

    # ------------------------------------------------------------------
    # admission control (driven by the coordinator)
    # ------------------------------------------------------------------
    def admit(self, client_id: str) -> None:
        """Whitelist a client the coordinator assigned here."""
        # Reached from both the control handler (assign) and the
        # shuffle path, but each caller performs one atomic set.add
        # with no await in between — the loop cannot interleave them.
        # reprolint: disable=P9
        self.whitelist.add(client_id)

    def evict(self, client_id: str) -> None:
        self.whitelist.discard(client_id)

    def quiesce(self) -> None:
        """Stop serving ahead of retirement: every request gets MOVED,
        pushing stragglers back to the assignment proxy."""
        self.quiescing = True

    @property
    def n_clients(self) -> int:
        return len(self.whitelist)

    # ------------------------------------------------------------------
    # attack signal
    # ------------------------------------------------------------------
    def attacked(self) -> bool:
        """True when the throttle ratio shows sustained saturation."""
        return self.monitor.saturated()

    def heavy_hitter_report(self) -> HeavyHitterReport | None:
        """Windowed top-talker report, or None in exact-detector mode.

        Only the sketch monitor attributes traffic to clients; the
        coordinator's confirmation sweep treats an absent report as "no
        auxiliary evidence" and falls back to pure saturation.
        """
        if not isinstance(self.monitor, SketchSaturationMonitor):
            return None
        total, throttled = self.monitor.counts()
        return HeavyHitterReport(
            replica_id=self.replica_id,
            time=self._clock(),
            window=self.config.saturation_window,
            total=total,
            throttled=throttled,
            top=tuple(self.monitor.heavy_hitters()),
            state_bytes=self.monitor.state_bytes(),
        )

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _respond(self, parts: list[str]) -> str:
        if len(parts) != 3 or parts[0] != "REQ":
            return "ERR malformed"
        _, client_id, seq = parts
        if self.quiescing:
            self.stats.moved += 1
            self._count("moved")
            return f"MOVED {seq}"
        if client_id not in self.whitelist:
            self.stats.denied += 1
            self._count("denied")
            return f"DENY {seq}"
        trust = self.trust
        if trust is not None:
            decision = trust.admit_decision(client_id)
            if decision != "ok":
                # Tier gate: a policy rejection, not capacity
                # exhaustion — no bucket token is spent, but the
                # request still counts into the saturation window so
                # a gated flood keeps raising the attacked signal.
                self.monitor.record(admitted=False, client_id=client_id)
                trust.observe(client_id, self._clock(), violation=False)
                if decision == "deny":
                    self.stats.denied += 1
                    self._count("trust_denied")
                    return f"DENY {seq}"
                self.stats.throttled += 1
                self._count("trust_throttled")
                return f"THROTTLED {seq}"
        if self.bucket.try_acquire():
            self.monitor.record(admitted=True, client_id=client_id)
            self.stats.served += 1
            self._count("served")
            if trust is not None:
                trust.observe(client_id, self._clock(), violation=False)
            return f"OK {seq} {self.replica_id}"
        self.monitor.record(admitted=False, client_id=client_id)
        self.stats.throttled += 1
        self._count("throttled")
        if trust is not None:
            # A drained bucket is a violation signal: the client (or
            # its cohort) outran the replica's capacity.
            trust.observe(client_id, self._clock(), violation=True)
        return f"THROTTLED {seq}"

    def _count(self, outcome: str) -> None:
        if self._requests_total is not None:
            self._requests_total.inc(
                replica=self.replica_id, outcome=outcome
            )

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = self._respond(line.decode("utf-8", "replace").split())
                writer.write((reply + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-exchange; nothing to clean up
        except asyncio.CancelledError:
            pass  # event loop tearing down: exit quietly
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    def snapshot(self) -> dict[str, object]:
        """Telemetry row for this backend."""
        if self.instruments is not None:
            self.instruments.registry.gauge(
                "service_token_bucket_tokens",
                "Tokens currently in a replica's bucket.",
                ("replica",),
            ).set(self.bucket.tokens, replica=self.replica_id)
        total, throttled = self.monitor.counts()
        snap: dict[str, object] = {
            "replica_id": self.replica_id,
            "port": self.port,
            "active": self.is_active,
            "attacked": self.attacked(),
            "n_clients": self.n_clients,
            "window_events": total,
            "window_throttled": throttled,
            "stats": self.stats.to_dict(),
        }
        report = self.heavy_hitter_report()
        if report is not None:
            snap["detector"] = "sketch"
            snap["heavy_hitters"] = [h.to_list() for h in report.top]
        if self.trust is not None:
            snap["trust_tiers"] = self.trust.tier_counts(
                sorted(self.whitelist)
            )
        return snap
