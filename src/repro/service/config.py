"""Configuration for the live shuffling defense service.

One frozen dataclass carries every tunable of the online control loop,
mirroring how :class:`repro.cloudsim.system.CloudConfig` configures the
DES — the two are deliberately parallel so a live run and a simulated
run can be parameterized from the same story (see
``docs/live-vs-sim.md``).  Times here are *wall-clock seconds*: unlike
the simulator layers, the service is the one part of the tree where
real time is the clock.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServiceConfig", "DEFAULT_SEED"]

#: Default seed for every service-side stochastic decision (shuffle
#: permutations).  Client/bot behaviour seeds live in the load
#: generator's own config.
DEFAULT_SEED = 7


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the live defense service.

    Attributes:
        host: interface the replica pool and control server bind to.
        n_replicas: shuffling replica pool size ``P`` (kept constant:
            every retired replica is substituted by a fresh one).
        control_port: TCP port for the assignment proxy (0 = ephemeral).
        telemetry_port: TCP port for the JSON metrics endpoint
            (0 = ephemeral; ``None`` disables the endpoint).
        bucket_rate: per-replica token refill rate (requests/second) —
            the replica's service capacity.
        bucket_burst: token-bucket burst capacity (requests).
        saturation_window: sliding-window length (seconds) over which
            each replica measures its throttle ratio.
        overload_ratio: throttled fraction of the window at which a
            replica reports itself attacked.
        min_window_events: minimum requests in the window before the
            saturation signal may fire (keeps idle replicas quiet).
        detection_interval: coordinator sweep period (seconds) between
            attacked-replica polls — the paper's detection loop.
        detection_confirmations: extra sweeps the coordinator keeps
            accumulating newly saturated replicas before acting.  The
            monitors cross their thresholds at slightly different
            moments; shuffling on the first sighting would spend a
            round on a partial (and estimator-skewing) observation.
        shuffle_timeout: hard bound (seconds) on one shuffle operation.
        plan_client_grid: client counts precomputed by the
            :class:`repro.core.plan_cache.PlanCache` lookup table.
        plan_bot_grid: bot counts precomputed by the plan cache.
        detector: saturation-monitor backend — ``"exact"`` keeps the
            per-event sliding deque; ``"sketch"`` swaps in the
            fixed-memory :class:`repro.detect.SketchWindow`, which also
            tracks per-client heavy hitters for the coordinator's
            confirmation sweep.
        sketch_epsilon: sketch additive-error budget ε (sketch mode).
        sketch_delta: sketch failure probability δ (sketch mode).
        sketch_top_k: heavy-hitter summary capacity per replica.
        sketch_epochs: ring cells per saturation window (temporal
            resolution of the sketch window is ``window / epochs``).
        trust_enabled: enable per-client trust profiles and the
            graduated TRUSTED→WATCH→THROTTLED→DENIED admission ladder
            (:mod:`repro.trust`).  Off by default: the disabled path
            is byte-identical to the pre-trust service.
        trust_prior_strength: weight of the trust-derived log-prior
            handed to the attack-scale estimators (0 disables the
            prior even with trust enabled).
        state_backend: persistence spec for bindings + profiles +
            belief — ``"memory"`` (default, process-local),
            ``"sqlite:PATH"`` or ``"file:PATH"`` (survive a
            coordinator kill-and-restart; see ``docs/trust.md``).
        plan_cache_dir: optional directory for the durable plan store —
            precomputed DP plan cells persist there (content-addressed
            by ``(N, M, P)`` + planner code version) and warm-start the
            next coordinator boot; ``None`` keeps precompute in-memory
            only.
        seed: RNG seed for the coordinator's shuffle permutations
            (also the base seed of the trust layer's per-client heal
            jitter).
    """

    host: str = "127.0.0.1"
    n_replicas: int = 10
    control_port: int = 0
    telemetry_port: int | None = 0
    bucket_rate: float = 80.0
    bucket_burst: float = 40.0
    saturation_window: float = 0.5
    overload_ratio: float = 0.3
    min_window_events: int = 20
    detection_interval: float = 0.1
    detection_confirmations: int = 3
    shuffle_timeout: float = 10.0
    plan_client_grid: tuple[int, ...] = (25, 50, 100, 200, 400, 800)
    plan_bot_grid: tuple[int, ...] = (2, 5, 10, 20, 40, 80, 160)
    detector: str = "exact"
    sketch_epsilon: float = 0.02
    sketch_delta: float = 0.01
    sketch_top_k: int = 8
    sketch_epochs: int = 4
    trust_enabled: bool = False
    trust_prior_strength: float = 1.0
    state_backend: str = "memory"
    plan_cache_dir: str | None = None
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if self.bucket_rate <= 0 or self.bucket_burst <= 0:
            raise ValueError("token bucket rate and burst must be > 0")
        if not 0.0 < self.overload_ratio <= 1.0:
            raise ValueError("overload_ratio must be within (0, 1]")
        if self.detection_interval <= 0:
            raise ValueError("detection_interval must be > 0")
        if self.detection_confirmations < 0:
            raise ValueError("detection_confirmations must be >= 0")
        if self.saturation_window <= 0:
            raise ValueError("saturation_window must be > 0")
        if self.detector not in ("exact", "sketch"):
            raise ValueError("detector must be 'exact' or 'sketch'")
        if not 0.0 < self.sketch_epsilon < 1.0:
            raise ValueError("sketch_epsilon must be within (0, 1)")
        if not 0.0 < self.sketch_delta < 1.0:
            raise ValueError("sketch_delta must be within (0, 1)")
        if self.sketch_top_k < 1:
            raise ValueError("sketch_top_k must be >= 1")
        if self.sketch_epochs < 1:
            raise ValueError("sketch_epochs must be >= 1")
        if self.trust_prior_strength < 0:
            raise ValueError("trust_prior_strength must be >= 0")
        kind = self.state_backend.partition(":")[0]
        if kind not in ("memory", "sqlite", "file") or (
            kind != "memory" and not self.state_backend.partition(":")[2]
        ):
            raise ValueError(
                "state_backend must be 'memory', 'sqlite:PATH', or "
                f"'file:PATH' (got {self.state_backend!r})"
            )
