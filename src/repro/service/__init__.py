"""Live online defense: the paper's control loop over real sockets.

Where :mod:`repro.cloudsim` replays the architecture inside a
discrete-event simulator, this package runs it for real on localhost —
asyncio TCP replica backends with finite capacity, an assignment
coordinator executing detect → estimate → plan → shuffle → substitute
against wall-clock saturation signals, and a load-generation harness
whose QoS output shares one schema (:mod:`repro.sim.qos`) with the
simulator, making live and simulated runs directly comparable
(``docs/live-vs-sim.md``).

- :mod:`~repro.service.config` — :class:`ServiceConfig` tunables.
- :mod:`~repro.service.tokens` — token bucket + saturation monitor.
- :mod:`~repro.service.backend` — whitelist-enforcing replica servers.
- :mod:`~repro.service.pool` — fixed-size fleet, fresh-port substitution.
- :mod:`~repro.service.coordinator` — the live coordination server.
- :mod:`~repro.service.budget` — oracle-derived shuffle round caps.
- :mod:`~repro.service.loadgen` — benign clients + persistent bots.
- :mod:`~repro.service.harness` — one-call scenarios with verdicts.
- :mod:`~repro.service.telemetry` — JSON metrics endpoint and exports.
- :mod:`~repro.service.cli` — the ``repro-serve`` entry point.
"""

from __future__ import annotations

from .backend import BackendStats, ReplicaBackend
from .budget import MIN_BUDGET, SLACK_FACTOR, shuffle_budget
from .config import DEFAULT_SEED, ServiceConfig
from .coordinator import (
    LiveShuffleRecord,
    ServiceCoordinator,
    theorem1_fallback,
)
from .harness import ScenarioReport, run_scenario, run_scenario_sync
from .loadgen import LoadConfig, LoadGenerator
from .pool import ReplicaPool
from .telemetry import TelemetryServer, export_snapshot, export_windows
from .tokens import SaturationMonitor, TokenBucket

__all__ = [
    "BackendStats",
    "DEFAULT_SEED",
    "LiveShuffleRecord",
    "LoadConfig",
    "LoadGenerator",
    "MIN_BUDGET",
    "ReplicaBackend",
    "ReplicaPool",
    "SLACK_FACTOR",
    "SaturationMonitor",
    "ScenarioReport",
    "ServiceConfig",
    "ServiceCoordinator",
    "TelemetryServer",
    "TokenBucket",
    "export_snapshot",
    "export_windows",
    "run_scenario",
    "run_scenario_sync",
    "shuffle_budget",
    "theorem1_fallback",
]
