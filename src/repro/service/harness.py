"""One-call live scenarios: service + load + verdict.

Wires a :class:`~repro.service.coordinator.ServiceCoordinator`, optional
telemetry endpoint, and a :class:`~repro.service.loadgen.LoadGenerator`
into a single scenario run, and reduces the outcome to the paper's
success criterion: what fraction of benign clients ended up on replicas
no bot can reach, and within how many shuffles.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from ..obs.instruments import Instruments
from ..sim.qos import QoSWindow, windows_to_dicts
from .budget import shuffle_budget
from .config import ServiceConfig
from .coordinator import ServiceCoordinator
from .loadgen import LoadConfig, LoadGenerator
from .telemetry import TelemetryServer

__all__ = ["ScenarioReport", "run_scenario", "run_scenario_sync"]


@dataclass
class ScenarioReport:
    """Outcome of one live scenario.

    Attributes:
        quarantined: the coordinator declared quarantine (its planner's
            ``E[S]`` fell below one saved client).
        shuffles_completed: live shuffle rounds executed.
        budget: the hard round cap derived from the oracle prediction
            (``None`` = scenario theoretically unwinnable at this ``P``).
        benign_clean_fraction: benign clients whose final replica hosts
            no bot, over all benign clients.
        bot_replicas: replica IDs hosting at least one bot at the end.
        restored: the coordinator resumed from a persistent state
            backend (its ``shuffles_completed`` then includes rounds a
            predecessor process already ran).
        trust: trust-layer summary (population, tier counts, mean
            trust) when trust was enabled, else ``None``.
        windows: benign QoS timeline in the shared sim/live schema.
        snapshot: final coordinator state dump.
    """

    quarantined: bool
    budget_exhausted: bool
    shuffles_completed: int
    budget: int | None
    benign_clean_fraction: float
    bot_replicas: tuple[str, ...]
    duration: float
    bot_served: int
    bot_throttled: int
    restored: bool = False
    trust: dict | None = None
    windows: list[QoSWindow] = field(default_factory=list)
    snapshot: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "quarantined": self.quarantined,
            "budget_exhausted": self.budget_exhausted,
            "shuffles_completed": self.shuffles_completed,
            "budget": self.budget,
            "benign_clean_fraction": self.benign_clean_fraction,
            "bot_replicas": list(self.bot_replicas),
            "duration": self.duration,
            "bot_served": self.bot_served,
            "bot_throttled": self.bot_throttled,
            "restored": self.restored,
            "trust": self.trust,
            "windows": windows_to_dicts(self.windows),
            "snapshot": self.snapshot,
        }


def _clean_fraction(
    coordinator: ServiceCoordinator, load: LoadGenerator
) -> tuple[float, tuple[str, ...]]:
    """Fraction of benign clients assigned to bot-free replicas."""
    bot_replicas = sorted({
        coordinator.assignments[bot_id]
        for bot_id in load.bot_ids
        if bot_id in coordinator.assignments
    })
    if not load.benign_ids:
        return 1.0, tuple(bot_replicas)
    dirty = set(bot_replicas)
    clean = sum(
        1 for cid in load.benign_ids
        if coordinator.assignments.get(cid) not in dirty
    )
    return clean / len(load.benign_ids), tuple(bot_replicas)


async def run_scenario(
    service_config: ServiceConfig,
    load_config: LoadConfig,
    duration: float = 60.0,
    target_fraction: float = 0.95,
    settle: float = 2.0,
    instruments: Instruments | None = None,
) -> ScenarioReport:
    """Run one live attack scenario end to end.

    Boots the defense, unleashes the load, and stops early once the
    coordinator declares quarantine (plus ``settle`` seconds of
    post-convergence observation) or the wall-clock ``duration`` runs
    out.  The shuffle budget handed to the coordinator is the oracle
    prediction of :mod:`repro.analysis.convergence` with slack.

    When telemetry is enabled (``telemetry_port`` set) the scenario
    always carries an :class:`repro.obs.Instruments` bundle — built
    here unless one is passed in — so the endpoint's ``/metrics`` has
    shuffle-round and token-bucket series to serve.
    """
    budget = shuffle_budget(
        benign=load_config.n_benign,
        bots=load_config.n_bots,
        n_replicas=service_config.n_replicas,
        target_fraction=target_fraction,
    )
    if instruments is None and service_config.telemetry_port is not None:
        instruments = Instruments.create(source="service")
    # event-loop-safe: one-time construction before any load exists
    coordinator = ServiceCoordinator(
        service_config, max_shuffles=budget, instruments=instruments
    )
    await coordinator.start()
    telemetry: TelemetryServer | None = None
    if service_config.telemetry_port is not None:
        telemetry = TelemetryServer(
            coordinator.snapshot,
            host=service_config.host,
            port=service_config.telemetry_port,
            registry=(
                instruments.registry if instruments is not None else None
            ),
        )
        await telemetry.start()
    load = LoadGenerator(
        load_config,
        control_host=service_config.host,
        control_port=coordinator.control_port,
        context=lambda: {
            "attacked": [b.replica_id for b in coordinator.pool.attacked()],
            "n_active": coordinator.pool.n_active,
            "shuffles_completed": coordinator.shuffles_completed,
        },
    )
    started = time.monotonic()
    try:
        windows = await load.run(
            duration,
            until=lambda: coordinator.quarantined
            or coordinator.budget_exhausted,
            settle=settle,
        )
        elapsed = time.monotonic() - started
        clean_fraction, bot_replicas = _clean_fraction(coordinator, load)
        return ScenarioReport(
            quarantined=coordinator.quarantined,
            budget_exhausted=coordinator.budget_exhausted,
            shuffles_completed=coordinator.shuffles_completed,
            budget=budget,
            benign_clean_fraction=clean_fraction,
            bot_replicas=bot_replicas,
            duration=elapsed,
            bot_served=load.bot_served,
            bot_throttled=load.bot_throttled,
            restored=coordinator.restored,
            trust=(
                None if coordinator.trust is None
                else coordinator.trust.snapshot()
            ),
            windows=windows,
            snapshot=coordinator.snapshot(),
        )
    finally:
        if telemetry is not None:
            await telemetry.stop()
        await coordinator.stop()


def run_scenario_sync(
    service_config: ServiceConfig,
    load_config: LoadConfig,
    duration: float = 60.0,
    target_fraction: float = 0.95,
    settle: float = 2.0,
) -> ScenarioReport:
    """Blocking wrapper around :func:`run_scenario` (CLI entry point)."""
    return asyncio.run(run_scenario(
        service_config, load_config,
        duration=duration, target_fraction=target_fraction, settle=settle,
    ))
