"""``repro-serve`` — command-line entry point for the live defense.

Usage::

    repro-serve scenario --clients 200 --bots 20 --replicas 10
    repro-serve scenario --json report.json --windows windows.json
    repro-serve budget --clients 200 --bots 20 --replicas 10
    repro-serve serve --replicas 10 --port 9000 --telemetry-port 9100

Exit codes: 0 success (scenario reached quarantine with the benign
target met), 1 scenario failed its target, 2 usage error.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Sequence

from .budget import shuffle_budget
from .config import ServiceConfig
from ..obs.instruments import Instruments
from .coordinator import ServiceCoordinator
from .harness import run_scenario_sync
from .loadgen import LoadConfig
from .telemetry import TelemetryServer, export_windows


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Live shuffling DDoS defense over localhost sockets: run "
            "attack scenarios end to end, print shuffle budgets, or "
            "serve the replica pool interactively."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    scenario = commands.add_parser(
        "scenario",
        help="run one live attack scenario and report the outcome",
    )
    _population_args(scenario)
    scenario.add_argument(
        "--duration", type=float, default=60.0,
        help="wall-clock cap in seconds (default: 60)",
    )
    scenario.add_argument(
        "--target", type=float, default=0.95,
        help="benign clean-fraction target (default: 0.95)",
    )
    scenario.add_argument(
        "--seed", type=int, default=ServiceConfig.seed,
        help="service-side RNG seed",
    )
    scenario.add_argument(
        "--load-seed", type=int, default=LoadConfig.seed,
        help="load-generator RNG seed",
    )
    scenario.add_argument(
        "--detector", choices=("exact", "sketch"),
        default=ServiceConfig.detector,
        help="saturation-monitor backend: per-event deque (exact) or "
        "fixed-memory sketch window with heavy-hitter attribution "
        "(default: %(default)s)",
    )
    scenario.add_argument(
        "--bot-profile", choices=("burst", "flood"),
        default=LoadConfig.bot_profile,
        help="bot flood shape: rate-paced pipelined bursts, or an "
        "unpaced socket-saturating flood (default: %(default)s)",
    )
    scenario.add_argument(
        "--telemetry-port", type=int, default=None,
        help="serve live metrics while the scenario runs "
        "(Prometheus text at /metrics, JSON snapshot elsewhere)",
    )
    _trust_args(scenario)
    scenario.add_argument(
        "--json", metavar="FILE",
        help="write the full scenario report as JSON",
    )
    scenario.add_argument(
        "--windows", metavar="FILE",
        help="write the QoS windows (shared sim/live schema) as JSON",
    )

    budget = commands.add_parser(
        "budget",
        help="print the shuffle budget for a scenario "
        "(oracle prediction with slack)",
    )
    _population_args(budget)
    budget.add_argument(
        "--target", type=float, default=0.95,
        help="benign saved-fraction target (default: 0.95)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the coordinator + replica pool until interrupted",
    )
    serve.add_argument(
        "--replicas", type=int, default=ServiceConfig.n_replicas,
        help="replica pool size P",
    )
    serve.add_argument(
        "--port", type=int, default=9000,
        help="control-channel port (default: 9000)",
    )
    serve.add_argument(
        "--telemetry-port", type=int, default=9100,
        help="JSON metrics endpoint port (default: 9100)",
    )
    serve.add_argument(
        "--seed", type=int, default=ServiceConfig.seed,
        help="service-side RNG seed",
    )
    _trust_args(serve)
    return parser


def _trust_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trust", action="store_true",
        help="enable per-client trust profiles and the graduated "
        "TRUSTED/WATCH/THROTTLED/DENIED admission ladder",
    )
    parser.add_argument(
        "--trust-prior-strength", type=float,
        default=ServiceConfig.trust_prior_strength,
        help="weight of the trust-derived estimator prior "
        "(0 disables the prior; default: %(default)s)",
    )
    parser.add_argument(
        "--state-backend", default=ServiceConfig.state_backend,
        help="bindings/profiles/belief persistence: 'memory', "
        "'sqlite:PATH', or 'file:PATH' — persistent backends survive "
        "a coordinator kill-and-restart (default: %(default)s)",
    )
    parser.add_argument(
        "--plan-cache-dir", default=None,
        help="directory for the durable plan store: precomputed DP "
        "plans persist there and warm-start the next boot "
        "(default: in-memory only)",
    )


def _population_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--clients", type=int, default=200,
        help="benign client count (default: 200)",
    )
    parser.add_argument(
        "--bots", type=int, default=20,
        help="persistent insider-bot count (default: 20)",
    )
    parser.add_argument(
        "--replicas", type=int, default=ServiceConfig.n_replicas,
        help="replica pool size P (default: %(default)s)",
    )


def _cmd_scenario(options: argparse.Namespace) -> int:
    service_config = ServiceConfig(
        n_replicas=options.replicas, seed=options.seed,
        telemetry_port=options.telemetry_port,
        detector=options.detector,
        trust_enabled=options.trust,
        trust_prior_strength=options.trust_prior_strength,
        state_backend=options.state_backend,
        plan_cache_dir=options.plan_cache_dir,
    )
    load_config = LoadConfig(
        n_benign=options.clients, n_bots=options.bots,
        seed=options.load_seed,
        bot_profile=options.bot_profile,
    )
    report = run_scenario_sync(
        service_config, load_config,
        duration=options.duration, target_fraction=options.target,
    )
    print(
        f"repro-serve: {options.clients} clients / {options.bots} bots / "
        f"{options.replicas} replicas"
    )
    print(
        f"  shuffles: {report.shuffles_completed}"
        f" (budget: {report.budget})"
    )
    print(f"  quarantined: {report.quarantined}")
    print(f"  benign clean fraction: {report.benign_clean_fraction:.3f}")
    print(f"  bot replicas: {', '.join(report.bot_replicas) or '-'}")
    print(f"  duration: {report.duration:.1f}s")
    trust = report.snapshot.get("trust")
    if trust is not None:
        tiers = ", ".join(
            f"{name}={count}" for name, count in trust["tiers"].items()
        )
        print(
            f"  trust: {trust['population']} profiles, "
            f"mean {trust['mean_trust']:.3f} ({tiers})"
        )
    if report.snapshot.get("restored"):
        print(
            "  restored from state backend "
            f"({report.snapshot.get('restored_shuffles', 0)} prior "
            "shuffles credited)"
        )
    if options.json:
        with open(options.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"  report written to {options.json}")
    if options.windows:
        export_windows(report.windows, options.windows)
        print(f"  windows written to {options.windows}")
    ok = (
        report.quarantined
        and report.benign_clean_fraction >= options.target
    )
    return 0 if ok else 1


def _cmd_budget(options: argparse.Namespace) -> int:
    value = shuffle_budget(
        benign=options.clients, bots=options.bots,
        n_replicas=options.replicas, target_fraction=options.target,
    )
    if value is None:
        print(
            "repro-serve: unreachable target at this replica count "
            "(Theorem 1 saturation) — provision more replicas"
        )
        return 1
    print(value)
    return 0


async def _serve_forever(options: argparse.Namespace) -> int:
    config = ServiceConfig(
        n_replicas=options.replicas,
        control_port=options.port,
        telemetry_port=options.telemetry_port,
        seed=options.seed,
        trust_enabled=options.trust,
        trust_prior_strength=options.trust_prior_strength,
        state_backend=options.state_backend,
        plan_cache_dir=options.plan_cache_dir,
    )
    instruments = Instruments.create(source="service")
    # event-loop-safe: one-time construction before any load exists
    coordinator = ServiceCoordinator(config, instruments=instruments)
    await coordinator.start()
    telemetry = TelemetryServer(
        coordinator.snapshot, host=config.host,
        port=options.telemetry_port,
        registry=instruments.registry,
    )
    await telemetry.start()
    host, port = coordinator.control_address
    print(f"repro-serve: control channel on {host}:{port}")
    print(f"repro-serve: telemetry on http://{host}:{telemetry.port}/")
    print(
        f"repro-serve: prometheus on http://{host}:{telemetry.port}/metrics"
    )
    try:
        while True:
            await asyncio.sleep(3600)
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await telemetry.stop()
        await coordinator.stop()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.command == "scenario":
        return _cmd_scenario(options)
    if options.command == "budget":
        return _cmd_budget(options)
    if options.command == "serve":
        try:
            return asyncio.run(_serve_forever(options))
        except KeyboardInterrupt:
            return 0
    parser.error(f"unknown command {options.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
