"""The live replica pool: fixed-size fleet with fresh-port substitution.

The paper keeps the number of *advertised* replicas constant while their
network identities churn: every shuffle retires the attacked instances
and "instantiates the same number of replacement server instances" at
addresses the attacker has never seen.  On localhost the moving-target
dimension is the TCP port — substitution binds the replacement backend
to a fresh OS-assigned port, so a bot that memorised the old address is
flooding a closed socket.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from ..obs.instruments import Instruments
from ..trust import TrustManager
from .backend import ReplicaBackend
from .config import ServiceConfig

__all__ = ["ReplicaPool"]


class ReplicaPool:
    """Fleet of :class:`ReplicaBackend` servers, size held at ``P``.

    Replica IDs are monotonic (``r-1``, ``r-2``, ...) and never reused,
    so shuffle records can always tell a substitute from the instance it
    replaced.  Iteration order over active replicas is spawn order —
    deterministic regardless of dict mutation history.
    """

    def __init__(
        self,
        config: ServiceConfig,
        clock: Callable[[], float] = time.monotonic,
        instruments: Instruments | None = None,
        trust: TrustManager | None = None,
    ) -> None:
        self.config = config
        self._clock = clock
        self.instruments = instruments
        self.trust = trust
        self._counter = 0
        self.backends: dict[str, ReplicaBackend] = {}
        self.retired: dict[str, ReplicaBackend] = {}
        # Membership mutations happen from the detect loop's shuffles
        # and from the shutdown path concurrently; one lock covers all
        # of them.  ``_active`` is the O(1) index the per-request
        # ``active()`` call reads — membership changes only here, at
        # mutation time, never by scanning per request.
        self._lock = asyncio.Lock()
        self._active: dict[str, ReplicaBackend] = {}

    # ------------------------------------------------------------------
    async def spawn(self) -> ReplicaBackend:
        """Boot one fresh backend at a never-advertised port."""
        self._counter += 1
        replica_id = f"r-{self._counter}"
        backend = ReplicaBackend(
            self.config,
            replica_id,
            clock=self._clock,
            instruments=self.instruments,
            trust=self.trust,
        )
        await backend.start(port=0)
        async with self._lock:
            self.backends[replica_id] = backend
            self._active[replica_id] = backend
        if self.instruments is not None:
            self.instruments.registry.counter(
                "service_replicas_spawned_total",
                "Backends booted over the pool's lifetime.",
            ).inc()
        return backend

    async def start(self) -> list[ReplicaBackend]:
        """Boot the initial fleet of ``n_replicas`` backends."""
        return [
            await self.spawn() for _ in range(self.config.n_replicas)
        ]

    async def retire(self, replica_id: str) -> None:
        """Quiesce and close one backend; its port goes dark."""
        async with self._lock:
            backend = self.backends.pop(replica_id, None)
            if backend is None:
                return
            self._active.pop(replica_id, None)
            self.retired[replica_id] = backend
        backend.quiesce()
        await backend.stop()
        if self.instruments is not None:
            self.instruments.registry.counter(
                "service_replicas_retired_total",
                "Backends retired (their ports went dark).",
            ).inc()

    async def substitute(self, replica_ids: list[str]) -> list[ReplicaBackend]:
        """Replace each named replica with a fresh-port substitute.

        Replacements are booted *before* the old instances close, so the
        pool never serves below capacity mid-shuffle.
        """
        replacements = [await self.spawn() for _ in replica_ids]
        for replica_id in replica_ids:
            await self.retire(replica_id)
        return replacements

    async def stop(self) -> None:
        """Close every live backend (shutdown path)."""
        for replica_id in list(self.backends):
            await self.retire(replica_id)

    # ------------------------------------------------------------------
    def active(self) -> list[ReplicaBackend]:
        """Live backends in spawn order (O(1) index, O(P) copy)."""
        return list(self._active.values())

    def attacked(self) -> list[ReplicaBackend]:
        """Live backends currently reporting saturation."""
        return [b for b in self.active() if b.attacked()]

    def get(self, replica_id: str) -> ReplicaBackend | None:
        return self.backends.get(replica_id)

    @property
    def n_active(self) -> int:
        return len(self._active)

    def snapshot(self) -> list[dict[str, object]]:
        return [b.snapshot() for b in self.backends.values()]
