"""Shuffle budgets: how many rounds the live loop is allowed.

:func:`repro.analysis.convergence.predict_shuffles` predicts the
*oracle* round count — a planner that knows the true bot count and pays
no estimation error.  The live coordinator estimates ``M`` from noisy
attacked-replica observations, so its trajectory is strictly worse; the
budget wraps the oracle prediction with a slack multiplier and hands the
control loop a hard round cap.  A live run that quarantines within
budget is the acceptance signal; one that exhausts it has diverged from
the theory and should fail loudly rather than shuffle forever.
"""

from __future__ import annotations

import math

from ..analysis.convergence import predict_shuffles

__all__ = ["SLACK_FACTOR", "MIN_BUDGET", "shuffle_budget"]

#: Multiplier on the oracle prediction absorbing estimator error and
#: detection latency.  Chosen empirically: live runs with exact-MLE
#: round-1 estimates land within ~1.5x of oracle; 3x leaves headroom for
#: the degenerate (all-replicas-attacked) starts where round 1 is spent
#: on a Theorem-1 fallback guess.
SLACK_FACTOR = 3.0

#: Floor so tiny scenarios (oracle predicts 1-2 rounds) still tolerate
#: one bad estimate.
MIN_BUDGET = 4


def shuffle_budget(
    benign: int,
    bots: int,
    n_replicas: int,
    target_fraction: float = 0.95,
    slack: float = SLACK_FACTOR,
) -> int | None:
    """Hard cap on live shuffle rounds for one attack scenario.

    Returns ``None`` when the oracle itself cannot reach the target at
    this replica count (Theorem 1 saturation) — no budget makes the
    scenario winnable; provision more replicas instead.
    """
    oracle = predict_shuffles(benign, bots, n_replicas, target_fraction)
    if oracle is None:
        return None
    return max(MIN_BUDGET, math.ceil(oracle * slack))
