"""Concurrent load generation against the live service.

Drives the paper's client population over real sockets: hundreds of
benign clients issuing paced requests to their assigned replicas, plus
persistent insider bots that authenticate like ordinary clients, learn
their replica assignment, and flood it — then *follow the shuffles*,
re-querying the coordinator whenever their target goes dark (the
persistent-bot model of Section III: insiders cannot be filtered, only
isolated).

Benign outcomes aggregate into the shared :class:`repro.sim.qos.
QoSWindow` schema, so a live run's QoS timeline is directly comparable
with a cloudsim timeline of the same scenario.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..sim.qos import QoSWindow

__all__ = ["LoadConfig", "LoadGenerator"]


@dataclass(frozen=True)
class LoadConfig:
    """Tunables of one load scenario.

    Attributes:
        n_benign: benign client count.
        n_bots: persistent insider-bot count.
        benign_rps: per-benign-client request rate (requests/second).
        bot_rps: per-bot nominal flood rate — sized so one bot pushes
            its replica past the token-bucket capacity.
        bot_burst: requests each bot pipelines before reading replies.
            A strictly request-reply bot self-limits to one request per
            round trip and can fail to saturate a replica it has to
            itself; pipelining makes the flood open-loop, like a real
            flooder that does not wait for answers.
        bot_profile: flood shape — ``"burst"`` paces pipelined bursts
            at ``bot_rps`` (the original, rate-targeted bot);
            ``"flood"`` never paces: requests stream as fast as the
            socket accepts them while a companion reader drains
            replies, the profile that actually saturates the hot path
            the sketch detectors are built for.
        bot_start_delay: seconds of benign-only warmup before the flood
            (the paper's timeline: provision, then attack).
        request_timeout: client-side response deadline (seconds).
        window: QoS sampling window length (seconds).
        seed: base seed; every client derives its own spawned stream.
    """

    n_benign: int = 200
    n_bots: int = 20
    benign_rps: float = 2.0
    bot_rps: float = 200.0
    bot_burst: int = 10
    bot_profile: str = "burst"
    bot_start_delay: float = 1.0
    request_timeout: float = 2.0
    window: float = 0.5
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_benign < 0 or self.n_bots < 0:
            raise ValueError("client counts must be >= 0")
        if self.benign_rps <= 0 or self.bot_rps <= 0:
            raise ValueError("request rates must be > 0")
        if self.bot_burst < 1:
            raise ValueError("bot_burst must be >= 1")
        if self.bot_profile not in ("burst", "flood"):
            raise ValueError("bot_profile must be 'burst' or 'flood'")
        if self.window <= 0:
            raise ValueError("window must be > 0")


class LoadGenerator:
    """Run a benign + bot population against a live coordinator.

    Args:
        config: scenario tunables.
        control_host, control_port: the coordinator's control channel.
        context: optional zero-argument callable returning the defense
            state fields stamped onto each QoS window
            (``attacked``/``n_active``/``shuffles_completed``) — the
            in-process harness passes a view of the coordinator.
    """

    def __init__(
        self,
        config: LoadConfig,
        control_host: str,
        control_port: int,
        context: Callable[[], dict] | None = None,
    ) -> None:
        self.config = config
        self.control_host = control_host
        self.control_port = control_port
        self._context = context
        self.windows: list[QoSWindow] = []
        self.benign_ids = [f"u-{i:04d}" for i in range(config.n_benign)]
        self.bot_ids = [f"bot-{i:03d}" for i in range(config.n_bots)]
        self.bot_served = 0
        self.bot_throttled = 0
        self.total_sent = 0
        self.total_ok = 0
        self._stop = asyncio.Event()
        self._win_sent = 0
        self._win_ok = 0
        self._win_latency = 0.0
        self._win_latency_n = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record(self, ok: bool, latency: float | None) -> None:
        self.total_sent += 1
        self._win_sent += 1
        if ok:
            self.total_ok += 1
            self._win_ok += 1
        # Failed-but-completed requests keep their measured duration
        # (shared schema contract); only timeouts have none.
        if latency is not None:
            self._win_latency += latency
            self._win_latency_n += 1

    # ------------------------------------------------------------------
    # control-plane helpers
    # ------------------------------------------------------------------
    async def _locate(self, client_id: str) -> tuple[str, int]:
        """Ask the coordinator where this client should connect."""
        reader, writer = await asyncio.open_connection(
            self.control_host, self.control_port
        )
        try:
            writer.write(f"WHERE {client_id}\n".encode("utf-8"))
            await writer.drain()
            line = await asyncio.wait_for(
                reader.readline(), self.config.request_timeout
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        parts = line.decode("utf-8", "replace").split()
        if len(parts) != 4 or parts[0] != "ASSIGN":
            raise ConnectionError(f"bad control reply: {parts!r}")
        host, _, port = parts[2].rpartition(":")
        return host, int(port)

    # ------------------------------------------------------------------
    # client behaviours
    # ------------------------------------------------------------------
    async def _benign(self, index: int) -> None:
        client_id = self.benign_ids[index]
        rng = np.random.default_rng([self.config.seed, index])
        interval = 1.0 / self.config.benign_rps
        # Staggered start desynchronises the population.
        await asyncio.sleep(interval * float(rng.uniform(0.0, 1.0)))
        reader: asyncio.StreamReader | None = None
        writer: asyncio.StreamWriter | None = None
        seq = 0
        try:
            while not self._stop.is_set():
                seq += 1
                started = time.monotonic()
                try:
                    if writer is None:
                        host, port = await self._locate(client_id)
                        reader, writer = await asyncio.open_connection(
                            host, port
                        )
                    writer.write(
                        f"REQ {client_id} {seq}\n".encode("utf-8")
                    )
                    await writer.drain()
                    line = await asyncio.wait_for(
                        reader.readline(), self.config.request_timeout
                    )
                    latency = time.monotonic() - started
                    verb = line.split()[0] if line.strip() else b""
                    if verb == b"OK":
                        self._record(True, latency)
                    elif verb == b"THROTTLED":
                        self._record(False, latency)
                    else:
                        # MOVED / DENY / closed: chase the reassignment.
                        self._record(False, latency)
                        writer.close()
                        writer = None
                except (asyncio.TimeoutError, OSError):
                    self._record(False, None)
                    if writer is not None:
                        writer.close()
                    writer = None
                await asyncio.sleep(interval * float(rng.uniform(0.5, 1.5)))
        finally:
            if writer is not None:
                writer.close()

    async def _bot(self, index: int) -> None:
        client_id = self.bot_ids[index]
        burst = self.config.bot_burst
        pace = burst / self.config.bot_rps
        request = f"REQ {client_id} 0\n".encode("utf-8") * burst
        await asyncio.sleep(self.config.bot_start_delay)
        while not self._stop.is_set():
            try:
                host, port = await self._locate(client_id)
                reader, writer = await asyncio.open_connection(host, port)
            except (asyncio.TimeoutError, OSError, ConnectionError):
                await asyncio.sleep(pace)
                continue
            try:
                while not self._stop.is_set():
                    # Open-loop burst: all requests on the wire before
                    # any reply is read.
                    writer.write(request)
                    await writer.drain()
                    moved = False
                    for _ in range(burst):
                        line = await asyncio.wait_for(
                            reader.readline(), self.config.request_timeout
                        )
                        verb = line.split()[0] if line.strip() else b""
                        if verb == b"OK":
                            self.bot_served += 1
                        elif verb == b"THROTTLED":
                            self.bot_throttled += 1
                        else:
                            moved = True
                            break
                    if moved:
                        break  # replica moved out from under the bot
                    await asyncio.sleep(pace)
            except (asyncio.TimeoutError, OSError):
                pass  # target port went dark mid-flood: re-locate
            finally:
                writer.close()

    async def _bot_flood(self, index: int) -> None:
        """Unpaced flood bot: saturate the socket, never wait.

        Writes pipelined request blocks back-to-back with no pacing
        sleep — the only throttle is TCP backpressure via ``drain()``.
        A companion task consumes replies concurrently so the reply
        stream never stalls the flood (nor fills our receive buffer),
        and flags MOVED/DENY/EOF so the bot re-locates a shuffled-away
        replica.
        """
        client_id = self.bot_ids[index]
        block = (
            f"REQ {client_id} 0\n".encode("utf-8") * self.config.bot_burst
        )
        await asyncio.sleep(self.config.bot_start_delay)
        while not self._stop.is_set():
            try:
                host, port = await self._locate(client_id)
                reader, writer = await asyncio.open_connection(host, port)
            except (asyncio.TimeoutError, OSError, ConnectionError):
                await asyncio.sleep(self.config.request_timeout / 4)
                continue
            relocate = asyncio.Event()

            async def drain_replies(
                reader: asyncio.StreamReader = reader,
                relocate: asyncio.Event = relocate,
            ) -> None:
                try:
                    while True:
                        line = await reader.readline()
                        if not line:
                            break  # EOF: replica closed / moved
                        verb = line.split()[0] if line.strip() else b""
                        if verb == b"OK":
                            self.bot_served += 1
                        elif verb == b"THROTTLED":
                            self.bot_throttled += 1
                        else:  # MOVED / DENY
                            break
                except (OSError, asyncio.IncompleteReadError):
                    pass
                finally:
                    relocate.set()

            drain = asyncio.create_task(drain_replies())
            try:
                while not self._stop.is_set() and not relocate.is_set():
                    writer.write(block)
                    await writer.drain()
                    # drain() only yields above the high-water mark;
                    # yield explicitly so the server (same loop in the
                    # in-process harness) gets scheduled.
                    await asyncio.sleep(0)
            except (OSError, ConnectionError):
                pass  # target went dark mid-flood: re-locate
            finally:
                drain.cancel()
                await asyncio.gather(drain, return_exceptions=True)
                writer.close()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    async def _sampler(self) -> None:
        origin = time.monotonic()
        while not self._stop.is_set():
            await asyncio.sleep(self.config.window)
            state = self._context() if self._context is not None else {}
            self.windows.append(QoSWindow(
                time=time.monotonic() - origin,
                benign_sent=self._win_sent,
                benign_ok=self._win_ok,
                latency_sum=self._win_latency,
                latency_count=self._win_latency_n,
                attacked_replicas=len(state.get("attacked", ())),
                active_replicas=int(state.get("n_active", 0)),
                shuffles_completed=int(
                    state.get("shuffles_completed", 0)
                ),
            ))
            self._win_sent = 0
            self._win_ok = 0
            self._win_latency = 0.0
            self._win_latency_n = 0

    # ------------------------------------------------------------------
    async def run(
        self,
        duration: float,
        until: Callable[[], bool] | None = None,
        settle: float = 2.0,
    ) -> list[QoSWindow]:
        """Drive the population for up to ``duration`` seconds.

        Args:
            duration: hard wall-clock cap on the scenario.
            until: optional early-exit predicate polled once per window
                (e.g. "coordinator reports quarantine"); once true, the
                load keeps running ``settle`` more seconds so post-
                convergence QoS windows are captured, then stops.
            settle: extra seconds after ``until`` fires.
        """
        self._stop = asyncio.Event()
        tasks = [
            asyncio.create_task(self._benign(i))
            for i in range(self.config.n_benign)
        ]
        bot = (
            self._bot_flood
            if self.config.bot_profile == "flood"
            else self._bot
        )
        tasks += [
            asyncio.create_task(bot(i))
            for i in range(self.config.n_bots)
        ]
        sampler = asyncio.create_task(self._sampler())
        origin = time.monotonic()
        reached_at: float | None = None
        while time.monotonic() - origin < duration:
            await asyncio.sleep(self.config.window)
            if until is not None and reached_at is None and until():
                reached_at = time.monotonic()
            if (
                reached_at is not None
                and time.monotonic() - reached_at >= settle
            ):
                break
        self._stop.set()
        for task in tasks + [sampler]:
            task.cancel()
        await asyncio.gather(*tasks, sampler, return_exceptions=True)
        return self.windows
