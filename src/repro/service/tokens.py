"""Per-replica rate limiting and overload detection.

Two small real-time primitives back the live service's "attacked"
signal, the observable the whole control loop feeds on:

- :class:`TokenBucket` — the classic refill-at-rate limiter.  Every
  admitted request costs one token; a drained bucket means the replica
  is serving at capacity and further requests are throttled.
- :class:`SaturationMonitor` — a sliding-window throttle-ratio meter.
  The paper detects attacks as "sudden congestion" on a replica's load
  indicators; here the indicator is the fraction of recent requests the
  bucket had to reject.  A bot flooding its assigned replica drains the
  bucket and drives that fraction toward 1, while a replica carrying
  only benign clients (provisioned below capacity) stays near 0 — the
  separation that makes saturation a usable attack signal.
- :class:`SketchSaturationMonitor` — the same saturation verdict from
  fixed memory.  The exact monitor's deque grows with request rate; the
  sketch variant keeps the window in a :class:`repro.detect.SketchWindow`
  (epoch-rotated count-min sketches), so memory is constant in both
  rate and client count, and as a bonus it can name the window's top
  talkers — the per-replica heavy-hitter evidence the coordinator's
  confirmation sweep consumes.  Verdict semantics match the exact
  monitor (same ``overload_ratio`` / ``min_events`` thresholds) up to
  the window's epoch granularity; the equivalence is pinned by tests.

All take an injectable monotonic ``clock`` so unit tests can drive
them deterministically; the service itself runs them on
``time.monotonic`` (the ``service`` layer is exempt from the simulator
wall-clock ban — see the P4 rule scope in reprolint).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

from ..detect import HeavyHitter, SketchParams, SketchWindow

__all__ = ["TokenBucket", "SaturationMonitor", "SketchSaturationMonitor"]


class TokenBucket:
    """Token-bucket rate limiter (``rate`` tokens/s, ``burst`` cap).

    Args:
        rate: steady-state refill rate in tokens per second.
        burst: bucket capacity — the largest burst admitted from idle.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; False when drained."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    @property
    def tokens(self) -> float:
        """Current token level (after refilling to now)."""
        self._refill(self._clock())
        return self._tokens


class SaturationMonitor:
    """Sliding-window throttle-ratio overload detector.

    Args:
        window: window length in seconds.
        overload_ratio: throttled fraction at which :meth:`saturated`
            reports True.
        min_events: minimum observations inside the window before the
            signal may fire (an idle or freshly booted replica must not
            look attacked on one unlucky request).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        window: float,
        overload_ratio: float,
        min_events: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        if not 0.0 < overload_ratio <= 1.0:
            raise ValueError("overload_ratio must be within (0, 1]")
        self.window = window
        self.overload_ratio = overload_ratio
        self.min_events = min_events
        self._clock = clock
        self._events: deque[tuple[float, bool]] = deque()
        self._throttled_in_window = 0

    def _prune(self, now: float) -> None:
        horizon = now - self.window
        events = self._events
        while events and events[0][0] < horizon:
            _, throttled = events.popleft()
            if throttled:
                self._throttled_in_window -= 1

    def record(self, admitted: bool, client_id: str | None = None) -> None:
        """Record one request outcome (admitted or throttled).

        ``client_id`` is accepted for interface parity with
        :class:`SketchSaturationMonitor` and ignored: the exact monitor
        measures saturation only, not who caused it.
        """
        del client_id
        now = self._clock()
        # Appended by request handlers, pruned by the detection sweep;
        # record()/counts() are fully synchronous (no await), so each
        # runs to completion before the loop switches tasks.
        # reprolint: disable=P9
        self._events.append((now, not admitted))
        if not admitted:
            self._throttled_in_window += 1
        self._prune(now)

    def counts(self) -> tuple[int, int]:
        """(total, throttled) events currently inside the window."""
        self._prune(self._clock())
        return len(self._events), self._throttled_in_window

    def throttle_ratio(self) -> float:
        total, throttled = self.counts()
        if total == 0:
            return 0.0
        return throttled / total

    def saturated(self) -> bool:
        """True when the window shows sustained overload."""
        total, throttled = self.counts()
        if total < self.min_events:
            return False
        return throttled / total >= self.overload_ratio

    def reset(self) -> None:
        self._events.clear()
        self._throttled_in_window = 0


class SketchSaturationMonitor:
    """Fixed-memory drop-in for :class:`SaturationMonitor`.

    Same constructor thresholds, same verdict interface (``record`` /
    ``counts`` / ``throttle_ratio`` / ``saturated`` / ``reset``), but
    the window lives in epoch-rotated sketches instead of a per-event
    deque, so memory does not grow with request rate — and the monitor
    additionally knows *who* filled the window (:meth:`heavy_hitters`).

    Args:
        window: window length in seconds.
        overload_ratio: throttled fraction at which :meth:`saturated`
            reports True.
        min_events: minimum observations inside the window before the
            signal may fire.
        clock: monotonic time source (injectable for tests).
        params: sketch sizing (ε/δ/top-k/seed); defaults are fine for
            replica-scale traffic.
        epochs: window ring cells — temporal resolution of expiry.
    """

    def __init__(
        self,
        window: float,
        overload_ratio: float,
        min_events: int,
        clock: Callable[[], float] = time.monotonic,
        params: SketchParams | None = None,
        epochs: int = 4,
    ) -> None:
        if not 0.0 < overload_ratio <= 1.0:
            raise ValueError("overload_ratio must be within (0, 1]")
        self.window = window
        self.overload_ratio = overload_ratio
        self.min_events = min_events
        self._clock = clock
        self._window = SketchWindow(window, params=params, epochs=epochs)

    def record(self, admitted: bool, client_id: str | None = None) -> None:
        """Record one request outcome, attributed to ``client_id``.

        Same single-event-loop discipline as the exact monitor: the
        update is synchronous (no await), so handlers cannot interleave
        mid-update.
        """
        # reprolint: disable=P9
        self._window.record(self._clock(), admitted, key=client_id)

    def counts(self) -> tuple[int, int]:
        """(total, throttled) events currently inside the window."""
        return self._window.counts(self._clock())

    def throttle_ratio(self) -> float:
        total, throttled = self.counts()
        if total == 0:
            return 0.0
        return throttled / total

    def saturated(self) -> bool:
        """True when the window shows sustained overload."""
        total, throttled = self.counts()
        if total < self.min_events:
            return False
        return throttled / total >= self.overload_ratio

    def heavy_hitters(self, n: int | None = None) -> list[HeavyHitter]:
        """The window's top talkers (who is filling the bucket)."""
        return self._window.heavy_hitters(self._clock(), n)

    def state_bytes(self) -> int:
        """Detector memory footprint (constant in request rate)."""
        return self._window.state_bytes()

    def reset(self) -> None:
        self._window.reset()
