"""JSON + Prometheus telemetry for the live service.

A deliberately tiny HTTP/1.0 endpoint — enough to watch a live run
converge without attaching a debugger:

- any path but ``/metrics``/``/trust`` (e.g. ``curl
  http://host:port/``) serves the coordinator's :meth:`snapshot` as
  JSON (the historical behaviour);
- ``GET /metrics`` serves the attached :class:`repro.obs.
  MetricsRegistry` in Prometheus text exposition format, so a stock
  Prometheus scraper can watch shuffle rounds and token buckets live;
- ``GET /trust`` serves just the snapshot's ``trust`` summary (tier
  populations + mean trust), ``null`` when trust is disabled — a
  cheap poll target for watching the ladder settle.

The file-export helpers that used to live here are deprecated shims
over :func:`repro.obs.export_json` — one writer for the whole repo.
"""

from __future__ import annotations

import asyncio
import json
import warnings
from pathlib import Path
from typing import Callable, Iterable

from ..obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    export_json,
    render_prometheus,
)
from ..obs.metrics import MetricsRegistry
from ..sim.qos import QoSWindow, windows_to_dicts

__all__ = ["TelemetryServer", "export_snapshot", "export_windows"]


class TelemetryServer:
    """Serve a snapshot callable (and optionally a metrics registry)
    over HTTP.

    Args:
        snapshot: zero-argument callable returning a JSON-ready dict
            (typically ``coordinator.snapshot``).
        host: bind interface.
        port: bind port (0 = ephemeral).
        registry: optional :class:`repro.obs.MetricsRegistry`; when
            given, ``GET /metrics`` renders it in Prometheus text
            format (every other path keeps serving the JSON snapshot).
    """

    def __init__(
        self,
        snapshot: Callable[[], dict],
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._snapshot = snapshot
        self.host = host
        self.port: int | None = port
        self.registry = registry
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port or 0
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None or self.port is None:
            raise RuntimeError("telemetry server not started")
        return (self.host, self.port)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # One-shot exchange: read the request head, answer, close.
            request = await reader.readline()
            parts = request.decode("ascii", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            if path == "/metrics" and self.registry is not None:
                body = render_prometheus(self.registry).encode("utf-8")
                content_type = PROMETHEUS_CONTENT_TYPE
            elif path == "/trust":
                body = json.dumps(
                    self._snapshot().get("trust")
                ).encode("utf-8")
                content_type = "application/json"
            else:
                body = json.dumps(self._snapshot()).encode("utf-8")
                content_type = "application/json"
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                + f"Content-Type: {content_type}\r\n".encode("ascii")
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def export_snapshot(snapshot: dict, path: str | Path) -> Path:
    """Deprecated: use :func:`repro.obs.export_json` (same output)."""
    warnings.warn(
        "repro.service.telemetry.export_snapshot is deprecated; use "
        "repro.obs.export_json",
        DeprecationWarning,
        stacklevel=2,
    )
    return export_json(snapshot, path)


def export_windows(windows: Iterable[QoSWindow], path: str | Path) -> Path:
    """Write QoS windows in the shared sim/live comparison schema."""
    return export_json(
        windows_to_dicts(list(windows)), path, sort_keys=False
    )
