"""JSON telemetry for the live service.

A deliberately tiny HTTP/1.0 endpoint (``curl http://host:port/metrics``
works) serving the coordinator's :meth:`snapshot` — enough to watch a
live run converge without attaching a debugger — plus file-export
helpers that write the same JSON, and QoS windows in the shared
:mod:`repro.sim.qos` schema, for offline comparison against cloudsim
timelines (see ``docs/live-vs-sim.md``).
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Callable, Iterable

from ..sim.qos import QoSWindow, windows_to_dicts

__all__ = ["TelemetryServer", "export_snapshot", "export_windows"]


class TelemetryServer:
    """Serve a snapshot callable as JSON over HTTP.

    Args:
        snapshot: zero-argument callable returning a JSON-ready dict
            (typically ``coordinator.snapshot``).
        host: bind interface.
        port: bind port (0 = ephemeral).
    """

    def __init__(
        self,
        snapshot: Callable[[], dict],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._snapshot = snapshot
        self.host = host
        self.port: int | None = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port or 0
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None or self.port is None:
            raise RuntimeError("telemetry server not started")
        return (self.host, self.port)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # One-shot exchange: read the request head, answer, close.
            await reader.readline()
            body = json.dumps(self._snapshot()).encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def export_snapshot(snapshot: dict, path: str | Path) -> Path:
    """Write one coordinator snapshot as pretty JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def export_windows(windows: Iterable[QoSWindow], path: str | Path) -> Path:
    """Write QoS windows in the shared sim/live comparison schema."""
    target = Path(path)
    target.write_text(
        json.dumps(windows_to_dicts(list(windows)), indent=2) + "\n",
        encoding="utf-8",
    )
    return target
