"""Shuffle plans: the unit of decision in the paper's defense.

A *shuffle plan* is the coordination server's only lever (Section III-D):
it decides **how many** clients go to each replacement replica, never which
individual clients.  The actual client-to-replica mapping is then a uniform
random matching of clients to the planned slots, which is what makes the
hypergeometric analysis of Section IV-A exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ShufflePlan", "PlanError"]


class PlanError(ValueError):
    """Raised when a shuffle plan violates the model's feasibility rules."""


@dataclass(frozen=True)
class ShufflePlan:
    """An assignment of ``n_clients`` clients across shuffling replicas.

    Attributes:
        group_sizes: ``x_1 .. x_P`` — clients per shuffling replica. Must be
            non-negative and sum to ``n_clients``.
        n_clients: total clients being shuffled (``N`` in the paper,
            benign clients plus persistent bots).
        n_bots: the bot count ``M`` the plan was optimized against. This is
            the *planner's belief* (often an MLE estimate), not ground truth.
        expected_saved: the planner's predicted ``E(S)`` for this plan under
            its belief ``n_bots``; ``nan`` when the planner does not compute
            it.
        algorithm: short name of the producing algorithm (``"greedy"``,
            ``"dp"``, ``"dp_fast"``, ``"even"``), for logs and experiments.
    """

    group_sizes: tuple[int, ...]
    n_clients: int
    n_bots: int
    expected_saved: float = float("nan")
    algorithm: str = "unspecified"

    def __post_init__(self) -> None:
        if self.n_clients < 0:
            raise PlanError(f"n_clients={self.n_clients} must be >= 0")
        if not 0 <= self.n_bots <= self.n_clients:
            raise PlanError(
                f"n_bots={self.n_bots} must be within [0, {self.n_clients}]"
            )
        sizes = self.group_sizes
        if any(size < 0 for size in sizes):
            raise PlanError(f"negative group size in {sizes!r}")
        if sum(sizes) != self.n_clients:
            raise PlanError(
                f"group sizes sum to {sum(sizes)}, expected {self.n_clients}"
            )

    @classmethod
    def from_sizes(
        cls,
        sizes: Iterable[int],
        n_bots: int,
        *,
        expected_saved: float = float("nan"),
        algorithm: str = "unspecified",
    ) -> "ShufflePlan":
        """Build a plan from group sizes, inferring ``n_clients``."""
        tup = tuple(int(size) for size in sizes)
        return cls(
            group_sizes=tup,
            n_clients=sum(tup),
            n_bots=int(n_bots),
            expected_saved=expected_saved,
            algorithm=algorithm,
        )

    @property
    def n_replicas(self) -> int:
        """Number of shuffling replicas the plan spreads clients across."""
        return len(self.group_sizes)

    @property
    def sizes_array(self) -> np.ndarray:
        """Group sizes as an ``int64`` numpy array (copy)."""
        return np.asarray(self.group_sizes, dtype=np.int64)

    def nonempty_sizes(self) -> tuple[int, ...]:
        """Sizes of replicas that actually receive clients."""
        return tuple(size for size in self.group_sizes if size > 0)

    def describe(self) -> str:
        """One-line human-readable summary used by experiment drivers."""
        sizes = self.nonempty_sizes()
        histogram: dict[int, int] = {}
        for size in sizes:
            histogram[size] = histogram.get(size, 0) + 1
        parts = ", ".join(
            f"{count}x{size}" for size, count in sorted(histogram.items())
        )
        return (
            f"ShufflePlan[{self.algorithm}] N={self.n_clients} "
            f"M={self.n_bots} P={self.n_replicas} sizes=({parts}) "
            f"E[S]={self.expected_saved:.2f}"
        )


def validate_partition(sizes: Sequence[int], n_clients: int) -> None:
    """Raise :class:`PlanError` unless ``sizes`` is a partition of clients."""
    if any(size < 0 for size in sizes):
        raise PlanError(f"negative group size in {tuple(sizes)!r}")
    if sum(sizes) != n_clients:
        raise PlanError(
            f"group sizes sum to {sum(sizes)}, expected {n_clients}"
        )
