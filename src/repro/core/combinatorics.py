"""Exact and log-space combinatorics used by the shuffling optimization.

Every probability in the paper's model (Section IV-A) is a ratio of binomial
coefficients.  At paper scale (``N`` up to 150,000 clients) the coefficients
themselves overflow any fixed-width float, so all public helpers work in
log-space via ``math.lgamma`` and only exponentiate ratios, which are always
in ``[0, 1]``.

Vocabulary (paper Table I):

``N``
    total number of clients, benign clients plus persistent bots.
``M``
    number of persistent bots hidden among the ``N`` clients.
``P``
    number of shuffling replica servers.
``x_i``
    number of clients assigned to the *i*-th shuffling replica.
``p_i``
    probability that the *i*-th replica is bot-free,
    ``p_i = C(N - x_i, M) / C(N, M)``.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

__all__ = [
    "log_binomial",
    "binomial_ratio",
    "survival_probability",
    "survival_probabilities",
    "survival_log_probabilities",
    "expected_saved_single",
    "expected_saved_single_many",
    "hypergeometric_pmf",
    "hypergeometric_pmf_vector",
    "logsumexp",
    "logsumexp_signed",
    "log1mexp",
    "log1mexp_many",
]

#: Mächler's split point for :func:`log1mexp` (arXiv accuracy note on
#: ``log1mexp``/``log1pexp``): below ``log 1/2`` the ``log1p(-exp(x))``
#: branch is more accurate, above it ``log(-expm1(x))`` is.
_LOG_HALF = math.log(0.5)


def logsumexp(log_values: np.ndarray) -> float:
    """Stable ``log(sum(exp(log_values)))`` over an array of logs.

    The peak is factored out before exponentiation, so intermediate sums
    stay in float range even when entries reach magnitudes around
    ``±10^6`` (paper scale: ``log C(N, M)`` for ``N = 150,000`` is a few
    hundred thousand).  ``-inf`` entries (``log 0``) drop out naturally;
    an empty or all-``-inf`` input returns ``-inf``.

    Example::

        >>> probs = np.array([0.25, 0.25, 0.5])
        >>> abs(logsumexp(np.log(probs))) < 1e-12  # log(sum) = log 1
        True
    """
    arr = np.asarray(log_values, dtype=np.float64)
    if arr.size == 0:
        return float("-inf")
    peak = float(np.max(arr))
    if math.isinf(peak):
        # All -inf (every term is log 0), or a +inf term dominates.
        return peak
    # This is the canonical implementation the P13 log(sum(exp)) finding
    # points callers at — the one place the naive shape is the algorithm.
    # reprolint: disable=P13
    return peak + math.log(float(np.sum(np.exp(arr - peak))))


def logsumexp_signed(
    log_magnitudes: np.ndarray,
    signs: np.ndarray,
    axis: int = -1,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched ``log |Σ_i s_i · exp(a_i)|`` plus the sign of each sum.

    The signed (alternating-series) counterpart of :func:`logsumexp`,
    reduced along ``axis``: the peak magnitude is factored out before
    exponentiation, the signed terms are summed in linear space, and the
    result is returned as ``(log_abs, sign)`` with ``sign ∈ {-1, 0, 1}``.
    A slice whose terms are all ``-inf`` (every addend is zero) returns
    ``(-inf, 0)``.

    Accuracy depends on the cancellation ratio ``|Σ| / max exp(a_i)``:
    callers must only rely on the result where that ratio is not tiny
    (see the closed-form occupancy tail in :mod:`repro.core.estimator`,
    which switches to this form only above its stability threshold).
    """
    magnitudes = np.asarray(log_magnitudes, dtype=np.float64)
    sign_arr = np.asarray(signs, dtype=np.float64)
    peak = np.max(magnitudes, axis=axis, keepdims=True)
    # All--inf slices would turn (a - peak) into nan; shift those by 0.
    safe_peak = np.where(np.isfinite(peak), peak, 0.0)
    total = np.sum(
        sign_arr * np.exp(magnitudes - safe_peak), axis=axis
    )
    # domain: log — |total| re-enters log space with the peak restored.
    with np.errstate(divide="ignore"):
        log_abs = np.log(np.abs(total)) + np.squeeze(safe_peak, axis=axis)
    return log_abs, np.sign(total)


def log1mexp(x: float) -> float:
    """Stable ``log(1 - exp(x))`` for ``x <= 0`` — the log-complement.

    Computing the complement of a probability held in log-space (e.g.
    "at least one replica attacked" from a bot-free log-probability)
    via ``log(1 - exp(x))`` loses all precision when ``x`` is near 0 or
    very negative; this uses Mächler's two-branch form instead.

    Example::

        >>> abs(log1mexp(math.log(0.5)) - math.log(0.5)) < 1e-15
        True
    """
    if x > 0.0:
        raise ValueError(f"log1mexp requires x <= 0, got {x}")
    # exact-sentinel: x == 0 exactly means exp(x) == 1, so log(0) = -inf
    if x == 0.0:
        return float("-inf")
    if x > _LOG_HALF:
        # exp(x) near 1: expm1 keeps the cancellation out of the log.
        return math.log(-math.expm1(x))
    # exp(x) small: log1p absorbs it without cancellation.  Canonical
    # implementation of the shape the P13 log1p(-exp(x)) finding flags.
    # reprolint: disable=P13
    return math.log1p(-math.exp(x))


def log1mexp_many(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`log1mexp` — ``log(1 - exp(x))`` elementwise.

    Mirrors the scalar helper's Mächler two-branch form; ``x == 0``
    entries (probability exactly 1) come out as ``-inf`` and ``x`` must
    be ``<= 0`` everywhere.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.size and float(np.max(arr)) > 0.0:
        raise ValueError("log1mexp_many requires x <= 0 everywhere")
    near_one = arr > _LOG_HALF  # exp(x) near 1: expm1 branch
    with np.errstate(divide="ignore"):
        # Both branches are evaluated on the full array (numpy has no
        # lazy select); the inaccurate lane is discarded by the where.
        # Canonical vector form of the shape the P13 log1p(-exp(x))
        # finding flags — same justification as the scalar log1mexp.
        out = np.where(
            near_one,
            np.log(-np.expm1(arr)),
            # reprolint: disable=P13
            np.log1p(-np.exp(np.minimum(arr, _LOG_HALF))),
        )
    return out


@lru_cache(maxsize=1 << 20)
def log_binomial(n: int, k: int) -> float:
    """Return ``log C(n, k)``, or ``-inf`` when the coefficient is zero.

    ``C(n, k) = 0`` for ``k < 0`` or ``k > n``; we mirror that convention so
    probability ratios built from impossible configurations come out as 0
    rather than raising.
    """
    if k < 0 or k > n or n < 0:
        return float("-inf")
    if k == 0 or k == n:
        # domain: log log C(n, 0) = log C(n, n) = log 1 = 0
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def binomial_ratio(n1: int, k1: int, n2: int, k2: int) -> float:
    """Return ``C(n1, k1) / C(n2, k2)`` computed stably in log-space.

    Raises :class:`ZeroDivisionError` when the denominator is zero.
    """
    log_den = log_binomial(n2, k2)
    if math.isinf(log_den):
        raise ZeroDivisionError(f"C({n2}, {k2}) is zero")
    log_num = log_binomial(n1, k1)
    if math.isinf(log_num):
        return 0.0
    # A *generic* coefficient ratio may legitimately exceed 1 (callers
    # like survival_probability clamp at their own boundary where the
    # [0, 1] contract actually holds).
    # reprolint: disable=P12
    return math.exp(log_num - log_den)


def survival_probability(n: int, m: int, x: int) -> float:
    """Probability that a replica holding ``x`` of ``n`` clients is bot-free.

    This is the paper's ``p_i = C(N - x_i, M) / C(N, M)``: the chance that
    all ``m`` bots land on the other ``n - x`` client slots when the ``m``
    bot identities are a uniform random subset of the ``n`` clients.

    Example::

        >>> round(survival_probability(4, 1, 1), 6)  # 1 bot in 4 clients
        0.75
    """
    if not 0 <= x <= n:
        raise ValueError(f"x={x} must be within [0, {n}]")
    if not 0 <= m <= n:
        raise ValueError(f"m={m} must be within [0, {n}]")
    if m == 0:
        return 1.0
    # C(n-x, m) <= C(n, m), but the two lgamma sums cancel differently,
    # so exp() can land a few ulp above 1 (the survival_probabilities
    # clip bug class); clamp at the probability boundary.
    return min(1.0, binomial_ratio(n - x, m, n, m))


def survival_probabilities(n: int, m: int, xs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`survival_probability` over an array of group sizes.

    Uses ``scipy``-free log-gamma vectorization so it stays fast for the
    ``N = 150,000`` sweeps in the Figure 8-10 simulations.
    """
    xs = np.asarray(xs, dtype=np.int64)
    if xs.size == 0:
        return np.zeros(0, dtype=np.float64)
    if m == 0:
        if xs.min() < 0 or xs.max() > n:
            raise ValueError("group sizes must be within [0, n]")
        if not 0 <= m <= n:
            raise ValueError(f"m={m} must be within [0, {n}]")
        return np.ones(xs.shape, dtype=np.float64)
    out = survival_log_probabilities(n, m, xs)
    # The numerator uses scipy's gammaln while the denominator uses
    # math.lgamma; their last-ulp disagreement can push exp() a few 1e-16
    # above 1.0 (e.g. at x = 0, where the true ratio is exactly 1).  Clip
    # to the probability range rather than leak >1 values downstream.
    return np.clip(np.exp(out), 0.0, 1.0)


def survival_log_probabilities(
    n: int, m: int, xs: np.ndarray
) -> np.ndarray:
    """``log p_i`` for every group size — the log-space survival kernel.

    Same quantity as :func:`survival_probabilities` but *kept* in log
    space (``log C(n - x, m) - log C(n, m)``, ``-inf`` for impossible
    configurations), for callers that would underflow in linear space —
    the Poisson-binomial convolution at paper scale chief among them.
    """
    xs = np.asarray(xs, dtype=np.int64)
    if xs.size == 0:
        return np.zeros(0, dtype=np.float64)
    if xs.min() < 0 or xs.max() > n:
        raise ValueError("group sizes must be within [0, n]")
    if not 0 <= m <= n:
        raise ValueError(f"m={m} must be within [0, {n}]")
    if m == 0:
        # domain: log — log 1 for every replica.
        return np.zeros(xs.shape, dtype=np.float64)
    rest = n - xs
    # log C(rest, m) - log C(n, m); C(rest, m) = 0 whenever rest < m.
    out = np.full(xs.shape, -np.inf, dtype=np.float64)
    ok = rest >= m
    restf = rest[ok].astype(np.float64)
    log_num = (
        _lgamma(restf + 1.0)
        - _lgamma(float(m) + 1.0)
        - _lgamma(restf - float(m) + 1.0)
    )
    log_den = (
        math.lgamma(n + 1) - math.lgamma(m + 1) - math.lgamma(n - m + 1)
    )
    out[ok] = log_num - log_den
    # A log-probability can land a few ulp above 0 for the same
    # numerator/denominator lgamma mismatch the linear path clips.
    return np.minimum(out, 0.0)


def _lgamma(values: np.ndarray | float) -> np.ndarray:
    """``lgamma`` broadcast over numpy arrays."""
    # domain: log vectorized lgamma (scipy gammaln or np.vectorize)
    return _VECTOR_LGAMMA(values)


def _make_vector_lgamma():
    try:
        # Optional accuracy upgrade only: the except arm keeps core
        # working on stdlib+numpy alone, so the layering contract's
        # intent (no hard third-party deps in core) is preserved.
        from scipy.special import gammaln  # reprolint: disable=P1

        return gammaln
    except ImportError:  # pragma: no cover - scipy is an install requirement
        return np.vectorize(math.lgamma, otypes=[np.float64])


_VECTOR_LGAMMA = _make_vector_lgamma()


def expected_saved_single(n: int, m: int, x: int) -> float:
    """Expected benign clients saved by one replica of size ``x``.

    The paper's per-replica objective term ``f(x) = x * p(x)``: all ``x``
    clients are saved iff the replica is bot-free (then every one of them is
    benign), otherwise none are.
    """
    return x * survival_probability(n, m, x)


def expected_saved_single_many(n: int, m: int, xs: np.ndarray) -> np.ndarray:
    """Vectorized ``f(x) = x * p(x)`` over group sizes ``xs``."""
    xs = np.asarray(xs, dtype=np.int64)
    return xs.astype(np.float64) * survival_probabilities(n, m, xs)


def hypergeometric_pmf(total: int, marked: int, draws: int, hits: int) -> float:
    """``P[b = hits]`` when drawing ``draws`` of ``total`` items, ``marked``
    of which are special — the paper's ``Pr(b)`` in Equation 3.

    ``Pr(b) = C(M, b) C(N − M, a − b) / C(N, a)`` with ``total = N``,
    ``marked = M``, ``draws = a``, ``hits = b``.
    """
    if not 0 <= marked <= total:
        raise ValueError("marked must be within [0, total]")
    if not 0 <= draws <= total:
        raise ValueError("draws must be within [0, total]")
    log_den = log_binomial(total, draws)
    log_num = log_binomial(marked, hits) + log_binomial(
        total - marked, draws - hits
    )
    if math.isinf(log_num):
        return 0.0
    return min(1.0, math.exp(log_num - log_den))


def hypergeometric_pmf_vector(total: int, marked: int, draws: int) -> np.ndarray:
    """Full hypergeometric pmf over ``b ∈ [0, min(draws, marked)]``.

    Returns an array of length ``min(draws, marked) + 1`` summing to 1
    (up to float error).  Used by the paper-literal dynamic program, which
    must enumerate every possible bot count ``b`` on the split-off replica.
    """
    upper = min(draws, marked)
    b = np.arange(upper + 1, dtype=np.float64)
    markedf = float(marked)
    restf = float(total - marked)
    drawsf = float(draws)
    log_den = log_binomial(total, draws)
    log_cmb = _lgamma(markedf + 1) - _lgamma(b + 1) - _lgamma(markedf - b + 1)
    rest_draws = drawsf - b
    log_crest = (
        _lgamma(restf + 1)
        - _lgamma(rest_draws + 1)
        - _lgamma(restf - rest_draws + 1)
    )
    with np.errstate(invalid="ignore"):
        logs = log_cmb + log_crest - log_den
    # Entries where (a - b) > (N - M) are impossible: C(rest, a-b) = 0.
    impossible = rest_draws > restf
    logs = np.where(impossible, -np.inf, logs)
    return np.clip(np.exp(logs), 0.0, 1.0)
