"""Attack-scale estimation (paper Section V).

The planners need the persistent-bot count ``M``, which is never observable
directly.  Following MOTAG, the paper estimates it by maximum likelihood
from the one signal the coordination server does see after each shuffle:
``X``, the number of shuffling replicas that came under attack.

Under (near-)uniform assignment, bots fall into replicas like balls into
bins, so ``P[X = x | M = m]`` is the classic occupancy distribution, which
we compute exactly with the standard DP

    f(m, x) = f(m−1, x) · x/P  +  f(m−1, x−1) · (P − x + 1)/P .

One bottom-up pass yields the likelihood of the observed ``X`` for *every*
candidate ``m`` simultaneously, so the estimator costs ``O(upper · P)``
(the paper quotes ``O(M² · P)``; the DP sharing makes it cheaper).

Degenerate regime (paper Figure 7, right edge): when **all** replicas are
attacked (``X = P``) the likelihood increases monotonically in ``m`` and
MLE returns its upper bound — the total client count on attacked replicas —
a gross overestimate.  Theorem 1 quantifies when that happens
(``M > log_{1−1/P}(1/P)``) and therefore how many replicas must be
provisioned for the estimate to be informative; see
:mod:`repro.analysis.theory`.

A closed-form moment-matching estimator is also provided for the
large-scale multi-round simulations, where running the exact DP with
``upper ≈ 150,000`` every round would dominate runtime: solving
``E[X] = P (1 − (1 − 1/P)^m)`` for ``m`` gives
``m̂ = ln(1 − X/P) / ln(1 − 1/P)``, which tracks the exact MLE closely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "BotEstimate",
    "occupancy_pmf",
    "occupancy_likelihoods",
    "estimate_bots_mle",
    "estimate_bots_moment",
    "estimate_bots_weighted",
    "attacked_count_pmf",
]


@dataclass(frozen=True)
class BotEstimate:
    """Result of an attack-scale estimation.

    Attributes:
        m_hat: estimated persistent-bot count.
        n_attacked: the observation ``X`` the estimate is based on.
        n_replicas: number of shuffling replicas ``P``.
        upper_bound: the largest ``m`` considered (clients on attacked
            replicas).
        degenerate: True when every replica was attacked, i.e. the MLE
            collapsed to ``upper_bound`` and more replicas are needed
            (Theorem 1) before the estimate can be trusted.
        log_likelihood: log-likelihood of the chosen ``m_hat`` (``nan`` for
            the moment estimator and for degenerate estimates).
    """

    m_hat: int
    n_attacked: int
    n_replicas: int
    upper_bound: int
    degenerate: bool = False
    log_likelihood: float = float("nan")


def occupancy_pmf(n_balls: int, n_bins: int) -> np.ndarray:
    """Distribution of the number of occupied bins.

    Returns an array ``pmf`` of length ``n_bins + 1`` with
    ``pmf[x] = P[exactly x bins non-empty]`` after throwing ``n_balls``
    balls uniformly into ``n_bins`` bins.
    """
    if n_bins < 1:
        raise ValueError(f"n_bins={n_bins} must be >= 1")
    if n_balls < 0:
        raise ValueError(f"n_balls={n_balls} must be >= 0")
    row = np.zeros(n_bins + 1, dtype=np.float64)
    row[0] = 1.0
    stay = np.arange(n_bins + 1, dtype=np.float64) / n_bins
    grow = (n_bins - np.arange(n_bins + 1, dtype=np.float64) + 1) / n_bins
    for _ in range(n_balls):
        shifted = np.empty_like(row)
        shifted[0] = 0.0
        shifted[1:] = row[:-1]
        row = row * stay + shifted * grow[: n_bins + 1]
    return row


def occupancy_likelihoods(
    n_attacked: int, n_bins: int, upper: int
) -> np.ndarray:
    """``L[m] = P[X = n_attacked | m bots, n_bins replicas]`` for all ``m``.

    Single DP sweep over ``m ∈ [0, upper]``; column ``n_attacked`` of each
    intermediate occupancy row is recorded.
    """
    if not 0 <= n_attacked <= n_bins:
        raise ValueError(
            f"n_attacked={n_attacked} must be within [0, {n_bins}]"
        )
    row = np.zeros(n_bins + 1, dtype=np.float64)
    row[0] = 1.0
    stay = np.arange(n_bins + 1, dtype=np.float64) / n_bins
    grow = (n_bins - np.arange(n_bins + 1, dtype=np.float64) + 1) / n_bins
    likelihoods = np.zeros(upper + 1, dtype=np.float64)
    likelihoods[0] = row[n_attacked]
    for m in range(1, upper + 1):
        shifted = np.empty_like(row)
        shifted[0] = 0.0
        shifted[1:] = row[:-1]
        row = row * stay + shifted * grow
        likelihoods[m] = row[n_attacked]
    return likelihoods


def estimate_bots_mle(
    n_attacked: int,
    n_replicas: int,
    upper_bound: int,
    log_prior: np.ndarray | None = None,
) -> BotEstimate:
    """Exact occupancy MLE of the persistent-bot count (Section V).

    Args:
        n_attacked: observed attacked-replica count ``X``.
        n_replicas: shuffling replica count ``P``.
        upper_bound: the largest admissible ``m`` — the paper uses the total
            number of clients assigned to attacked replicas.
        log_prior: optional log-space prior over ``m`` (length at least
            ``upper_bound + 1``, e.g. from :func:`repro.trust.prior.
            bot_count_log_prior`); when given, the argmax runs over
            ``log L(m) + log_prior[m]`` (a MAP estimate).  ``None``
            leaves the historical pure-MLE path untouched.  The
            degenerate all-attacked regime ignores the prior — the
            likelihood carries no information there, and inventing an
            estimate from the prior alone would hide the Theorem 1
            fallback the callers rely on.
    """
    if not 0 <= n_attacked <= n_replicas:
        raise ValueError(
            f"n_attacked={n_attacked} must be within [0, {n_replicas}]"
        )
    if upper_bound < n_attacked:
        raise ValueError(
            "upper_bound must be at least the attacked replica count "
            f"(got {upper_bound} < {n_attacked})"
        )
    if n_attacked == 0:
        return BotEstimate(
            m_hat=0,
            n_attacked=0,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
            log_likelihood=0.0,
        )
    if n_attacked == n_replicas:
        # Likelihood is monotone increasing in m: MLE degenerates to the
        # upper bound (paper Figure 7's right edge / Theorem 1 regime).
        return BotEstimate(
            m_hat=upper_bound,
            n_attacked=n_attacked,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
            degenerate=True,
        )
    likelihoods = occupancy_likelihoods(n_attacked, n_replicas, upper_bound)
    # Only m >= X can produce X attacked replicas.
    if log_prior is None:
        m_hat = n_attacked + int(np.argmax(likelihoods[n_attacked:]))
    else:
        if log_prior.shape[0] < upper_bound + 1:
            raise ValueError(
                f"log_prior covers {log_prior.shape[0]} counts, "
                f"need upper_bound + 1 = {upper_bound + 1}"
            )
        # log L + log prior; a zero likelihood becomes exactly -inf
        # (never the argmax unless everything is impossible).
        with np.errstate(divide="ignore"):
            log_posterior = (
                np.log(likelihoods) + log_prior[: upper_bound + 1]
            )
        m_hat = n_attacked + int(np.argmax(log_posterior[n_attacked:]))
    peak = float(likelihoods[m_hat])
    return BotEstimate(
        m_hat=m_hat,
        n_attacked=n_attacked,
        n_replicas=n_replicas,
        upper_bound=upper_bound,
        log_likelihood=math.log(peak) if peak > 0 else float("-inf"),
    )


def estimate_bots_moment(
    n_attacked: int, n_replicas: int, upper_bound: int
) -> BotEstimate:
    """Closed-form moment-matching estimator of the bot count.

    Solves ``E[X] = P (1 − (1 − 1/P)^m)`` for ``m``.  Used inside the
    multi-round simulators where the exact DP would be too slow; accuracy
    relative to :func:`estimate_bots_mle` is covered by tests.

    Example::

        >>> estimate_bots_moment(10, 20, 1000).m_hat
        14
    """
    if not 0 <= n_attacked <= n_replicas:
        raise ValueError(
            f"n_attacked={n_attacked} must be within [0, {n_replicas}]"
        )
    if n_attacked == 0:
        return BotEstimate(
            m_hat=0,
            n_attacked=0,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
        )
    if n_attacked == n_replicas:
        return BotEstimate(
            m_hat=upper_bound,
            n_attacked=n_attacked,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
            degenerate=True,
        )
    raw = math.log1p(-(n_attacked / n_replicas)) / math.log1p(
        -1.0 / n_replicas
    )
    m_hat = max(n_attacked, min(upper_bound, round(raw)))
    return BotEstimate(
        m_hat=int(m_hat),
        n_attacked=n_attacked,
        n_replicas=n_replicas,
        upper_bound=upper_bound,
    )


def attacked_count_pmf(
    sizes: Sequence[int] | np.ndarray, n_clients: int, n_bots: int
) -> np.ndarray:
    """Approximate pmf of the attacked-replica count for arbitrary sizes.

    The occupancy model behind :func:`estimate_bots_mle` assumes (near-)
    uniform group sizes.  Real greedy plans are far from uniform (many
    ``omega``-sized clean groups plus one quarantine bucket), so this
    helper generalizes: each replica's *marginal* attack probability is
    exact, ``q_i = 1 - C(N - x_i, M) / C(N, M)``, and the attacked count
    is approximated as Poisson-binomial over those marginals (ignoring the
    weak negative correlation the fixed bot total induces).  Empty
    replicas can never be attacked.

    Returns an array ``pmf`` of length ``len(sizes) + 1``.
    """
    from .combinatorics import survival_probabilities

    xs = np.asarray(sizes, dtype=np.int64)
    q = 1.0 - survival_probabilities(n_clients, n_bots, xs)
    # Poisson-binomial via sequential convolution.
    pmf = np.zeros(xs.size + 1, dtype=np.float64)
    pmf[0] = 1.0
    filled = 0
    for qi in q:
        # ``q`` comes from exp(log-space): impossible configurations
        # (x_i = 0, or m = 0) produce exp(-inf), which is *exactly* 0.0,
        # so exact equality is the correct test for "replica can never
        # be attacked" — an epsilon would wrongly drop tiny-but-real
        # attack probabilities from the convolution.
        if qi == 0.0:  # exact-sentinel: exp(-inf) underflows to exact 0.0
            continue
        filled += 1
        pmf[1 : filled + 1] = (
            pmf[1 : filled + 1] * (1.0 - qi) + pmf[:filled] * qi
        )
        pmf[0] *= 1.0 - qi
    return pmf


def estimate_bots_weighted(
    n_attacked: int,
    sizes: Sequence[int] | np.ndarray,
    n_clients: int,
    candidates: int = 64,
    log_prior: np.ndarray | None = None,
) -> BotEstimate:
    """MLE of the bot count for *non-uniform* group sizes.

    Maximizes the Poisson-binomial likelihood of
    :func:`attacked_count_pmf` over ``m``.  To keep the cost bounded for
    the 150K-client simulations, the search evaluates a geometric
    candidate grid between the observed attack count and the client total,
    then refines around the best candidate.

    Args:
        n_attacked: observed attacked-replica count ``X``.
        sizes: planned group sizes ``x_1..x_P`` of the observed shuffle.
        n_clients: total clients ``N`` in the shuffle.
        candidates: grid density for the coarse search.
        log_prior: optional log-space prior over ``m`` (length at least
            ``n_clients + 1``); when given the grid search maximizes
            ``log L(m) + log_prior[m]`` (MAP).  ``None`` keeps the
            historical pure-MLE path bit-identical; the degenerate
            all-nonempty-attacked regime ignores the prior (see
            :func:`estimate_bots_mle`).
    """
    xs = np.asarray(sizes, dtype=np.int64)
    n_replicas = int(xs.size)
    nonempty = int((xs > 0).sum())
    if not 0 <= n_attacked <= n_replicas:
        raise ValueError(
            f"n_attacked={n_attacked} must be within [0, {n_replicas}]"
        )
    if int(xs.sum()) != n_clients:
        raise ValueError("sizes must sum to n_clients")
    if n_attacked > nonempty:
        raise ValueError(
            f"n_attacked={n_attacked} exceeds non-empty replicas "
            f"({nonempty})"
        )
    if n_attacked == 0:
        return BotEstimate(
            m_hat=0, n_attacked=0, n_replicas=n_replicas,
            upper_bound=n_clients, log_likelihood=0.0,
        )
    if n_attacked == nonempty:
        # Saturated: likelihood is monotone in m, degenerate estimate.
        return BotEstimate(
            m_hat=n_clients, n_attacked=n_attacked, n_replicas=n_replicas,
            upper_bound=n_clients, degenerate=True,
        )

    if log_prior is not None and log_prior.shape[0] < n_clients + 1:
        raise ValueError(
            f"log_prior covers {log_prior.shape[0]} counts, "
            f"need n_clients + 1 = {n_clients + 1}"
        )

    def log_likelihood(m: int) -> float:
        pmf = attacked_count_pmf(xs, n_clients, m)
        value = float(pmf[n_attacked])
        return math.log(value) if value > 0 else float("-inf")

    def objective(m: int) -> float:
        # MAP objective: log-likelihood plus the (log-space) prior.
        value = log_likelihood(m)
        if log_prior is not None:
            value += float(log_prior[m])
        return value

    lo, hi = n_attacked, n_clients
    grid = np.unique(
        np.geomspace(max(lo, 1), hi, num=min(candidates, hi - lo + 1))
        .round()
        .astype(np.int64)
    )
    grid = grid[(grid >= lo) & (grid <= hi)]
    if grid.size == 0:
        grid = np.array([lo], dtype=np.int64)
    coarse_best = max(grid, key=objective)
    # Local refinement between the neighbouring grid points.
    position = int(np.searchsorted(grid, coarse_best))
    left = int(grid[position - 1]) if position > 0 else lo
    right = int(grid[position + 1]) if position + 1 < grid.size else hi
    window = range(max(lo, left), min(hi, right) + 1)
    m_hat = max(window, key=objective)
    return BotEstimate(
        m_hat=int(m_hat),
        n_attacked=n_attacked,
        n_replicas=n_replicas,
        upper_bound=n_clients,
        log_likelihood=log_likelihood(int(m_hat)),
    )
