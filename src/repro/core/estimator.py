"""Attack-scale estimation (paper Section V) — vectorized kernels.

The planners need the persistent-bot count ``M``, which is never observable
directly.  Following MOTAG, the paper estimates it by maximum likelihood
from the one signal the coordination server does see after each shuffle:
``X``, the number of shuffling replicas that came under attack.

Under (near-)uniform assignment, bots fall into replicas like balls into
bins, so ``P[X = x | M = m]`` is the classic occupancy distribution, which
we compute exactly with the standard recurrence

    f(m, x) = f(m−1, x) · x/P  +  f(m−1, x−1) · (P − x + 1)/P ,

executed as whole-array steps (no per-element stores — reprolint P14 keeps
this module loop-free at the element level).  One bottom-up pass yields the
likelihood of the observed ``X`` for *every* candidate ``m`` simultaneously,
so the exact estimator costs ``O(upper · P)``.

At paper scale (``upper ≈ 10^6`` clients, ``P ≈ 10^3`` replicas) even that
sweep is ``10^9`` element-ops, so the estimator goes hybrid: the recurrence
covers ``m`` below a stability threshold ``m* ≈ x (ln x + 8)``, and above
it the closed-form inclusion-exclusion occupancy likelihood

    P[X = x | m] = C(P, x) Σ_j (−1)^j C(x, j) ((x − j)/P)^m

is evaluated in log space with a signed ``logsumexp`` — stable exactly
where the recurrence is unaffordable, because the alternating sum's
cancellation ratio ``≈ 1 − x e^{−m/x}`` approaches 1 beyond ``m*``.  A
geometric grid plus bracket refinement then finds the MLE argmax; for all
instances below :data:`_EXACT_SWEEP_LIMIT` the historical full sweep runs
unchanged, bit-identical to the scalar implementation.

Degenerate regime (paper Figure 7, right edge): when **all** replicas are
attacked (``X = P``) the likelihood increases monotonically in ``m`` and
MLE returns its upper bound — a gross overestimate.  Theorem 1 quantifies
when that happens and therefore how many replicas must be provisioned for
the estimate to be informative; see :mod:`repro.analysis.theory`.

A closed-form moment-matching estimator is also provided for the
large-scale multi-round simulations: solving ``E[X] = P (1 − (1 − 1/P)^m)``
for ``m`` gives ``m̂ = ln(1 − X/P) / ln(1 − 1/P)``.

The historical entry points (``estimate_bots_mle`` / ``estimate_bots_
weighted`` / ``estimate_bots_moment``) are deprecated shims over
:func:`repro.core.api.estimate`; see ``docs/core-api.md``.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .combinatorics import (
    log_binomial,
    log1mexp_many,
    logsumexp,
    logsumexp_signed,
    survival_log_probabilities,
    survival_probabilities,
)

__all__ = [
    "BotEstimate",
    "occupancy_pmf",
    "occupancy_likelihoods",
    "occupancy_log_likelihoods",
    "estimate_bots_mle",
    "estimate_bots_moment",
    "estimate_bots_weighted",
    "attacked_count_pmf",
    "attacked_count_log_pmf",
]

#: Largest ``(upper + 1) · (P + 1)`` for which the exact full-range
#: recurrence sweep runs (bit-identical to the historical scalar path);
#: larger instances switch to the hybrid recurrence-head + closed-form
#: grid search.  25M element-ops keeps every test-scale and service-scale
#: instance on the exact path while bounding the sweep around ~0.2 s.
_EXACT_SWEEP_LIMIT = 25_000_000

#: Bracket width below which the weighted estimator's refinement does the
#: historical exhaustive scan; wider brackets (only reachable at
#: ``N >> 10^5``) are narrowed geometrically first.
_REFINE_SCAN_LIMIT = 4096

#: Candidate-batch size for the closed-form tail grid search.
_GRID_POINTS = 512


@dataclass(frozen=True)
class BotEstimate:
    """Result of an attack-scale estimation.

    Attributes:
        m_hat: estimated persistent-bot count.
        n_attacked: the observation ``X`` the estimate is based on.
        n_replicas: number of shuffling replicas ``P``.
        upper_bound: the largest ``m`` considered (clients on attacked
            replicas).
        degenerate: True when every replica was attacked, i.e. the MLE
            collapsed to ``upper_bound`` and more replicas are needed
            (Theorem 1) before the estimate can be trusted.
        log_likelihood: log-likelihood of the chosen ``m_hat`` (``nan`` for
            the moment estimator and for degenerate estimates).
    """

    m_hat: int
    n_attacked: int
    n_replicas: int
    upper_bound: int
    degenerate: bool = False
    log_likelihood: float = float("nan")


def _occupancy_step(
    row: np.ndarray, stay: np.ndarray, grow: np.ndarray
) -> np.ndarray:
    """One ball of the occupancy recurrence as a whole-array update.

    The slice-store shift is the cheapest whole-array spelling (one
    uninitialized allocation, no concatenate); the arithmetic is the
    seed recurrence verbatim, so outputs stay bit-identical.
    """
    shifted = np.empty_like(row)
    shifted[0] = 0.0
    shifted[1:] = row[:-1]
    return row * stay + shifted * grow


def _occupancy_weights(n_bins: int) -> tuple[np.ndarray, np.ndarray]:
    arange = np.arange(n_bins + 1, dtype=np.float64)
    stay = arange / n_bins
    grow = (n_bins - arange + 1) / n_bins
    return stay, grow


def occupancy_pmf(n_balls: int, n_bins: int) -> np.ndarray:
    """Distribution of the number of occupied bins.

    Returns an array ``pmf`` of length ``n_bins + 1`` with
    ``pmf[x] = P[exactly x bins non-empty]`` after throwing ``n_balls``
    balls uniformly into ``n_bins`` bins.

    Example::

        >>> occupancy_pmf(2, 2)
        array([0. , 0.5, 0.5])
    """
    if n_bins < 1:
        raise ValueError(f"n_bins={n_bins} must be >= 1")
    if n_balls < 0:
        raise ValueError(f"n_balls={n_balls} must be >= 0")
    row = np.zeros(n_bins + 1, dtype=np.float64)
    row[0] = 1.0
    stay, grow = _occupancy_weights(n_bins)
    for _ in range(n_balls):
        row = _occupancy_step(row, stay, grow)
    return row


def occupancy_likelihoods(
    n_attacked: int, n_bins: int, upper: int
) -> np.ndarray:
    """``L[m] = P[X = n_attacked | m bots, n_bins replicas]`` for all ``m``.

    Single recurrence sweep over ``m ∈ [0, upper]``; column ``n_attacked``
    of each intermediate occupancy row is collected.  Linear-space values
    (exact where they do not underflow); the batched log-space form is
    :func:`occupancy_log_likelihoods`.
    """
    if not 0 <= n_attacked <= n_bins:
        raise ValueError(
            f"n_attacked={n_attacked} must be within [0, {n_bins}]"
        )
    row = np.zeros(n_bins + 1, dtype=np.float64)
    row[0] = 1.0
    stay, grow = _occupancy_weights(n_bins)
    collected = [float(row[n_attacked])]
    for _ in range(upper):
        row = _occupancy_step(row, stay, grow)
        collected.append(float(row[n_attacked]))
    return np.array(collected, dtype=np.float64)


def _closed_form_threshold(n_attacked: int) -> int:
    """Smallest ``m`` where the inclusion-exclusion tail is stable.

    The alternating sum's cancellation ratio is ``≈ 1 − x e^{−m/x}``;
    ``m ≥ x (ln x + 8)`` pins the cancelled mass at ``e^{−8} ≈ 3·10^-4``,
    leaving ~12 significant digits.
    """
    x = max(n_attacked, 1)
    return int(x * (math.log(x) + 8.0)) + 1


def _occupancy_log_closed(
    m_values: np.ndarray, n_attacked: int, n_bins: int
) -> np.ndarray:
    """Closed-form ``log P[X = x | m]`` batched over ``m`` (log space).

    ``P[X = x | m] = C(P, x) Σ_{j<x} (−1)^j C(x, j) ((x − j)/P)^m`` — an
    alternating series reduced with the signed ``logsumexp``.  Only valid
    for ``m >= _closed_form_threshold(x)`` (callers enforce this); the
    ``j = x`` term is ``0^m = 0`` for ``m >= 1`` and is simply omitted.
    """
    x = n_attacked
    ms = np.asarray(m_values, dtype=np.float64)
    j = np.arange(x, dtype=np.float64)
    log_choose = np.array(
        [log_binomial(x, int(jj)) for jj in range(x)], dtype=np.float64
    )
    # domain: log — ((x - j)/P)^m as m * log((x - j)/P).
    log_ratio = np.log((x - j) / n_bins)
    terms = log_choose[None, :] + ms[:, None] * log_ratio[None, :]
    signs = np.where(j.astype(np.int64) % 2 == 0, 1.0, -1.0)
    log_abs, sign = logsumexp_signed(terms, signs, axis=1)
    # The series sums to a probability; in the stable region the sign is
    # strictly positive.  A non-positive sum can only arise from float
    # cancellation below the threshold — treat it as log 0.
    front = log_binomial(n_bins, x)
    return np.where(sign > 0, front + log_abs, -np.inf)


def occupancy_log_likelihoods(
    n_attacked: int, n_bins: int, m_values: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Batched ``log P[X = n_attacked | m]`` over arbitrary ``m`` values.

    The hybrid log-space kernel behind the scalable MLE: candidates below
    the stability threshold ``m*`` come from the exact recurrence sweep
    (logged), candidates above it from the closed-form inclusion-exclusion
    series — each evaluated where it is both fast and stable.
    """
    if not 0 <= n_attacked <= n_bins:
        raise ValueError(
            f"n_attacked={n_attacked} must be within [0, {n_bins}]"
        )
    ms = np.asarray(m_values, dtype=np.int64)
    if ms.size == 0:
        return np.zeros(0, dtype=np.float64)
    if int(ms.min()) < 0:
        raise ValueError("m values must be >= 0")
    out = np.full(ms.shape, -np.inf, dtype=np.float64)
    threshold = _closed_form_threshold(n_attacked)
    head = ms < threshold
    if bool(head.any()):
        table = occupancy_likelihoods(
            n_attacked, n_bins, int(ms[head].max())
        )
        # domain: log — exact linear-space likelihoods entering log space;
        # underflowed entries become exactly -inf.
        with np.errstate(divide="ignore"):
            out[head] = np.log(table[ms[head]])
    tail = ~head
    if bool(tail.any()):
        out[tail] = _occupancy_log_closed(ms[tail], n_attacked, n_bins)
    return out


def _mle_grid_search(
    n_attacked: int, n_replicas: int, upper_bound: int
) -> tuple[int, float]:
    """Argmax of the occupancy log-likelihood for huge ``upper_bound``.

    Exact recurrence over ``[x, m*]``, then a geometric grid with
    iterated bracket refinement over the closed-form tail ``[m*, upper]``
    (the likelihood is unimodal in ``m`` for ``x < P``).  Returns
    ``(m_hat, log_likelihood)``.
    """
    x = n_attacked
    threshold = min(_closed_form_threshold(x), upper_bound)
    head = occupancy_likelihoods(x, n_replicas, threshold)
    head_m = x + int(np.argmax(head[x:]))
    head_peak = float(head[head_m])
    head_log = math.log(head_peak) if head_peak > 0 else float("-inf")
    if threshold >= upper_bound:
        return head_m, head_log
    lo, hi = threshold, upper_bound
    while hi - lo + 1 > _REFINE_SCAN_LIMIT:
        grid = np.unique(
            np.geomspace(max(lo, 1), hi, num=_GRID_POINTS)
            .round()
            .astype(np.int64)
        )
        grid = grid[(grid >= lo) & (grid <= hi)]
        logs = _occupancy_log_closed(grid, x, n_replicas)
        best = int(np.argmax(logs))
        new_lo = int(grid[best - 1]) if best > 0 else lo
        new_hi = int(grid[best + 1]) if best + 1 < grid.size else hi
        if (new_lo, new_hi) == (lo, hi):
            break
        lo, hi = new_lo, new_hi
    window = np.arange(lo, hi + 1, dtype=np.int64)
    logs = _occupancy_log_closed(window, x, n_replicas)
    tail_idx = int(np.argmax(logs))
    tail_m = int(window[tail_idx])
    tail_log = float(logs[tail_idx])
    if tail_log > head_log:
        return tail_m, tail_log
    return head_m, head_log


def _estimate_mle(
    n_attacked: int,
    n_replicas: int,
    upper_bound: int,
    log_prior: np.ndarray | None = None,
) -> BotEstimate:
    """Exact occupancy MLE of the persistent-bot count (Section V).

    Implementation behind ``method="mle"`` of :func:`repro.core.api.
    estimate`; see :func:`estimate_bots_mle` for the argument contract.
    """
    if not 0 <= n_attacked <= n_replicas:
        raise ValueError(
            f"n_attacked={n_attacked} must be within [0, {n_replicas}]"
        )
    if upper_bound < n_attacked:
        raise ValueError(
            "upper_bound must be at least the attacked replica count "
            f"(got {upper_bound} < {n_attacked})"
        )
    if n_attacked == 0:
        return BotEstimate(
            m_hat=0,
            n_attacked=0,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
            log_likelihood=0.0,
        )
    if n_attacked == n_replicas:
        # Likelihood is monotone increasing in m: MLE degenerates to the
        # upper bound (paper Figure 7's right edge / Theorem 1 regime).
        return BotEstimate(
            m_hat=upper_bound,
            n_attacked=n_attacked,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
            degenerate=True,
        )
    sweep_cost = (upper_bound + 1) * (n_replicas + 1)
    if log_prior is None and sweep_cost > _EXACT_SWEEP_LIMIT:
        # Huge instance, pure MLE: hybrid grid search (the MAP path stays
        # on the exact sweep — an arbitrary prior need not be unimodal).
        m_hat, log_like = _mle_grid_search(
            n_attacked, n_replicas, upper_bound
        )
        return BotEstimate(
            m_hat=m_hat,
            n_attacked=n_attacked,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
            log_likelihood=log_like,
        )
    likelihoods = occupancy_likelihoods(n_attacked, n_replicas, upper_bound)
    # Only m >= X can produce X attacked replicas.
    if log_prior is None:
        m_hat = n_attacked + int(np.argmax(likelihoods[n_attacked:]))
    else:
        if log_prior.shape[0] < upper_bound + 1:
            raise ValueError(
                f"log_prior covers {log_prior.shape[0]} counts, "
                f"need upper_bound + 1 = {upper_bound + 1}"
            )
        # log L + log prior; a zero likelihood becomes exactly -inf
        # (never the argmax unless everything is impossible).
        with np.errstate(divide="ignore"):
            log_posterior = (
                np.log(likelihoods) + log_prior[: upper_bound + 1]
            )
        m_hat = n_attacked + int(np.argmax(log_posterior[n_attacked:]))
    peak = float(likelihoods[m_hat])
    return BotEstimate(
        m_hat=m_hat,
        n_attacked=n_attacked,
        n_replicas=n_replicas,
        upper_bound=upper_bound,
        log_likelihood=math.log(peak) if peak > 0 else float("-inf"),
    )


def _estimate_moment(
    n_attacked: int, n_replicas: int, upper_bound: int
) -> BotEstimate:
    """Closed-form moment-matching estimator (``method="moment"``)."""
    if not 0 <= n_attacked <= n_replicas:
        raise ValueError(
            f"n_attacked={n_attacked} must be within [0, {n_replicas}]"
        )
    if n_attacked == 0:
        return BotEstimate(
            m_hat=0,
            n_attacked=0,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
        )
    if n_attacked == n_replicas:
        return BotEstimate(
            m_hat=upper_bound,
            n_attacked=n_attacked,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
            degenerate=True,
        )
    raw = math.log1p(-(n_attacked / n_replicas)) / math.log1p(
        -1.0 / n_replicas
    )
    m_hat = max(n_attacked, min(upper_bound, round(raw)))
    return BotEstimate(
        m_hat=int(m_hat),
        n_attacked=n_attacked,
        n_replicas=n_replicas,
        upper_bound=upper_bound,
    )


def attacked_count_pmf(
    sizes: Sequence[int] | np.ndarray, n_clients: int, n_bots: int
) -> np.ndarray:
    """Approximate pmf of the attacked-replica count for arbitrary sizes.

    The occupancy model behind the uniform MLE assumes (near-)uniform
    group sizes.  Real greedy plans are far from uniform (many
    ``omega``-sized clean groups plus one quarantine bucket), so this
    helper generalizes: each replica's *marginal* attack probability is
    exact, ``q_i = 1 - C(N - x_i, M) / C(N, M)``, and the attacked count
    is approximated as Poisson-binomial over those marginals (ignoring the
    weak negative correlation the fixed bot total induces).  Empty
    replicas can never be attacked.

    The convolution advances one replica per step as a whole-array
    multiply-add over the filled window (identical arithmetic to the
    historical windowed form — after ``k`` replicas at most ``k + 1``
    counts have mass, so the window grows by one per step instead of
    touching the full length-``P + 1`` array each time).  Returns an
    array ``pmf`` of length ``len(sizes) + 1``; the log-space variant
    for paper-scale instances is :func:`attacked_count_log_pmf`.
    """
    xs = np.asarray(sizes, dtype=np.int64)
    q = 1.0 - survival_probabilities(n_clients, n_bots, xs)
    # ``q`` comes from exp(log-space): impossible configurations
    # (x_i = 0, or m = 0) produce exp(-inf), which is *exactly* 0.0,
    # so exact equality is the correct test for "replica can never
    # be attacked" — an epsilon would wrongly drop tiny-but-real
    # attack probabilities from the convolution.
    # exact-sentinel: exp(-inf) underflows to exact 0.0
    active = q[q != 0.0]
    window = np.ones(1, dtype=np.float64)
    for qi in active:
        window = _poisson_binomial_step(window, float(qi))
    pmf = np.zeros(xs.size + 1, dtype=np.float64)
    pmf[: window.size] = window
    return pmf


def _poisson_binomial_step(window: np.ndarray, qi: float) -> np.ndarray:
    """One replica of the Poisson-binomial convolution (whole-array).

    Grows the filled window by one count: ``out[k] = window[k] · (1 − q)
    + window[k − 1] · q``.  The multiply-then-accumulate spells the seed
    expression ``pmf · (1 − q) + shifted · q`` with the same rounding
    steps, so outputs stay bit-identical.
    """
    out = np.empty(window.size + 1, dtype=np.float64)
    np.multiply(window, 1.0 - qi, out=out[:-1])
    out[-1] = 0.0
    out[1:] += window * qi
    return out


def attacked_count_log_pmf(
    sizes: Sequence[int] | np.ndarray, n_clients: int, n_bots: int
) -> np.ndarray:
    """Log-space Poisson-binomial pmf of the attacked-replica count.

    Same model as :func:`attacked_count_pmf` but the convolution runs
    entirely in log space (``logaddexp`` steps over ``log p_i`` /
    ``log q_i``), so tail probabilities that underflow linear floats at
    paper scale stay resolved.  The result is normalized in log space by
    subtracting the ``logsumexp`` of the convolution — never by
    linear-domain division.
    """
    xs = np.asarray(sizes, dtype=np.int64)
    # domain: log — log p_i exact from the lgamma difference (no exp).
    log_p = survival_log_probabilities(n_clients, n_bots, xs)
    # domain: log — log q_i = log(1 - p_i) via the stable complement.
    log_q = log1mexp_many(log_p)
    # Replicas with log q_i == -inf (p_i == 1 exactly: empty replica or
    # m == 0) can never be attacked and drop out of the convolution,
    # mirroring the linear path's q_i == 0.0 skip; log q is otherwise
    # finite, so isfinite is exactly that test.
    keep = np.isfinite(log_q)
    log_pmf = np.full(xs.size + 1, -np.inf, dtype=np.float64)
    log_pmf[0] = 0.0
    for log_pi, log_qi in zip(log_p[keep], log_q[keep]):
        shifted = np.concatenate(
            (np.full(1, -np.inf), log_pmf[:-1])
        )
        log_pmf = np.logaddexp(log_pmf + log_pi, shifted + log_qi)
    # domain: log — normalize with logsumexp, not linear division: the
    # logaddexp chain drifts a few ulp off sum == 1 and the subtraction
    # re-anchors it without leaving log space.
    return log_pmf - logsumexp(log_pmf)


def _estimate_weighted(
    n_attacked: int,
    sizes: Sequence[int] | np.ndarray,
    n_clients: int,
    candidates: int = 64,
    log_prior: np.ndarray | None = None,
) -> BotEstimate:
    """MLE of the bot count for *non-uniform* group sizes.

    Implementation behind ``method="weighted"`` of :func:`repro.core.api.
    estimate`; see :func:`estimate_bots_weighted` for the contract.
    """
    xs = np.asarray(sizes, dtype=np.int64)
    n_replicas = int(xs.size)
    nonempty = int((xs > 0).sum())
    if not 0 <= n_attacked <= n_replicas:
        raise ValueError(
            f"n_attacked={n_attacked} must be within [0, {n_replicas}]"
        )
    if int(xs.sum()) != n_clients:
        raise ValueError("sizes must sum to n_clients")
    if n_attacked > nonempty:
        raise ValueError(
            f"n_attacked={n_attacked} exceeds non-empty replicas "
            f"({nonempty})"
        )
    if n_attacked == 0:
        return BotEstimate(
            m_hat=0, n_attacked=0, n_replicas=n_replicas,
            upper_bound=n_clients, log_likelihood=0.0,
        )
    if n_attacked == nonempty:
        # Saturated: likelihood is monotone in m, degenerate estimate.
        return BotEstimate(
            m_hat=n_clients, n_attacked=n_attacked, n_replicas=n_replicas,
            upper_bound=n_clients, degenerate=True,
        )

    if log_prior is not None and log_prior.shape[0] < n_clients + 1:
        raise ValueError(
            f"log_prior covers {log_prior.shape[0]} counts, "
            f"need n_clients + 1 = {n_clients + 1}"
        )

    def log_likelihood(m: int) -> float:
        pmf = attacked_count_pmf(xs, n_clients, m)
        value = float(pmf[n_attacked])
        if value > 0.0:
            return math.log(value)
        # Linear underflow: re-resolve the tail in log space.
        return float(attacked_count_log_pmf(xs, n_clients, m)[n_attacked])

    def objective(m: int) -> float:
        # MAP objective: log-likelihood plus the (log-space) prior.
        value = log_likelihood(m)
        if log_prior is not None:
            value += float(log_prior[m])
        return value

    lo, hi = n_attacked, n_clients
    grid = np.unique(
        np.geomspace(max(lo, 1), hi, num=min(candidates, hi - lo + 1))
        .round()
        .astype(np.int64)
    )
    grid = grid[(grid >= lo) & (grid <= hi)]
    if grid.size == 0:
        grid = np.array([lo], dtype=np.int64)
    coarse_best = max(grid, key=objective)
    # Local refinement between the neighbouring grid points.
    position = int(np.searchsorted(grid, coarse_best))
    left = int(grid[position - 1]) if position > 0 else lo
    right = int(grid[position + 1]) if position + 1 < grid.size else hi
    while right - left + 1 > _REFINE_SCAN_LIMIT:
        # Bracket too wide to scan (only reachable at N >> 10^5): narrow
        # it with another geometric grid before the exhaustive pass.
        inner = np.unique(
            np.geomspace(max(left, 1), right, num=candidates)
            .round()
            .astype(np.int64)
        )
        inner = inner[(inner >= left) & (inner <= right)]
        inner_best = max(inner, key=objective)
        inner_pos = int(np.searchsorted(inner, inner_best))
        new_left = int(inner[inner_pos - 1]) if inner_pos > 0 else left
        new_right = (
            int(inner[inner_pos + 1])
            if inner_pos + 1 < inner.size
            else right
        )
        if (new_left, new_right) == (left, right):
            break
        left, right = new_left, new_right
    window = range(max(lo, left), min(hi, right) + 1)
    m_hat = max(window, key=objective)
    return BotEstimate(
        m_hat=int(m_hat),
        n_attacked=n_attacked,
        n_replicas=n_replicas,
        upper_bound=n_clients,
        log_likelihood=log_likelihood(int(m_hat)),
    )


# ----------------------------------------------------------------------
# deprecated entry points (thin shims over repro.core.api.estimate)
# ----------------------------------------------------------------------
def estimate_bots_mle(
    n_attacked: int,
    n_replicas: int,
    upper_bound: int,
    log_prior: np.ndarray | None = None,
) -> BotEstimate:
    """Deprecated: use :func:`repro.core.api.estimate`.

    Exact occupancy MLE of the persistent-bot count (Section V).

    Args:
        n_attacked: observed attacked-replica count ``X``.
        n_replicas: shuffling replica count ``P``.
        upper_bound: the largest admissible ``m`` — the paper uses the total
            number of clients assigned to attacked replicas.
        log_prior: optional log-space prior over ``m`` (length at least
            ``upper_bound + 1``, e.g. from :func:`repro.trust.prior.
            bot_count_log_prior`); when given, the argmax runs over
            ``log L(m) + log_prior[m]`` (a MAP estimate).  ``None``
            leaves the historical pure-MLE path untouched.  The
            degenerate all-attacked regime ignores the prior — the
            likelihood carries no information there, and inventing an
            estimate from the prior alone would hide the Theorem 1
            fallback the callers rely on.
    """
    warnings.warn(
        "repro.core.estimate_bots_mle() is deprecated; use "
        "repro.core.api.estimate(EstimateRequest(..., method='mle'))",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import EstimateRequest, estimate

    return estimate(
        EstimateRequest(
            n_attacked=n_attacked,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
            log_prior=log_prior,
            method="mle",
        )
    )


def estimate_bots_moment(
    n_attacked: int, n_replicas: int, upper_bound: int
) -> BotEstimate:
    """Deprecated: use :func:`repro.core.api.estimate`.

    Closed-form moment-matching estimator of the bot count.  Solves
    ``E[X] = P (1 − (1 − 1/P)^m)`` for ``m``; used inside the multi-round
    simulators where the exact MLE would dominate runtime.
    """
    warnings.warn(
        "repro.core.estimate_bots_moment() is deprecated; use "
        "repro.core.api.estimate(EstimateRequest(..., method='moment'))",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import EstimateRequest, estimate

    return estimate(
        EstimateRequest(
            n_attacked=n_attacked,
            n_replicas=n_replicas,
            upper_bound=upper_bound,
            method="moment",
        )
    )


def estimate_bots_weighted(
    n_attacked: int,
    sizes: Sequence[int] | np.ndarray,
    n_clients: int,
    candidates: int = 64,
    log_prior: np.ndarray | None = None,
) -> BotEstimate:
    """Deprecated: use :func:`repro.core.api.estimate`.

    MLE of the bot count for *non-uniform* group sizes — maximizes the
    Poisson-binomial likelihood of :func:`attacked_count_pmf` over ``m``
    via a geometric candidate grid with local refinement.

    Args:
        n_attacked: observed attacked-replica count ``X``.
        sizes: planned group sizes ``x_1..x_P`` of the observed shuffle.
        n_clients: total clients ``N`` in the shuffle.
        candidates: grid density for the coarse search.
        log_prior: optional log-space prior over ``m`` (length at least
            ``n_clients + 1``); when given the grid search maximizes
            ``log L(m) + log_prior[m]`` (MAP).  ``None`` keeps the
            historical pure-MLE path bit-identical; the degenerate
            all-nonempty-attacked regime ignores the prior.
    """
    warnings.warn(
        "repro.core.estimate_bots_weighted() is deprecated; use "
        "repro.core.api.estimate(EstimateRequest(..., method='weighted'))",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import EstimateRequest, estimate

    xs = np.asarray(sizes, dtype=np.int64)
    return estimate(
        EstimateRequest(
            n_attacked=n_attacked,
            sizes=tuple(int(x) for x in xs),
            n_clients=n_clients,
            candidates=candidates,
            log_prior=log_prior,
            method="weighted",
        )
    )
