"""The naive even-distribution baseline (paper Figure 4).

The "even" strategy spreads clients as uniformly as possible over the
shuffling replicas, ignoring the bot count entirely.  The paper shows it is
competitive with the greedy planner only while ``M < P``; once bots
outnumber replicas nearly every evenly-sized group contains a bot and almost
no benign clients are saved.
"""

from __future__ import annotations

from .objective import expected_saved_sizes
from .plan import ShufflePlan

__all__ = ["even_plan", "even_sizes"]


def even_sizes(n_clients: int, n_replicas: int) -> list[int]:
    """Split ``n_clients`` into ``n_replicas`` near-equal groups.

    The first ``n_clients mod n_replicas`` groups receive one extra client,
    so sizes differ by at most one.

    Example::

        >>> even_sizes(10, 3)
        [4, 3, 3]
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas={n_replicas} must be >= 1")
    if n_clients < 0:
        raise ValueError(f"n_clients={n_clients} must be >= 0")
    base, extra = divmod(n_clients, n_replicas)
    return [base + 1] * extra + [base] * (n_replicas - extra)


def even_plan(n_clients: int, n_bots: int, n_replicas: int) -> ShufflePlan:
    """Build the even-split plan and score it with Equation 1."""
    sizes = even_sizes(n_clients, n_replicas)
    value = expected_saved_sizes(sizes, n_clients, n_bots)
    return ShufflePlan.from_sizes(
        sizes, n_bots, expected_saved=value, algorithm="even"
    )
