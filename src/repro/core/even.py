"""The naive even-distribution baseline (paper Figure 4).

The "even" strategy spreads clients as uniformly as possible over the
shuffling replicas, ignoring the bot count entirely.  The paper shows it is
competitive with the greedy planner only while ``M < P``; once bots
outnumber replicas nearly every evenly-sized group contains a bot and almost
no benign clients are saved.
"""

from __future__ import annotations

import warnings

from .objective import expected_saved_sizes
from .plan import ShufflePlan

__all__ = ["even_plan", "even_sizes"]


def even_sizes(n_clients: int, n_replicas: int) -> list[int]:
    """Split ``n_clients`` into ``n_replicas`` near-equal groups.

    The first ``n_clients mod n_replicas`` groups receive one extra client,
    so sizes differ by at most one.

    Example::

        >>> even_sizes(10, 3)
        [4, 3, 3]
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas={n_replicas} must be >= 1")
    if n_clients < 0:
        raise ValueError(f"n_clients={n_clients} must be >= 0")
    base, extra = divmod(n_clients, n_replicas)
    return [base + 1] * extra + [base] * (n_replicas - extra)


def _even_plan(n_clients: int, n_bots: int, n_replicas: int) -> ShufflePlan:
    """Build the even-split plan and score it with Equation 1.

    Implementation behind ``method="even"`` of :func:`repro.core.api.plan`.
    """
    sizes = even_sizes(n_clients, n_replicas)
    value = expected_saved_sizes(sizes, n_clients, n_bots)
    return ShufflePlan.from_sizes(
        sizes, n_bots, expected_saved=value, algorithm="even"
    )


def even_plan(n_clients: int, n_bots: int, n_replicas: int) -> ShufflePlan:
    """Deprecated: use :func:`repro.core.api.plan` with ``method="even"``."""
    warnings.warn(
        "repro.core.even_plan() is deprecated; use "
        "repro.core.api.plan(PlanRequest(..., method='even'))",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import PlanRequest, plan

    return plan(
        PlanRequest(
            n_clients=n_clients,
            n_bots=n_bots,
            n_replicas=n_replicas,
            method="even",
        )
    )
