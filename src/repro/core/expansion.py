"""Pure server-expansion baseline ("attack dilution").

The paper's introduction positions shuffling against "attack dilution
strategies using pure server expansion": instead of moving targets and
re-assigning clients, simply add replicas and spread everyone thinner,
hoping enough replicas end up bot-free.  This module makes that baseline
precise so the resource claim — *shuffling contains attacks with far fewer
resources* — can be measured (see ``benchmarks/bench_ablation_expansion``).

Under expansion with an even spread of ``N`` clients over ``P`` replicas,
a replica is clean iff none of the ``M`` persistent bots landed on it, so
the expected benign fraction saved is the Equation 1 value of the even
plan.  Because expansion performs **no isolation**, this is a one-shot
number: the bots stay in the population, and keeping the service at the
target quality requires keeping all ``P`` replicas up for the attack's
whole duration.
"""

from __future__ import annotations

from dataclasses import dataclass

from .even import _even_plan

__all__ = [
    "expansion_saved_fraction",
    "expansion_replicas_needed",
    "ExpansionPlan",
]


def expansion_saved_fraction(
    n_clients: int, n_bots: int, n_replicas: int
) -> float:
    """Benign fraction protected by pure expansion to ``n_replicas``.

    Evaluates Equation 1 for the even spread — the only lever expansion
    has — normalized by the benign population.
    """
    if n_clients <= n_bots:
        return 0.0
    plan = _even_plan(n_clients, n_bots, n_replicas)
    return plan.expected_saved / (n_clients - n_bots)


def expansion_replicas_needed(
    n_clients: int,
    n_bots: int,
    target_fraction: float,
    max_replicas: int = 1 << 26,
) -> int:
    """Replicas pure expansion needs to protect ``target_fraction`` benign.

    Binary search on :func:`expansion_saved_fraction`, which is monotone
    non-decreasing in ``P``.  For ``M`` bots and large ``P`` the saved
    fraction approaches ``(1 - 1/P)^M ~ exp(-M/P)``, so the requirement
    scales as ``P ~ M / ln(1/target)`` — e.g. ~4.5x the *bot population*
    for an 80% target, which is what makes dilution so expensive.

    Raises :class:`OverflowError` if the target is unreachable below
    ``max_replicas``.
    """
    if not 0 < target_fraction < 1:
        raise ValueError("target_fraction must be in (0, 1)")
    if n_clients <= n_bots:
        raise ValueError("no benign clients to protect")
    if n_bots == 0:
        return 1
    lo, hi = 1, 2
    while expansion_saved_fraction(n_clients, n_bots, hi) < target_fraction:
        hi *= 2
        if hi > max_replicas:
            raise OverflowError(
                f"pure expansion cannot reach {target_fraction:.0%} below "
                f"{max_replicas} replicas"
            )
    while lo < hi:
        mid = (lo + hi) // 2
        if expansion_saved_fraction(
            n_clients, n_bots, mid
        ) >= target_fraction:
            hi = mid
        else:
            lo = mid + 1
    return hi


@dataclass(frozen=True)
class ExpansionPlan:
    """A fully resolved expansion response to an attack."""

    n_clients: int
    n_bots: int
    target_fraction: float
    replicas_needed: int

    @classmethod
    def solve(
        cls, n_clients: int, n_bots: int, target_fraction: float
    ) -> "ExpansionPlan":
        return cls(
            n_clients=n_clients,
            n_bots=n_bots,
            target_fraction=target_fraction,
            replicas_needed=expansion_replicas_needed(
                n_clients, n_bots, target_fraction
            ),
        )

    @property
    def achieved_fraction(self) -> float:
        return expansion_saved_fraction(
            self.n_clients, self.n_bots, self.replicas_needed
        )
