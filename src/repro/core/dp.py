"""Paper-literal optimal dynamic program (Algorithm 1, Section IV-B).

The paper decomposes the global problem by splitting off one replica with
``a`` clients, enumerating the (unobserved) number ``b`` of bots that land
on it with hypergeometric probability ``Pr(b)`` (Equation 3), and recursing:

    S(N, M, P) = max_{1<=a<=N-1} Σ_b Pr(b) [ S(a, b, 1) + S(N−a, M−b, P−1) ]
    S(a, b, 1) = a if b == 0 else 0                            (Equation 2)

Two tables are filled bottom-up exactly as Algorithm 1 describes:
``save_no[i, j, k]`` (the value ``S(i, j, k)``) and ``assign_no[i, j, k]``
(the maximizing ``a``).  Complexity is O(N² · M² · P)-ish, which is why the
paper reports tens-of-hours Matlab runtimes at N = 1000 (Figure 5) and why
:mod:`repro.core.dp_fast` exists for large instances.

A subtlety worth recording (see DESIGN.md §5.2): because the recursion
conditions on ``b``, it prices an *adaptive* policy — one that could pick
later group sizes after observing how many bots landed on earlier replicas.
A real shuffle fixes all sizes up front.  On every instance we test, the
adaptive value coincides with the static optimum computed by
:mod:`repro.core.dp_fast`, which is consistent with the paper treating the
two formulations as one problem.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from .combinatorics import _lgamma, hypergeometric_pmf_vector
from .objective import expected_saved_sizes
from .plan import ShufflePlan

__all__ = ["DPTables", "optimal_assign", "dp_value", "dp_plan"]


@dataclass(frozen=True)
class DPTables:
    """Output of Algorithm 1: the two lookup tables plus dimensions.

    Attributes:
        save_no: ``S(i, j, k)`` for ``i ∈ [0, N]``, ``j ∈ [0, M]``,
            ``k ∈ [1, P]`` (axis 2 index ``k-1``).
        assign_no: maximizing split size ``a`` at each state; 0 where the
            state is terminal (``k == 1`` or no valid split).
    """

    save_no: np.ndarray
    assign_no: np.ndarray
    n_clients: int
    n_bots: int
    n_replicas: int

    def value(self) -> float:
        """The optimal expected saved clients ``S(N, M, P)``."""
        return float(
            self.save_no[self.n_clients, self.n_bots, self.n_replicas - 1]
        )


def _dp_row(
    i: int, prev: np.ndarray, n_bots: int
) -> tuple[np.ndarray, np.ndarray]:
    """One table row: values/argmaxes over all ``j`` at client count ``i``.

    The paper's three inner loops (``j``, split size ``a``, bot count
    ``b``) become one broadcast over a ``(j, a, b)`` candidate tensor:
    the hypergeometric weights (Equation 3) are rebuilt from a shared
    ``lgamma`` table, the ``S(i−a, j−b, k−1)`` continuations gathered by
    fancy indexing, and the maximizing ``a`` read off with a first-
    occurrence ``argmax`` — the same smallest-``a`` tie-break as the
    historical strict-``>`` scan.
    """
    save_row = np.zeros(n_bots + 1, dtype=np.float64)
    assign_row = np.zeros(n_bots + 1, dtype=np.int64)
    # j = 0: no bots anywhere, every client is saved whatever the split.
    save_row[0] = float(i)
    assign_row[0] = i
    if i == 1:
        # No interior split exists for j >= 1; fall back to the base
        # layer (the lone client rides one replica and is lost).
        return save_row, assign_row
    m_i = min(i, n_bots)
    if m_i == 0:
        return save_row, assign_row
    js = np.arange(1, m_i + 1, dtype=np.int64)
    a_vals = np.arange(1, i, dtype=np.int64)
    bs = np.arange(0, min(i - 1, m_i) + 1, dtype=np.int64)
    jj = js[:, None, None]
    aa = a_vals[None, :, None]
    bb = bs[None, None, :]
    valid = (bb <= jj) & (bb <= aa) & (aa - bb <= i - jj)
    lg = _lgamma(np.arange(i + 1, dtype=np.float64) + 1.0)  # log t!
    # log Pr(b) = log C(j, b) + log C(i−j, a−b) − log C(i, a); indices
    # are clipped so invalid (masked) cells stay in range.
    log_h = (
        lg[jj]
        - lg[bb]
        - lg[np.clip(jj - bb, 0, i)]
        + lg[i - jj]
        - lg[np.clip(aa - bb, 0, i)]
        - lg[np.clip((i - jj) - (aa - bb), 0, i)]
        - (lg[i] - lg[aa] - lg[i - aa])
    )
    h = np.where(
        valid,
        np.clip(np.exp(np.where(valid, log_h, -np.inf)), 0.0, 1.0),
        0.0,
    )
    # Continuations S(i−a, j−b, k−1); out-of-support (j−b < 0) cells are
    # index-clipped and carry zero probability.
    rest = prev[i - aa, np.clip(jj - bb, 0, n_bots)]
    # S(a, b, 1) contributes only at b = 0 (Equation 2).
    value = h[:, :, 0] * a_vals[None, :].astype(np.float64)
    value += np.sum(h * rest, axis=2)
    best = np.argmax(value, axis=1)
    save_row[1 : m_i + 1] = np.take_along_axis(
        value, best[:, None], axis=1
    )[:, 0]
    assign_row[1 : m_i + 1] = a_vals[best]
    return save_row, assign_row


def optimal_assign(n_clients: int, n_bots: int, n_replicas: int) -> DPTables:
    """Run Algorithm 1 and return the filled tables.

    This is intentionally the paper's formulation — layer by layer in
    ``k``, row by row in ``i`` — with each row's ``(j, a, b)`` candidate
    enumeration vectorized by :func:`_dp_row`; use
    :func:`repro.core.dp_fast.dp_fast_plan` beyond ``N`` of a few hundred.
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas={n_replicas} must be >= 1")
    if not 0 <= n_bots <= n_clients:
        raise ValueError(f"n_bots={n_bots} must be within [0, {n_clients}]")

    # Base case k = 1 (Equation 2): a bot-free replica saves all its
    # clients, an attacked one saves none.
    base_save = np.zeros((n_clients + 1, n_bots + 1), dtype=np.float64)
    base_save[:, 0] = np.arange(n_clients + 1, dtype=np.float64)
    base_assign = np.zeros((n_clients + 1, n_bots + 1), dtype=np.int64)

    save_layers = [base_save]
    assign_layers = [base_assign]
    for _ in range(1, n_replicas):  # layer k corresponds to k+1 replicas
        prev = save_layers[-1]
        save_rows = [np.zeros(n_bots + 1, dtype=np.float64)]  # i = 0
        assign_rows = [np.zeros(n_bots + 1, dtype=np.int64)]
        for i in range(1, n_clients + 1):
            save_row, assign_row = _dp_row(i, prev, n_bots)
            save_rows.append(save_row)
            assign_rows.append(assign_row)
        save_layers.append(np.stack(save_rows))
        assign_layers.append(np.stack(assign_rows))
    return DPTables(
        save_no=np.stack(save_layers, axis=2),
        assign_no=np.stack(assign_layers, axis=2),
        n_clients=n_clients,
        n_bots=n_bots,
        n_replicas=n_replicas,
    )


def dp_value(n_clients: int, n_bots: int, n_replicas: int) -> float:
    """Optimal expected number of benign clients saved in one shuffle."""
    return optimal_assign(n_clients, n_bots, n_replicas).value()


def _dp_plan(n_clients: int, n_bots: int, n_replicas: int) -> ShufflePlan:
    """Extract a static plan from the Algorithm 1 tables.

    The tables encode an adaptive policy (later sizes may depend on the
    realized bot count ``b`` of earlier replicas).  To obtain a static,
    executable plan we walk the tables following the *most likely* ``b``
    at every split — the distribution's mode — which collapses the policy
    tree to one branch.  The plan's ``expected_saved`` is re-scored exactly
    with Equation 1 so no adaptivity optimism leaks into reported numbers.
    """
    tables = optimal_assign(n_clients, n_bots, n_replicas)
    sizes: list[int] = []
    i, j = n_clients, n_bots
    for k in range(n_replicas - 1, 0, -1):
        a = int(tables.assign_no[i, j, k])
        if a <= 0:
            # Terminal fallback state: everything stays together.
            break
        sizes.append(a)
        pr = hypergeometric_pmf_vector(i, j, a)
        b_mode = int(np.argmax(pr))
        i -= a
        j -= b_mode
        j = max(0, min(j, i))
    sizes.append(i)
    while len(sizes) < n_replicas:
        sizes.append(0)
    value = expected_saved_sizes(sizes, n_clients, n_bots)
    return ShufflePlan.from_sizes(
        sizes, n_bots, expected_saved=value, algorithm="dp"
    )


def dp_plan(n_clients: int, n_bots: int, n_replicas: int) -> ShufflePlan:
    """Deprecated: use :func:`repro.core.api.plan` with ``method="dp"``."""
    warnings.warn(
        "repro.core.dp_plan() is deprecated; use "
        "repro.core.api.plan(PlanRequest(..., method='dp'))",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import PlanRequest, plan

    return plan(
        PlanRequest(
            n_clients=n_clients,
            n_bots=n_bots,
            n_replicas=n_replicas,
            method="dp",
        )
    )
