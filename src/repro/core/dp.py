"""Paper-literal optimal dynamic program (Algorithm 1, Section IV-B).

The paper decomposes the global problem by splitting off one replica with
``a`` clients, enumerating the (unobserved) number ``b`` of bots that land
on it with hypergeometric probability ``Pr(b)`` (Equation 3), and recursing:

    S(N, M, P) = max_{1<=a<=N-1} Σ_b Pr(b) [ S(a, b, 1) + S(N−a, M−b, P−1) ]
    S(a, b, 1) = a if b == 0 else 0                            (Equation 2)

Two tables are filled bottom-up exactly as Algorithm 1 describes:
``save_no[i, j, k]`` (the value ``S(i, j, k)``) and ``assign_no[i, j, k]``
(the maximizing ``a``).  Complexity is O(N² · M² · P)-ish, which is why the
paper reports tens-of-hours Matlab runtimes at N = 1000 (Figure 5) and why
:mod:`repro.core.dp_fast` exists for large instances.

A subtlety worth recording (see DESIGN.md §5.2): because the recursion
conditions on ``b``, it prices an *adaptive* policy — one that could pick
later group sizes after observing how many bots landed on earlier replicas.
A real shuffle fixes all sizes up front.  On every instance we test, the
adaptive value coincides with the static optimum computed by
:mod:`repro.core.dp_fast`, which is consistent with the paper treating the
two formulations as one problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .combinatorics import hypergeometric_pmf_vector
from .objective import expected_saved_sizes
from .plan import ShufflePlan

__all__ = ["DPTables", "optimal_assign", "dp_value", "dp_plan"]


@dataclass(frozen=True)
class DPTables:
    """Output of Algorithm 1: the two lookup tables plus dimensions.

    Attributes:
        save_no: ``S(i, j, k)`` for ``i ∈ [0, N]``, ``j ∈ [0, M]``,
            ``k ∈ [1, P]`` (axis 2 index ``k-1``).
        assign_no: maximizing split size ``a`` at each state; 0 where the
            state is terminal (``k == 1`` or no valid split).
    """

    save_no: np.ndarray
    assign_no: np.ndarray
    n_clients: int
    n_bots: int
    n_replicas: int

    def value(self) -> float:
        """The optimal expected saved clients ``S(N, M, P)``."""
        return float(
            self.save_no[self.n_clients, self.n_bots, self.n_replicas - 1]
        )


def optimal_assign(n_clients: int, n_bots: int, n_replicas: int) -> DPTables:
    """Run Algorithm 1 and return the filled tables.

    This is intentionally the paper's formulation, not the fastest
    equivalent one; use :func:`repro.core.dp_fast.dp_fast_plan` beyond
    ``N`` of a few hundred.
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas={n_replicas} must be >= 1")
    if not 0 <= n_bots <= n_clients:
        raise ValueError(f"n_bots={n_bots} must be within [0, {n_clients}]")

    shape = (n_clients + 1, n_bots + 1, n_replicas)
    save_no = np.zeros(shape, dtype=np.float64)
    assign_no = np.zeros(shape, dtype=np.int64)

    # Base case k = 1 (Equation 2): a bot-free replica saves all its
    # clients, an attacked one saves none.
    for i in range(n_clients + 1):
        save_no[i, 0, 0] = float(i)

    for k in range(1, n_replicas):  # table axis k corresponds to k+1 replicas
        prev = save_no[:, :, k - 1]
        for i in range(n_clients + 1):
            if i == 0:
                continue
            for j in range(min(i, n_bots) + 1):
                if j == 0:
                    # No bots anywhere: every client is saved regardless of
                    # the split.
                    save_no[i, j, k] = float(i)
                    assign_no[i, j, k] = i
                    continue
                best_value = -1.0
                best_a = 0
                for a in range(1, i):
                    pr = hypergeometric_pmf_vector(i, j, a)
                    b_hi = pr.size - 1  # = min(a, j)
                    # S(a, b, 1) contributes only at b = 0.
                    value = pr[0] * a
                    # Remaining subproblem S(i−a, j−b, k−1) for each b.
                    rest = prev[i - a, j - b_hi : j + 1][::-1]
                    value += float(pr @ rest)
                    if value > best_value:
                        best_value = value
                        best_a = a
                if best_a == 0:
                    # i == 1: no interior split exists; fall back to putting
                    # the lone client on one replica.
                    save_no[i, j, k] = save_no[i, j, 0]
                else:
                    save_no[i, j, k] = best_value
                    assign_no[i, j, k] = best_a
    return DPTables(
        save_no=save_no,
        assign_no=assign_no,
        n_clients=n_clients,
        n_bots=n_bots,
        n_replicas=n_replicas,
    )


def dp_value(n_clients: int, n_bots: int, n_replicas: int) -> float:
    """Optimal expected number of benign clients saved in one shuffle."""
    return optimal_assign(n_clients, n_bots, n_replicas).value()


def dp_plan(n_clients: int, n_bots: int, n_replicas: int) -> ShufflePlan:
    """Extract a static plan from the Algorithm 1 tables.

    The tables encode an adaptive policy (later sizes may depend on the
    realized bot count ``b`` of earlier replicas).  To obtain a static,
    executable plan we walk the tables following the *most likely* ``b``
    at every split — the distribution's mode — which collapses the policy
    tree to one branch.  The plan's ``expected_saved`` is re-scored exactly
    with Equation 1 so no adaptivity optimism leaks into reported numbers.
    """
    tables = optimal_assign(n_clients, n_bots, n_replicas)
    sizes: list[int] = []
    i, j = n_clients, n_bots
    for k in range(n_replicas - 1, 0, -1):
        a = int(tables.assign_no[i, j, k])
        if a <= 0:
            # Terminal fallback state: everything stays together.
            break
        sizes.append(a)
        pr = hypergeometric_pmf_vector(i, j, a)
        b_mode = int(np.argmax(pr))
        i -= a
        j -= b_mode
        j = max(0, min(j, i))
    sizes.append(i)
    while len(sizes) < n_replicas:
        sizes.append(0)
    value = expected_saved_sizes(sizes, n_clients, n_bots)
    return ShufflePlan.from_sizes(
        sizes, n_bots, expected_saved=value, algorithm="dp"
    )
