"""The paper's Equation 1 — the objective every planner optimizes.

    max E(S) = Σ_i p_i · x_i = Σ_i x_i · C(N − x_i, M) / C(N, M)
    s.t.      Σ_i x_i = N

The key structural fact (exploited by :mod:`repro.core.dp_fast` and verified
by the property tests) is that Equation 1 is **separable**: each replica's
contribution ``f(x_i) = x_i · C(N − x_i, M) / C(N, M)`` depends only on its
own size and the global ``(N, M)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .combinatorics import (
    expected_saved_single_many,
    survival_probabilities,
)
from .plan import ShufflePlan

__all__ = [
    "expected_saved",
    "expected_saved_sizes",
    "per_replica_terms",
    "single_replica_optimum",
]


def expected_saved(plan: ShufflePlan, n_bots: int | None = None) -> float:
    """Evaluate ``E(S)`` (Equation 1) for a plan.

    Args:
        plan: the shuffle plan to score.
        n_bots: ground-truth bot count to score against. Defaults to the
            plan's own belief ``plan.n_bots``, but experiments routinely
            score a plan built from an *estimated* ``M`` against the real
            one.
    """
    m = plan.n_bots if n_bots is None else n_bots
    return expected_saved_sizes(plan.group_sizes, plan.n_clients, m)


def expected_saved_sizes(
    sizes: Sequence[int] | np.ndarray, n_clients: int, n_bots: int
) -> float:
    """``E(S)`` for raw group sizes (no plan object needed)."""
    xs = np.asarray(sizes, dtype=np.int64)
    if xs.size == 0:
        return 0.0
    return float(expected_saved_single_many(n_clients, n_bots, xs).sum())


def per_replica_terms(
    sizes: Sequence[int] | np.ndarray, n_clients: int, n_bots: int
) -> np.ndarray:
    """Per-replica terms ``x_i · p_i`` of Equation 1, as an array."""
    xs = np.asarray(sizes, dtype=np.int64)
    return xs.astype(np.float64) * survival_probabilities(
        n_clients, n_bots, xs
    )


def single_replica_optimum(n_clients: int, n_bots: int) -> tuple[int, float]:
    """Solve Equation 1 with ``P = 1`` free slot: ``argmax_x f(x)``.

    This is the greedy algorithm's ``ω`` (Section IV-C).  Returns
    ``(omega, f(omega))``.  ``f`` is evaluated for every ``x ∈ [1, N]`` in a
    single vectorized pass; at ``M = 0`` every client can be saved so
    ``omega = N``.
    """
    if n_clients <= 0:
        return 0, 0.0
    if n_bots == 0:
        return n_clients, float(n_clients)
    xs = np.arange(1, n_clients + 1, dtype=np.int64)
    values = expected_saved_single_many(n_clients, n_bots, xs)
    best = int(np.argmax(values))
    return int(xs[best]), float(values[best])
