"""Scalable exact optimizer for Equation 1 (separable reformulation).

Equation 1 is separable: for fixed global ``(N, M)`` each replica
contributes ``f(x_i) = x_i · C(N − x_i, M) / C(N, M)`` independently, so

    S(N, M, P) = max { Σ_i f(x_i) : Σ_i x_i = N, x_i >= 0 }

is a classic integer resource-allocation problem.  We solve it with
(max, +) convolutions over the value vectors:

    (u ⊕ v)[n] = max_{0<=a<=n} u[a] + v[n − a]

``B_1 = f`` is the one-replica value vector; ``B_{2k} = B_k ⊕ B_k`` doubles
the replica count, and an arbitrary ``P`` is assembled from its binary
expansion — ``O(log P)`` convolutions of ``O(N²)`` work each, instead of the
paper-literal Algorithm 1's ``O(N² · M² · P)``.  Each convolution records
its argmax so the optimal plan can be read back by splitting ``N``
recursively down the combination tree.

The optimum and the plan are *static* (sizes fixed before bots are
observed), i.e. exactly what a coordination server can execute in one
shuffle.  Property tests assert this value matches the paper-literal DP on
every small instance.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .combinatorics import expected_saved_single_many
from .objective import expected_saved_sizes
from .plan import ShufflePlan

__all__ = ["dp_fast_value", "dp_fast_plan", "dp_fast_sizes"]

#: Elements materialized per (max,+) block — sized so the candidate
#: buffer (~0.5 MiB of float64) stays cache-resident: the argmax
#: re-reads every element it just wrote, so a block that spills to DRAM
#: pays the full matrix twice over the memory bus.
_COMBINE_CHUNK = 65_536


@dataclass
class _Node:
    """A node of the (max,+) combination tree.

    ``values[n]`` is the best objective achievable by this node's replicas
    holding exactly ``n`` clients.  For combined nodes, ``arg[n]`` is the
    client count routed to the left child at the optimum.
    """

    values: np.ndarray
    n_replicas: int
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    arg: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _combine(u: _Node, v: _Node) -> _Node:
    """(max, +) convolution of two value vectors, tracking argmaxes.

    The candidate matrix ``candidates[n, a] = u[a] + v[n − a]`` is a
    Toeplitz layout, expressed as a zero-copy sliding-window view over a
    reversed copy of ``v`` padded with ``−inf`` (the pad marks
    ``a > n``, which can never win because every real value is finite).
    Row blocks are materialized :data:`_COMBINE_CHUNK` elements at a
    time into one reused cache-resident buffer and reduced with a
    batched ``argmax``, whose first-occurrence tie-break matches the
    historical per-``n`` scan exactly.
    """
    size = u.values.size
    uv = u.values
    vv = v.values
    # Reverse v once so every window reads with a *forward* unit stride
    # (a per-row reversed view would force negative-stride traffic in
    # the hot add/argmax): with rv[i] = vv[size−1−i] padded by −inf,
    # row n of the view below is prv[size−1−n : 2size−1−n], i.e.
    # windows[n, a] = vv[n − a], −inf when a > n (never wins: every
    # real value is finite).
    prv = np.empty(2 * size - 1, dtype=np.float64)
    prv[:size] = vv[::-1]
    prv[size:] = -np.inf
    windows = sliding_window_view(prv, size)[::-1]
    rows = max(1, _COMBINE_CHUNK // size)
    buf = np.empty((rows, size), dtype=np.float64)
    val_blocks = []
    arg_blocks = []
    for start in range(0, size, rows):
        stop = min(start + rows, size)
        # block[n − start, a] = value when the left subtree gets `a`
        # clients.  Columns past the block's largest `n` are all −inf,
        # so truncating them drops only never-winning candidates and
        # leaves the first-occurrence argmax order intact.
        block = buf[: stop - start, :stop]
        np.add(windows[start:stop, :stop], uv[None, :stop], out=block)
        a = np.argmax(block, axis=1)
        val_blocks.append(
            np.take_along_axis(block, a[:, None], axis=1)[:, 0]
        )
        arg_blocks.append(a)
    return _Node(
        values=np.concatenate(val_blocks),
        n_replicas=u.n_replicas + v.n_replicas,
        left=u,
        right=v,
        arg=np.concatenate(arg_blocks),
    )


def _build_tree(n_clients: int, n_bots: int, n_replicas: int) -> _Node:
    """Assemble the P-replica value vector via binary exponentiation."""
    xs = np.arange(0, n_clients + 1, dtype=np.int64)
    f = expected_saved_single_many(n_clients, n_bots, xs)
    leaf = _Node(values=f, n_replicas=1)

    power = leaf
    accumulated: _Node | None = None
    remaining = n_replicas
    while remaining > 0:
        if remaining & 1:
            accumulated = (
                power if accumulated is None else _combine(accumulated, power)
            )
        remaining >>= 1
        if remaining > 0:
            power = _combine(power, power)
    assert accumulated is not None
    assert accumulated.n_replicas == n_replicas
    return accumulated


def _extract_sizes(node: _Node, n_clients: int, out: list[int]) -> None:
    """Read the optimal group sizes back down the combination tree."""
    if node.is_leaf:
        out.append(n_clients)
        return
    assert node.arg is not None
    left_share = int(node.arg[n_clients])
    _extract_sizes(node.left, left_share, out)
    _extract_sizes(node.right, n_clients - left_share, out)


def dp_fast_value(n_clients: int, n_bots: int, n_replicas: int) -> float:
    """Optimal ``E(S)`` over all static plans for ``(N, M, P)``."""
    _validate(n_clients, n_bots, n_replicas)
    if n_clients == 0:
        return 0.0
    return float(_build_tree(n_clients, n_bots, n_replicas).values[n_clients])


def dp_fast_sizes(n_clients: int, n_bots: int, n_replicas: int) -> list[int]:
    """Optimal static group sizes (may contain zeros)."""
    _validate(n_clients, n_bots, n_replicas)
    if n_clients == 0:
        return [0] * n_replicas
    tree = _build_tree(n_clients, n_bots, n_replicas)
    sizes: list[int] = []
    _extract_sizes(tree, n_clients, sizes)
    return sizes


def _dp_fast_plan(
    n_clients: int, n_bots: int, n_replicas: int
) -> ShufflePlan:
    """Optimal static plan wrapped as a :class:`ShufflePlan`.

    Implementation behind ``method="dp_fast"`` of :func:`repro.core.api.
    plan`.
    """
    sizes = dp_fast_sizes(n_clients, n_bots, n_replicas)
    value = expected_saved_sizes(sizes, n_clients, n_bots)
    return ShufflePlan.from_sizes(
        sizes, n_bots, expected_saved=value, algorithm="dp_fast"
    )


def dp_fast_plan(n_clients: int, n_bots: int, n_replicas: int) -> ShufflePlan:
    """Deprecated: use :func:`repro.core.api.plan`, ``method="dp_fast"``."""
    warnings.warn(
        "repro.core.dp_fast_plan() is deprecated; use "
        "repro.core.api.plan(PlanRequest(..., method='dp_fast'))",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import PlanRequest, plan

    return plan(
        PlanRequest(
            n_clients=n_clients,
            n_bots=n_bots,
            n_replicas=n_replicas,
            method="dp_fast",
        )
    )


def _validate(n_clients: int, n_bots: int, n_replicas: int) -> None:
    if n_replicas < 1:
        raise ValueError(f"n_replicas={n_replicas} must be >= 1")
    if n_clients < 0:
        raise ValueError(f"n_clients={n_clients} must be >= 0")
    if not 0 <= n_bots <= max(n_clients, 0):
        raise ValueError(f"n_bots={n_bots} must be within [0, {n_clients}]")
