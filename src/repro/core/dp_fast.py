"""Scalable exact optimizer for Equation 1 (separable reformulation).

Equation 1 is separable: for fixed global ``(N, M)`` each replica
contributes ``f(x_i) = x_i · C(N − x_i, M) / C(N, M)`` independently, so

    S(N, M, P) = max { Σ_i f(x_i) : Σ_i x_i = N, x_i >= 0 }

is a classic integer resource-allocation problem.  We solve it with
(max, +) convolutions over the value vectors:

    (u ⊕ v)[n] = max_{0<=a<=n} u[a] + v[n − a]

``B_1 = f`` is the one-replica value vector; ``B_{2k} = B_k ⊕ B_k`` doubles
the replica count, and an arbitrary ``P`` is assembled from its binary
expansion — ``O(log P)`` convolutions of ``O(N²)`` work each, instead of the
paper-literal Algorithm 1's ``O(N² · M² · P)``.  Each convolution records
its argmax so the optimal plan can be read back by splitting ``N``
recursively down the combination tree.

The optimum and the plan are *static* (sizes fixed before bots are
observed), i.e. exactly what a coordination server can execute in one
shuffle.  Property tests assert this value matches the paper-literal DP on
every small instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .combinatorics import expected_saved_single_many
from .objective import expected_saved_sizes
from .plan import ShufflePlan

__all__ = ["dp_fast_value", "dp_fast_plan", "dp_fast_sizes"]


@dataclass
class _Node:
    """A node of the (max,+) combination tree.

    ``values[n]`` is the best objective achievable by this node's replicas
    holding exactly ``n`` clients.  For combined nodes, ``arg[n]`` is the
    client count routed to the left child at the optimum.
    """

    values: np.ndarray
    n_replicas: int
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    arg: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _combine(u: _Node, v: _Node) -> _Node:
    """(max, +) convolution of two value vectors, tracking argmaxes."""
    size = u.values.size
    vals = np.empty(size, dtype=np.float64)
    arg = np.empty(size, dtype=np.int64)
    uv = u.values
    vv = v.values
    for n in range(size):
        # candidates[a] = value when the left subtree gets `a` clients.
        candidates = uv[: n + 1] + vv[n::-1]
        a = int(np.argmax(candidates))
        vals[n] = candidates[a]
        arg[n] = a
    return _Node(
        values=vals,
        n_replicas=u.n_replicas + v.n_replicas,
        left=u,
        right=v,
        arg=arg,
    )


def _build_tree(n_clients: int, n_bots: int, n_replicas: int) -> _Node:
    """Assemble the P-replica value vector via binary exponentiation."""
    xs = np.arange(0, n_clients + 1, dtype=np.int64)
    f = expected_saved_single_many(n_clients, n_bots, xs)
    leaf = _Node(values=f, n_replicas=1)

    power = leaf
    accumulated: _Node | None = None
    remaining = n_replicas
    while remaining > 0:
        if remaining & 1:
            accumulated = (
                power if accumulated is None else _combine(accumulated, power)
            )
        remaining >>= 1
        if remaining > 0:
            power = _combine(power, power)
    assert accumulated is not None
    assert accumulated.n_replicas == n_replicas
    return accumulated


def _extract_sizes(node: _Node, n_clients: int, out: list[int]) -> None:
    """Read the optimal group sizes back down the combination tree."""
    if node.is_leaf:
        out.append(n_clients)
        return
    assert node.arg is not None
    left_share = int(node.arg[n_clients])
    _extract_sizes(node.left, left_share, out)
    _extract_sizes(node.right, n_clients - left_share, out)


def dp_fast_value(n_clients: int, n_bots: int, n_replicas: int) -> float:
    """Optimal ``E(S)`` over all static plans for ``(N, M, P)``."""
    _validate(n_clients, n_bots, n_replicas)
    if n_clients == 0:
        return 0.0
    return float(_build_tree(n_clients, n_bots, n_replicas).values[n_clients])


def dp_fast_sizes(n_clients: int, n_bots: int, n_replicas: int) -> list[int]:
    """Optimal static group sizes (may contain zeros)."""
    _validate(n_clients, n_bots, n_replicas)
    if n_clients == 0:
        return [0] * n_replicas
    tree = _build_tree(n_clients, n_bots, n_replicas)
    sizes: list[int] = []
    _extract_sizes(tree, n_clients, sizes)
    return sizes


def dp_fast_plan(n_clients: int, n_bots: int, n_replicas: int) -> ShufflePlan:
    """Optimal static plan wrapped as a :class:`ShufflePlan`."""
    sizes = dp_fast_sizes(n_clients, n_bots, n_replicas)
    value = expected_saved_sizes(sizes, n_clients, n_bots)
    return ShufflePlan.from_sizes(
        sizes, n_bots, expected_saved=value, algorithm="dp_fast"
    )


def _validate(n_clients: int, n_bots: int, n_replicas: int) -> None:
    if n_replicas < 1:
        raise ValueError(f"n_replicas={n_replicas} must be >= 1")
    if n_clients < 0:
        raise ValueError(f"n_clients={n_clients} must be >= 0")
    if not 0 <= n_bots <= max(n_clients, 0):
        raise ValueError(f"n_bots={n_bots} must be within [0, {n_clients}]")
