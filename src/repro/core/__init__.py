"""Core of the reproduction: shuffle-plan optimization and estimation.

This package implements the paper's primary contribution (Sections IV & V):

- :mod:`~repro.core.combinatorics` — log-space binomials, survival
  probabilities, hypergeometric pmfs (the vocabulary of Table I).
- :mod:`~repro.core.plan` / :mod:`~repro.core.objective` — shuffle plans and
  the Equation 1 objective ``E(S)``.
- :mod:`~repro.core.dp` — paper-literal optimal dynamic program
  (Algorithm 1).
- :mod:`~repro.core.dp_fast` — equivalent separable DP that scales to the
  paper's N = 1000 and beyond.
- :mod:`~repro.core.greedy` — the fast near-optimal planner used at runtime.
- :mod:`~repro.core.even` — the naive even-split baseline of Figure 4.
- :mod:`~repro.core.estimator` — MLE / moment attack-scale estimation
  (Section V).
- :mod:`~repro.core.shuffler` — the multi-round shuffling control loop.
- :mod:`~repro.core.api` — the unified batch-first ``estimate()`` /
  ``plan()`` dispatchers every consumer goes through.  The historical
  per-algorithm entry points (``estimate_bots_*``, ``*_plan``) are
  deprecated shims over this seam; see ``docs/core-api.md``.
"""

from __future__ import annotations

# The dispatcher *functions* stay namespaced under repro.core.api (and
# re-exported at top level as repro.estimate / repro.plan): binding
# ``plan`` here would shadow the :mod:`repro.core.plan` submodule.
from . import api
from .api import EstimateRequest, PlanRequest
from .combinatorics import (
    expected_saved_single,
    hypergeometric_pmf,
    log_binomial,
    survival_probability,
)
from .dp import dp_plan, dp_value, optimal_assign
from .dp_fast import dp_fast_plan, dp_fast_sizes, dp_fast_value
from .estimator import (
    BotEstimate,
    attacked_count_pmf,
    estimate_bots_mle,
    estimate_bots_moment,
    estimate_bots_weighted,
    occupancy_pmf,
)
from .even import even_plan, even_sizes
from .expansion import (
    ExpansionPlan,
    expansion_replicas_needed,
    expansion_saved_fraction,
)
from .greedy import greedy_plan, greedy_sizes
from .objective import (
    expected_saved,
    expected_saved_sizes,
    single_replica_optimum,
)
from .plan_cache import PlanCache
from .plan import PlanError, ShufflePlan
from .shuffler import (
    PLANNERS,
    RoundResult,
    ShuffleEngine,
    ShuffleState,
    shuffle_trajectory,
)

__all__ = [
    "BotEstimate",
    "EstimateRequest",
    "PlanRequest",
    "api",
    "attacked_count_pmf",
    "estimate_bots_weighted",
    "PLANNERS",
    "PlanCache",
    "PlanError",
    "RoundResult",
    "ShuffleEngine",
    "ShufflePlan",
    "ShuffleState",
    "dp_fast_plan",
    "dp_fast_sizes",
    "dp_fast_value",
    "dp_plan",
    "dp_value",
    "ExpansionPlan",
    "estimate_bots_mle",
    "estimate_bots_moment",
    "even_plan",
    "even_sizes",
    "expansion_replicas_needed",
    "expansion_saved_fraction",
    "expected_saved",
    "expected_saved_sizes",
    "expected_saved_single",
    "greedy_plan",
    "greedy_sizes",
    "hypergeometric_pmf",
    "log_binomial",
    "occupancy_pmf",
    "optimal_assign",
    "shuffle_trajectory",
    "single_replica_optimum",
    "survival_probability",
]
