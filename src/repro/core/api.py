"""Unified batch-first estimator/planner API (the one core seam).

Every consumer of the core — the asyncio service, the discrete-event
cloudsim, the figure experiments, and the counts-level shuffle engine —
historically called seven separate entry points with seven argument
conventions.  This module collapses them to two dispatchers over frozen
request dataclasses:

    estimate(EstimateRequest(...)) -> BotEstimate
    plan(PlanRequest(...))         -> ShufflePlan

with uniform keywords across methods (``method=``, ``log_prior=``,
``instruments=``).  The old entry points survive as thin
``DeprecationWarning`` shims that forward through this seam (the
``cloudsim/trace.py`` precedent); first-party code must not use them —
the test suite promotes repro-originated deprecation warnings to errors.

Dispatch is deliberately thin: each method maps onto exactly one
vectorized kernel (``repro.core.estimator`` / the planner modules), so
behaviour is bit-identical to calling the kernel directly.  ``method=
"auto"`` picks the estimator from the evidence shape (group sizes known →
weighted, otherwise uniform MLE) and the planner from the presence of a
:class:`~repro.core.plan_cache.PlanCache` handle.

See ``docs/core-api.md`` for the migration table and deprecation policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..obs.instruments import Instruments, resolve_instruments
from .dp import _dp_plan
from .dp_fast import _dp_fast_plan
from .estimator import (
    BotEstimate,
    _estimate_mle,
    _estimate_moment,
    _estimate_weighted,
)
from .even import _even_plan
from .greedy import _greedy_plan
from .plan import ShufflePlan

__all__ = [
    "ESTIMATE_METHODS",
    "PLAN_METHODS",
    "EstimateRequest",
    "PlanRequest",
    "PlanSource",
    "estimate",
    "plan",
    "planner",
]

#: Estimator dispatch keys accepted by :class:`EstimateRequest`.
ESTIMATE_METHODS = ("auto", "mle", "moment", "weighted")

#: Planner dispatch keys accepted by :class:`PlanRequest`.
PLAN_METHODS = ("auto", "greedy", "even", "dp", "dp_fast", "cached")


class PlanSource(Protocol):
    """Anything that serves a plan for ``(N, M, P)`` — e.g. a PlanCache."""

    def __call__(
        self, n_clients: int, n_bots: int, n_replicas: int
    ) -> ShufflePlan: ...


@dataclass(frozen=True)
class EstimateRequest:
    """One attack-scale estimation query.

    Attributes:
        n_attacked: observed attacked-replica count ``X``.
        n_replicas: replica count ``P`` (uniform methods ``mle`` /
            ``moment``; inferred as ``len(sizes)`` when sizes are given).
        upper_bound: largest admissible bot count (uniform methods;
            ``weighted`` always bounds by ``n_clients``).
        sizes: planned group sizes of the observed shuffle — supplying
            them selects the non-uniform ``weighted`` likelihood under
            ``method="auto"``.
        n_clients: total clients ``N`` (defaults to ``sum(sizes)``).
        candidates: grid density for the weighted coarse search.
        method: ``"auto"`` | ``"mle"`` | ``"moment"`` | ``"weighted"``.
        log_prior: optional log-space prior over the bot count (MAP);
            rejected by ``moment``, which has no likelihood to weight.
    """

    n_attacked: int
    n_replicas: int | None = None
    upper_bound: int | None = None
    sizes: tuple[int, ...] | None = None
    n_clients: int | None = None
    candidates: int = 64
    method: str = "auto"
    log_prior: np.ndarray | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.method not in ESTIMATE_METHODS:
            raise ValueError(
                f"unknown estimate method {self.method!r}; choose from "
                f"{ESTIMATE_METHODS}"
            )
        if self.sizes is not None and not isinstance(self.sizes, tuple):
            object.__setattr__(
                self,
                "sizes",
                tuple(int(x) for x in self.sizes),
            )

    def resolved_method(self) -> str:
        """The concrete method ``"auto"`` dispatches to."""
        if self.method != "auto":
            return self.method
        return "weighted" if self.sizes is not None else "mle"


@dataclass(frozen=True)
class PlanRequest:
    """One shuffle-planning query.

    Attributes:
        n_clients: clients to assign ``N``.
        n_bots: believed persistent-bot count ``M``.
        n_replicas: shuffle pool size ``P``.
        method: ``"auto"`` | ``"greedy"`` | ``"even"`` | ``"dp"`` |
            ``"dp_fast"`` | ``"cached"``.
        cache: a :class:`PlanSource` (normally a ``PlanCache``) consulted
            by ``method="cached"``; its presence makes ``"auto"`` pick the
            cached path.
    """

    n_clients: int
    n_bots: int
    n_replicas: int
    method: str = "auto"
    cache: PlanSource | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.method not in PLAN_METHODS:
            raise ValueError(
                f"unknown plan method {self.method!r}; choose from "
                f"{PLAN_METHODS}"
            )
        if self.method == "cached" and self.cache is None:
            raise ValueError("method='cached' requires a cache")

    def resolved_method(self) -> str:
        """The concrete method ``"auto"`` dispatches to."""
        if self.method != "auto":
            return self.method
        return "cached" if self.cache is not None else "greedy"


def _request_sizes(request: EstimateRequest) -> np.ndarray:
    if request.sizes is None:
        raise ValueError(
            "method='weighted' requires the observed group sizes"
        )
    return np.asarray(request.sizes, dtype=np.int64)


def _uniform_args(request: EstimateRequest) -> tuple[int, int]:
    n_replicas = request.n_replicas
    if n_replicas is None and request.sizes is not None:
        n_replicas = len(request.sizes)
    if n_replicas is None:
        raise ValueError(
            f"method={request.resolved_method()!r} requires n_replicas"
        )
    upper_bound = request.upper_bound
    if upper_bound is None:
        raise ValueError(
            f"method={request.resolved_method()!r} requires upper_bound"
        )
    return n_replicas, upper_bound


def _estimate_dispatch(request: EstimateRequest) -> BotEstimate:
    method = request.resolved_method()
    if method == "weighted":
        xs = _request_sizes(request)
        n_clients = (
            request.n_clients
            if request.n_clients is not None
            else int(xs.sum())
        )
        return _estimate_weighted(
            request.n_attacked,
            xs,
            n_clients,
            candidates=request.candidates,
            log_prior=request.log_prior,
        )
    n_replicas, upper_bound = _uniform_args(request)
    if method == "moment":
        if request.log_prior is not None:
            raise ValueError(
                "method='moment' is a closed form with no likelihood; "
                "it cannot apply a log_prior"
            )
        return _estimate_moment(request.n_attacked, n_replicas, upper_bound)
    return _estimate_mle(
        request.n_attacked,
        n_replicas,
        upper_bound,
        log_prior=request.log_prior,
    )


def estimate(
    request: EstimateRequest, *, instruments: Instruments | None = None
) -> BotEstimate:
    """Dispatch one estimation request to its vectorized kernel.

    Args:
        request: the query; ``request.method`` selects the kernel.
        instruments: optional :class:`repro.obs.Instruments` handle (the
            repo-wide ``instruments=`` convention); when enabled the call
            records a ``core_estimate`` span and bumps
            ``core_estimate_total{method=...}``.
    """
    obs = resolve_instruments(instruments)
    method = request.resolved_method()
    if obs is None:
        return _estimate_dispatch(request)
    with obs.spans.span("core_estimate", method=method) as span:
        result = _estimate_dispatch(request)
        span.set(m_hat=result.m_hat, degenerate=result.degenerate)
    obs.registry.counter(
        "core_estimate_total",
        "Estimation requests dispatched through repro.core.api.",
        ("method",),
    ).inc(method=method)
    return result


def _plan_dispatch(request: PlanRequest) -> ShufflePlan:
    method = request.resolved_method()
    if method == "cached":
        if request.cache is None:
            raise ValueError("method='cached' requires a cache")
        return request.cache(
            request.n_clients, request.n_bots, request.n_replicas
        )
    planner = _PLANNER_IMPLS[method]
    return planner(request.n_clients, request.n_bots, request.n_replicas)


def plan(
    request: PlanRequest, *, instruments: Instruments | None = None
) -> ShufflePlan:
    """Dispatch one planning request to its vectorized kernel.

    Args:
        request: the query; ``request.method`` selects the planner.
        instruments: optional :class:`repro.obs.Instruments` handle; when
            enabled the call records a ``core_plan`` span and bumps
            ``core_plan_total{method=...}``.
    """
    obs = resolve_instruments(instruments)
    method = request.resolved_method()
    if obs is None:
        return _plan_dispatch(request)
    with obs.spans.span("core_plan", method=method) as span:
        result = _plan_dispatch(request)
        span.set(
            expected_saved=result.expected_saved,
            algorithm=result.algorithm,
        )
    obs.registry.counter(
        "core_plan_total",
        "Planning requests dispatched through repro.core.api.",
        ("method",),
    ).inc(method=method)
    return result


class _PlannerImpl(Protocol):
    def __call__(
        self, n_clients: int, n_bots: int, n_replicas: int
    ) -> ShufflePlan: ...


_PLANNER_IMPLS: dict[str, _PlannerImpl] = {
    "greedy": _greedy_plan,
    "even": _even_plan,
    "dp": _dp_plan,
    "dp_fast": _dp_fast_plan,
}


def planner(
    method: str, *, instruments: Instruments | None = None
) -> PlanSource:
    """A :class:`PlanSource` closure over one plan method.

    Adapts the request API back to the positional planner protocol used
    by :class:`repro.core.shuffler.ShuffleEngine` and the simulators.
    """
    if method not in PLAN_METHODS or method == "cached":
        raise ValueError(
            f"unknown planner {method!r}; choose from "
            f"{tuple(m for m in PLAN_METHODS if m != 'cached')}"
        )

    def _call(n_clients: int, n_bots: int, n_replicas: int) -> ShufflePlan:
        return plan(
            PlanRequest(
                n_clients=n_clients,
                n_bots=n_bots,
                n_replicas=n_replicas,
                method=method,
            ),
            instruments=instruments,
        )

    _call.__name__ = method
    return _call
