"""Multi-round shuffling engine (paper Sections IV & VI-A, counts level).

This module implements the defense's *control loop* over aggregate counts:
each round the coordination server plans group sizes for the clients still
under attack, clients (benign + bots) are matched uniformly at random to the
planned slots, replicas that received no bot save their clients, and the
rest — all bots plus the unlucky benign — go into the next round.

Working with counts instead of individual client objects is exact for this
model: the only randomness is *how many bots land on each replica*, which is
a multivariate hypergeometric draw over the planned group sizes.  The
full-fidelity, per-client discrete-event version of the same loop lives in
:mod:`repro.cloudsim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol

import numpy as np

from ..obs.instruments import Instruments, resolve_instruments
from .api import EstimateRequest, estimate
from .api import planner as _api_planner
from .estimator import BotEstimate
from .plan import ShufflePlan

__all__ = [
    "DEFAULT_SEED",
    "Planner",
    "PLANNERS",
    "RoundResult",
    "ShuffleState",
    "ShuffleEngine",
]

#: Seed for the engine's default generator.  Callers wanting independent
#: streams pass their own ``rng``; the default is deliberately *fixed* so
#: that an engine constructed without one is still bit-for-bit
#: reproducible (reprolint rule R1 bans entropy-seeded ``default_rng()``
#: in library code).
DEFAULT_SEED = 20140623  # DSN 2014 — the paper's venue, June 23 2014


class Planner(Protocol):
    """Anything that can produce a shuffle plan from ``(N, M, P)``."""

    def __call__(
        self, n_clients: int, n_bots: int, n_replicas: int
    ) -> ShufflePlan: ...


PLANNERS: dict[str, Planner] = {
    "greedy": _api_planner("greedy"),
    "even": _api_planner("even"),
    "dp_fast": _api_planner("dp_fast"),
}

ESTIMATORS = ("oracle", "mle", "moment", "weighted")


@dataclass(frozen=True)
class RoundResult:
    """Everything observable (and the hidden truth) about one shuffle."""

    round_index: int
    n_clients: int
    true_bots: int
    believed_bots: int
    plan: ShufflePlan
    bots_per_replica: tuple[int, ...]
    n_attacked: int
    benign_saved: int
    benign_remaining: int
    bots_remaining: int
    estimate: BotEstimate | None = None

    @property
    def attacked_fraction(self) -> float:
        """Share of shuffling replicas that came under attack."""
        return self.n_attacked / max(1, self.plan.n_replicas)


@dataclass
class ShuffleState:
    """Mutable population state carried across shuffles."""

    benign_active: int
    bots_active: int
    benign_saved: int = 0
    benign_initial: int = 0
    benign_total_seen: int = 0
    rounds: list[RoundResult] = field(default_factory=list)

    @property
    def n_active(self) -> int:
        return self.benign_active + self.bots_active

    @property
    def saved_fraction(self) -> float:
        """Saved share of the *initial* benign population.

        The paper's "save 80% of benign clients" counts against the benign
        population present when the attack started; late Poisson arrivals
        do not move the goalposts (but do count toward ``benign_saved``
        once rescued).
        """
        if self.benign_initial == 0:
            return 1.0
        return self.benign_saved / self.benign_initial

    @property
    def saved_fraction_total(self) -> float:
        """Saved share of all benign clients ever seen (arrivals included)."""
        if self.benign_total_seen == 0:
            return 1.0
        return self.benign_saved / self.benign_total_seen


class ShuffleEngine:
    """Drives repeated shuffles until a saving target or round cap is hit.

    Args:
        n_replicas: constant number of shuffling replicas ``P`` (the paper
            keeps ``P`` fixed by activating fresh replicas as others leave
            the shuffle set).
        planner: plan factory; one of :data:`PLANNERS` or any callable with
            the same signature.
        estimator: how the engine obtains the bot count fed to the planner:
            ``"oracle"`` uses the true count (the paper's simulation
            setting), ``"mle"`` the exact occupancy MLE, ``"moment"`` the
            closed-form moment estimator.  Both estimators observe only the
            previous round's attacked-replica count, exactly like the real
            coordination server.
        rng: numpy random generator (seeded by caller for independent
            streams; defaults to ``default_rng(DEFAULT_SEED)`` so even
            bare engines are reproducible).
        adaptive_growth: implement Section V's Theorem 1 response — when a
            round ends with *every* shuffling replica attacked (the regime
            where estimation degenerates and no client can be saved), grow
            the replica pool for subsequent rounds.  "The resource
            elasticity permitted by the underlying cloud infrastructure
            allows sufficient space for us to increase the number of
            replica servers."
        growth_multiplier: pool growth factor applied on saturation.
        max_replicas: optional cap on adaptive growth.
        instruments: optional :class:`repro.obs.Instruments` handle (the
            repo-wide ``instruments=`` convention — see CONTRIBUTING).
            ``None`` (the default) resolves to the process-wide default,
            normally disabled; when enabled, every :meth:`run_round`
            records a span tree (estimate → plan → shuffle) and updates
            the ``shuffle_*`` metric families.
    """

    def __init__(
        self,
        n_replicas: int,
        planner: Planner | str = "greedy",
        estimator: str = "oracle",
        rng: np.random.Generator | None = None,
        adaptive_growth: bool = False,
        growth_multiplier: float = 2.0,
        max_replicas: int | None = None,
        instruments: Instruments | None = None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError(f"n_replicas={n_replicas} must be >= 1")
        planner_name = planner if isinstance(planner, str) else getattr(
            planner, "__name__", "custom"
        )
        if isinstance(planner, str):
            try:
                planner = PLANNERS[planner]
            except KeyError:
                raise ValueError(
                    f"unknown planner {planner!r}; choose from "
                    f"{sorted(PLANNERS)}"
                ) from None
        if estimator not in ESTIMATORS:
            raise ValueError(
                f"unknown estimator {estimator!r}; choose from {ESTIMATORS}"
            )
        if growth_multiplier <= 1.0:
            raise ValueError(
                f"growth_multiplier={growth_multiplier} must exceed 1"
            )
        if max_replicas is not None and max_replicas < n_replicas:
            raise ValueError("max_replicas must be >= n_replicas")
        self.n_replicas = n_replicas
        self.planner = planner
        self.estimator = estimator
        self.rng = (
            rng if rng is not None else np.random.default_rng(DEFAULT_SEED)
        )
        self.adaptive_growth = adaptive_growth
        self.growth_multiplier = growth_multiplier
        self.max_replicas = max_replicas
        self.instruments = resolve_instruments(instruments)
        self.planner_name = planner_name
        self._belief: int | None = None

    def run_round(self, state: ShuffleState) -> RoundResult:
        """Execute one shuffle round, mutating ``state``."""
        obs = self.instruments
        if obs is None:
            return self._run_round_impl(state)
        with obs.spans.span(
            "shuffle_round", round=len(state.rounds)
        ) as span:
            result = self._run_round_impl(state)
            span.set(
                n_clients=result.n_clients,
                n_attacked=result.n_attacked,
                benign_saved=result.benign_saved,
            )
        obs.registry.counter(
            "shuffle_rounds_total",
            "Shuffle rounds executed by the counts-level engine.",
            ("planner", "estimator"),
        ).inc(planner=self.planner_name, estimator=self.estimator)
        obs.registry.counter(
            "shuffle_benign_saved_total",
            "Benign clients saved (landed on bot-free replicas).",
        ).inc(result.benign_saved)
        obs.registry.gauge(
            "shuffle_believed_bots",
            "Bot count handed to the planner this round.",
        ).set(result.believed_bots)
        obs.registry.histogram(
            "shuffle_attacked_fraction",
            "Share of shuffling replicas attacked per round.",
            buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0),
        ).observe(result.attacked_fraction)
        return result

    def _run_round_impl(self, state: ShuffleState) -> RoundResult:
        obs = self.instruments
        n_clients = state.n_active
        true_bots = state.bots_active
        believed = self._current_belief(state)
        if obs is None:
            plan = self.planner(n_clients, believed, self.n_replicas)
        else:
            with obs.spans.span("plan", believed_bots=believed):
                plan = self.planner(n_clients, believed, self.n_replicas)

        sizes = plan.sizes_array
        if obs is None:
            bots_per_replica = self._draw_bots(
                sizes, true_bots, n_clients
            )
        else:
            with obs.spans.span("shuffle"):
                bots_per_replica = self._draw_bots(
                    sizes, true_bots, n_clients
                )

        attacked = bots_per_replica > 0
        n_attacked = int(attacked.sum())
        # Bot-free replicas hold only benign clients — all of them are saved.
        benign_saved = int(sizes[~attacked].sum())
        state.benign_active -= benign_saved
        state.benign_saved += benign_saved

        if obs is None:
            estimate = self._observe(sizes, attacked, n_attacked)
        else:
            with obs.spans.span("estimate") as span:
                estimate = self._observe(sizes, attacked, n_attacked)
                if estimate is not None:
                    span.set(m_hat=estimate.m_hat)
        if (
            self.adaptive_growth
            and n_attacked == plan.n_replicas
            and plan.n_replicas > 0
        ):
            # Theorem 1 regime: every replica attacked, nothing saved,
            # estimation degenerate.  Grow the pool before the next round.
            grown = int(self.n_replicas * self.growth_multiplier)
            if self.max_replicas is not None:
                grown = min(grown, self.max_replicas)
            self.n_replicas = max(self.n_replicas, grown)
        result = RoundResult(
            round_index=len(state.rounds),
            n_clients=n_clients,
            true_bots=true_bots,
            believed_bots=believed,
            plan=plan,
            bots_per_replica=tuple(int(b) for b in bots_per_replica),
            n_attacked=n_attacked,
            benign_saved=benign_saved,
            benign_remaining=state.benign_active,
            bots_remaining=state.bots_active,
            estimate=estimate,
        )
        state.rounds.append(result)
        return result

    def _draw_bots(
        self,
        sizes: np.ndarray,
        true_bots: int,
        n_clients: int,
    ) -> np.ndarray:
        """Multivariate-hypergeometric bot placement over plan sizes."""
        if true_bots > 0 and n_clients > 0:
            drawn: np.ndarray = self.rng.multivariate_hypergeometric(
                sizes, true_bots
            )
            return drawn
        return np.zeros(sizes.size, dtype=np.int64)

    def run(
        self,
        benign: int,
        bots: int,
        target_fraction: float = 0.8,
        max_rounds: int = 10_000,
        arrivals: Callable[[int, np.random.Generator], tuple[int, int]]
        | None = None,
        target_basis: str = "initial",
    ) -> ShuffleState:
        """Shuffle until ``target_fraction`` of benign clients are saved.

        Args:
            benign: initial benign client population.
            bots: initial persistent-bot population.
            target_fraction: stop once this fraction of benign clients has
                been saved.
            max_rounds: hard cap to bound degenerate runs.
            arrivals: optional callable ``(round_index, rng) ->
                (new_benign, new_bots)`` applied *before* each round — the
                paper's Poisson arrival processes plug in here.
            target_basis: ``"initial"`` (paper semantics: fraction of the
                benign population present at attack start) or
                ``"total_seen"`` (fraction of all benign ever admitted,
                a strictly harder target under ongoing arrivals).
        """
        if not 0 <= target_fraction <= 1:
            raise ValueError("target_fraction must be within [0, 1]")
        if target_basis not in ("initial", "total_seen"):
            raise ValueError(
                f"target_basis={target_basis!r} must be 'initial' or "
                "'total_seen'"
            )
        state = ShuffleState(
            benign_active=benign,
            bots_active=bots,
            benign_initial=benign,
            benign_total_seen=benign,
        )
        self._belief = None
        for round_index in range(max_rounds):
            if arrivals is not None:
                new_benign, new_bots = arrivals(round_index, self.rng)
                state.benign_active += new_benign
                state.benign_total_seen += new_benign
                state.bots_active += new_bots
            fraction = (
                state.saved_fraction
                if target_basis == "initial"
                else state.saved_fraction_total
            )
            if fraction >= target_fraction:
                break
            if state.n_active == 0:
                break
            self.run_round(state)
        return state

    def _current_belief(self, state: ShuffleState) -> int:
        """Bot count handed to the planner this round."""
        n_clients = state.n_active
        if self.estimator == "oracle" or self._belief is None:
            # First round has no observation yet; the engine starts from
            # the truth (equivalently: operators seed the system with their
            # attack-detection estimate).
            return min(state.bots_active, n_clients)
        return max(0, min(self._belief, n_clients))

    def _observe(
        self, sizes: np.ndarray, attacked: np.ndarray, n_attacked: int
    ) -> BotEstimate | None:
        """Update the estimator belief from this round's outcome."""
        if self.estimator == "oracle":
            return None
        upper = int(sizes[attacked].sum())
        upper = max(upper, n_attacked)
        if self.estimator == "weighted":
            # Likelihood computed against the *actual* (non-uniform)
            # group sizes — see estimator._estimate_weighted.
            request = EstimateRequest(
                n_attacked=n_attacked,
                sizes=tuple(int(x) for x in sizes),
                n_clients=int(sizes.sum()),
                method="weighted",
            )
        else:
            request = EstimateRequest(
                n_attacked=n_attacked,
                n_replicas=int(sizes.size),
                upper_bound=upper,
                method=self.estimator,
            )
        result = estimate(request)
        self._belief = result.m_hat
        return result


def shuffle_trajectory(
    state: ShuffleState, basis: str = "initial"
) -> Iterator[tuple[int, int, float]]:
    """Yield ``(round_index, benign_saved_cumulative, saved_fraction)``.

    Convenience accessor for Figure 10-style cumulative curves.  ``basis``
    selects the denominator: the initial benign population (paper
    semantics) or every benign client ever seen.
    """
    denominator = (
        state.benign_initial if basis == "initial" else state.benign_total_seen
    )
    cumulative = 0
    for result in state.rounds:
        cumulative += result.benign_saved
        fraction = cumulative / max(1, denominator)
        yield result.round_index, cumulative, fraction
