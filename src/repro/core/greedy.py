"""The fast greedy shuffle planner (paper Section IV-C, from MOTAG).

Instead of solving the global Equation 1, the greedy algorithm optimizes one
replica at a time:

1. Enumerate all sizes ``x`` for a single replica and pick the one, ``ω``,
   that maximizes Equation 1 with ``P = 1`` — i.e. ``f(x) = x · p(x)``.
2. Assign groups of ``ω`` clients to as many replicas as possible, until
   clients or replicas run out.
3. If the leftover client count is smaller than ``ω``, restate the problem
   with the remaining clients and replicas ``(N', M', P')`` and recurse.
4. When only one replica is left, it receives all remaining clients — this
   replica is the de-facto quarantine bucket.

One refinement beyond the paper's prose is required to reproduce its own
Figure 3 (greedy and optimal DP overlapping *everywhere*): when replicas
are abundant — ``ω`` larger than the even share ``⌈N/P⌉`` — assigning full
``ω``-groups exhausts the clients early and leaves replicas idle, losing
up to half the achievable value.  Since ``f`` is concave below its peak
(``f''(x) < 0`` for ``x < ~2ω``), spreading clients evenly dominates in
that regime; each group is therefore capped at the current even share.
With the cap, greedy matches the static optimum to high precision across
the paper's whole Figure 3 grid, which is evidently what the authors'
implementation did.

Complexity ``O(N · M)`` time (the single-replica scan dominates), ``O(P)``
space, matching the paper's statement; with the vectorized scan in
:func:`repro.core.objective.single_replica_optimum` the practical runtime is
milliseconds even at ``N = 150,000``.
"""

from __future__ import annotations

import warnings

from .objective import expected_saved_sizes, single_replica_optimum
from .plan import ShufflePlan

__all__ = ["greedy_plan", "greedy_sizes"]


def greedy_sizes(n_clients: int, n_bots: int, n_replicas: int) -> list[int]:
    """Compute greedy group sizes ``x_1 .. x_P`` (may include zeros).

    Args:
        n_clients: total clients to shuffle (``N``), benign + bots.
        n_bots: (believed) persistent bot count ``M``, ``0 <= M <= N``.
        n_replicas: shuffling replica count ``P``, ``P >= 1``.

    Example::

        >>> greedy_sizes(10, 2, 3)
        [3, 3, 4]
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas={n_replicas} must be >= 1")
    if not 0 <= n_bots <= n_clients:
        raise ValueError(
            f"n_bots={n_bots} must be within [0, {n_clients}]"
        )

    # Step 1: the single-replica optimum ω on the full problem (N, M).
    omega, _ = single_replica_optimum(n_clients, n_bots)
    omega = max(omega, 1)

    sizes: list[int] = []
    remaining = n_clients
    replicas_left = n_replicas
    while replicas_left > 1:
        if remaining == 0:
            sizes.append(0)
            replicas_left -= 1
            continue
        # Step 2 with the even-share cap (module docstring): groups of ω
        # while clients are plentiful; once the remainder drops below
        # ω·(replicas left), the tail is spread evenly — which both
        # realizes the paper's "restate and recurse" step 3 and is optimal
        # in the concave region below ω.
        share = -(-remaining // replicas_left)  # ceil division
        group = min(omega, share)
        sizes.append(group)
        remaining -= group
        replicas_left -= 1
    # Step 4: the last replica takes everything left — the de-facto
    # quarantine bucket whenever bots force small clean groups.
    sizes.append(remaining)
    return sizes


def _greedy_plan(
    n_clients: int, n_bots: int, n_replicas: int
) -> ShufflePlan:
    """Run the greedy planner and wrap the result in a :class:`ShufflePlan`.

    Implementation behind ``method="greedy"`` of :func:`repro.core.api.
    plan`.  The plan's ``expected_saved`` is Equation 1 evaluated with the
    planner's belief ``n_bots`` against the *original* pool ``(N, M)`` —
    the quantity plotted on the Y axis of the paper's Figures 3 and 4.

    The ω-group construction can land a hair below a plain even split near
    the regime boundary (ω close to ``N/P``), so both candidates are scored
    with Equation 1 and the better one is returned — which keeps the
    planner dominating the Figure 4 baseline everywhere, as the paper's
    curves show, at negligible extra cost.
    """
    from .even import even_sizes

    sizes = greedy_sizes(n_clients, n_bots, n_replicas)
    value = expected_saved_sizes(sizes, n_clients, n_bots)
    even = even_sizes(n_clients, n_replicas)
    even_value = expected_saved_sizes(even, n_clients, n_bots)
    if even_value > value:
        sizes, value = even, even_value
    return ShufflePlan.from_sizes(
        sizes, n_bots, expected_saved=value, algorithm="greedy"
    )


def greedy_plan(n_clients: int, n_bots: int, n_replicas: int) -> ShufflePlan:
    """Deprecated: use :func:`repro.core.api.plan` with ``method="greedy"``."""
    warnings.warn(
        "repro.core.greedy_plan() is deprecated; use "
        "repro.core.api.plan(PlanRequest(..., method='greedy'))",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import PlanRequest, plan

    return plan(
        PlanRequest(
            n_clients=n_clients,
            n_bots=n_bots,
            n_replicas=n_replicas,
            method="greedy",
        )
    )
