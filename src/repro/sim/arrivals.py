"""Client and bot arrival processes (paper Section VI-A).

The paper's simulations assume "both benign clients and persistent bots
arrive in a Poisson process.  On average, the arrival rate of persistent
bots was 5000 per 3 shuffles while that of benign clients was 100 per 3
shuffles."  The bot population of a run is therefore *built up* over the
early shuffles until it reaches the scenario's target — which is what
produces Figure 10's signature shape (early shuffles save far more benign
clients, because fewer bots have shown up yet).

:class:`PoissonArrivals` is a stateful callable compatible with
:meth:`repro.core.shuffler.ShuffleEngine.run`'s ``arrivals`` hook.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["PoissonArrivals", "PAPER_BOT_RATE", "PAPER_BENIGN_RATE"]

# Paper Section VI-A rates, converted to per-shuffle means.
PAPER_BOT_RATE = 5000.0 / 3.0
PAPER_BENIGN_RATE = 100.0 / 3.0


@dataclass
class PoissonArrivals:
    """Poisson arrivals per shuffle, capped at per-run target populations.

    Attributes:
        benign_rate: mean benign arrivals per shuffle.
        bot_rate: mean persistent-bot arrivals per shuffle.
        benign_cap: total benign clients ever admitted (``None`` = initial
            population only arrives at time zero — see
            :meth:`with_initial_benign`).
        bot_cap: total persistent bots the botnet can commit; arrivals stop
            once this many bots have entered.
    """

    benign_rate: float = PAPER_BENIGN_RATE
    bot_rate: float = PAPER_BOT_RATE
    benign_cap: float = float("inf")
    bot_cap: float = float("inf")
    benign_arrived: int = field(default=0, init=False)
    bots_arrived: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.benign_rate < 0 or self.bot_rate < 0:
            raise ValueError("arrival rates must be non-negative")

    def __call__(
        self, round_index: int, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Draw this round's arrivals (benign, bots), honoring caps."""
        benign = self._draw(rng, self.benign_rate, self.benign_cap,
                            self.benign_arrived)
        self.benign_arrived += benign
        bots = self._draw(rng, self.bot_rate, self.bot_cap,
                          self.bots_arrived)
        self.bots_arrived += bots
        return benign, bots

    @staticmethod
    def _draw(
        rng: np.random.Generator, rate: float, cap: float, arrived: int
    ) -> int:
        if rate <= 0 or arrived >= cap:
            return 0
        draw = int(rng.poisson(rate))
        remaining = cap - arrived
        if math.isfinite(remaining):
            draw = min(draw, int(remaining))
        return draw

    def reset(self) -> None:
        """Clear cumulative arrival counters for a fresh run."""
        self.benign_arrived = 0
        self.bots_arrived = 0
