"""Monte-Carlo simulation harness for the paper's Section VI-A evaluation.

- :mod:`~repro.sim.arrivals` — Poisson arrival processes (bots 5000 per 3
  shuffles, benign 100 per 3 shuffles).
- :mod:`~repro.sim.shuffle_sim` — scenario definitions, repeated runs,
  per-run records.
- :mod:`~repro.sim.scenarios` — the exact parameter grids of Figures 8-10.
- :mod:`~repro.sim.stats` — mean / confidence-interval reporting.
- :mod:`~repro.sim.qos` — the shared per-window QoS record emitted by
  both the DES (:mod:`repro.cloudsim`) and the live service
  (:mod:`repro.service`).
"""

from __future__ import annotations

from .arrivals import PAPER_BENIGN_RATE, PAPER_BOT_RATE, PoissonArrivals
from .qos import QoSWindow, windows_from_dicts, windows_to_dicts
from .campaign import (
    AttackWave,
    CampaignConfig,
    CampaignResult,
    WaveOutcome,
    run_campaign,
    run_campaign_batch,
)
from .scenarios import (
    FIG8_BENIGN_COUNTS,
    FIG8_BOT_COUNTS,
    FIG9_REPLICA_COUNTS,
    fig8_scenarios,
    fig9_scenarios,
    fig10_scenarios,
    headline_scenario,
)
from .shuffle_sim import (
    RunRecord,
    ScenarioResult,
    ShuffleScenario,
    cumulative_saved_curve,
    run_scenario,
    run_scenario_once,
)
from .stats import SampleSummary, confidence_interval, summarize

__all__ = [
    "AttackWave",
    "CampaignConfig",
    "CampaignResult",
    "FIG8_BENIGN_COUNTS",
    "FIG8_BOT_COUNTS",
    "FIG9_REPLICA_COUNTS",
    "PAPER_BENIGN_RATE",
    "PAPER_BOT_RATE",
    "PoissonArrivals",
    "QoSWindow",
    "RunRecord",
    "SampleSummary",
    "ScenarioResult",
    "ShuffleScenario",
    "WaveOutcome",
    "confidence_interval",
    "cumulative_saved_curve",
    "fig10_scenarios",
    "fig8_scenarios",
    "fig9_scenarios",
    "headline_scenario",
    "run_campaign",
    "run_campaign_batch",
    "run_scenario",
    "run_scenario_once",
    "summarize",
    "windows_from_dicts",
    "windows_to_dicts",
]
