"""Canned paper scenarios (Section VI-A / Figures 8-10, headline claim).

Each factory returns the :class:`~repro.sim.shuffle_sim.ShuffleScenario`
grid corresponding to one paper figure, so experiment drivers, benchmarks
and tests all share a single source of truth for the parameters.
"""

from __future__ import annotations

from .shuffle_sim import ShuffleScenario

__all__ = [
    "FIG8_BOT_COUNTS",
    "FIG8_BENIGN_COUNTS",
    "FIG9_REPLICA_COUNTS",
    "fig8_scenarios",
    "fig9_scenarios",
    "fig10_scenarios",
    "headline_scenario",
]

# Figure 8 x-axis: persistent bots 1..10 x 10^4.
FIG8_BOT_COUNTS: tuple[int, ...] = tuple(
    10_000 * k for k in range(1, 11)
)
# Both benign populations the paper sweeps.
FIG8_BENIGN_COUNTS: tuple[int, ...] = (10_000, 50_000)
# Figure 9 x-axis: shuffling replicas 9..20 x 10^2.
FIG9_REPLICA_COUNTS: tuple[int, ...] = tuple(
    100 * k for k in range(9, 21)
)


def fig8_scenarios(
    bot_counts: tuple[int, ...] = FIG8_BOT_COUNTS,
    benign_counts: tuple[int, ...] = FIG8_BENIGN_COUNTS,
    targets: tuple[float, ...] = (0.8, 0.95),
) -> list[ShuffleScenario]:
    """Grid for Figure 8: P=1000 replicas, varying bots / benign / target."""
    return [
        ShuffleScenario(
            benign=benign,
            bots=bots,
            n_replicas=1000,
            target_fraction=target,
        )
        for benign in benign_counts
        for target in targets
        for bots in bot_counts
    ]


def fig9_scenarios(
    replica_counts: tuple[int, ...] = FIG9_REPLICA_COUNTS,
    benign_counts: tuple[int, ...] = FIG8_BENIGN_COUNTS,
    targets: tuple[float, ...] = (0.8, 0.95),
) -> list[ShuffleScenario]:
    """Grid for Figure 9: 10^5 bots, varying replica count."""
    return [
        ShuffleScenario(
            benign=benign,
            bots=100_000,
            n_replicas=replicas,
            target_fraction=target,
        )
        for benign in benign_counts
        for target in targets
        for replicas in replica_counts
    ]


def fig10_scenarios(
    benign_counts: tuple[int, ...] = FIG8_BENIGN_COUNTS,
) -> list[ShuffleScenario]:
    """Figure 10: cumulative saving trajectory, 10^5 bots, P=1000.

    The runs continue to a 95% target so the full cumulative curve up to
    the paper's last plotted point is available.
    """
    return [
        ShuffleScenario(
            benign=benign,
            bots=100_000,
            n_replicas=1000,
            target_fraction=0.95,
        )
        for benign in benign_counts
    ]


def headline_scenario() -> ShuffleScenario:
    """The abstract's headline claim: save 80% of 50K benign clients from a
    100K-bot attack with 1000 shuffling replicas in roughly 60 shuffles."""
    return ShuffleScenario(
        benign=50_000,
        bots=100_000,
        n_replicas=1000,
        target_fraction=0.8,
    )
