"""Generic scenario sweeps with CSV export.

The figure drivers hand-roll their grids; this utility generalizes the
pattern for users exploring their own parameter spaces:

    from repro.sim import ShuffleScenario
    from repro.sim.sweep import sweep, to_csv

    grid = [
        ShuffleScenario(benign=10_000, bots=bots, n_replicas=p)
        for bots in (20_000, 50_000)
        for p in (500, 1_000)
    ]
    records = sweep(grid, repetitions=5, workers=4)
    print(to_csv(records))

Each record is a flat dict (scenario parameters + outcome statistics), so
the output drops straight into a spreadsheet or pandas.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from ..obs.instruments import Instruments, resolve_instruments
from .backend import get_backend
from .shuffle_sim import ScenarioResult, ShuffleScenario, run_scenario

__all__ = ["sweep", "record_from_result", "to_csv"]


def record_from_result(result: ScenarioResult) -> dict[str, object]:
    """Flatten one scenario outcome into a spreadsheet row."""
    scenario = result.scenario
    return {
        "benign": scenario.benign,
        "bots": scenario.bots,
        "n_replicas": scenario.n_replicas,
        "target_fraction": scenario.target_fraction,
        "planner": scenario.planner,
        "estimator": scenario.estimator,
        "preload_bots": scenario.preload_bots,
        "repetitions": result.shuffles.n,
        "shuffles_mean": result.shuffles.mean,
        "shuffles_ci": result.shuffles.half_width,
        "saved_fraction_mean": result.saved_fraction.mean,
        "saved_fraction_ci": result.saved_fraction.half_width,
        "all_reached_target": all(
            run.reached_target for run in result.runs
        ),
    }


def sweep(
    scenarios: Sequence[ShuffleScenario],
    repetitions: int = 5,
    seed: int = 0,
    confidence: float = 0.99,
    *,
    workers: int = 1,
    cache_dir: Path | str | None = None,
    progress: Callable[..., Any] | None = None,
    instruments: Instruments | None = None,
) -> list[dict[str, object]]:
    """Run every scenario and return one flat record per scenario.

    Record-level reproducibility contract: cell ``i`` always draws from
    the stream of ``SeedSequence(seed).spawn(len(scenarios))[i]``
    (equivalently ``SeedSequence(seed, spawn_key=(i,))``), so

    - records depend only on ``(seed, index, scenario, repetitions,
      confidence)`` — never on worker count, completion order, or which
      cells were served from cache;
    - a cell can be recomputed in isolation by rebuilding that child
      sequence;
    - distinct base seeds yield statistically independent grids (the
      previous ``seed + index`` derivation let ``sweep(grid, seed=0)``
      cell 1 reuse the stream of ``sweep(grid, seed=1)`` cell 0).

    Args:
        scenarios: the grid, one record per entry (grid order).
        repetitions: runs per cell.
        seed: base seed for the per-cell spawn derivation above.
        confidence: confidence level for the summary intervals.
        workers: parallel worker processes (needs :mod:`repro.runtime`,
            wired automatically by ``import repro``).
        cache_dir: content-addressed result cache directory; completed
            cells checkpoint there and interrupted sweeps resume from it.
        progress: per-cell completion callback, forwarded to
            :func:`repro.runtime.executor.run_tasks`.
        instruments: optional :class:`repro.obs.Instruments`; when
            enabled (or a process default is installed) each completed
            cell increments ``sim_sweep_cells_total`` and runs inside a
            ``sweep_cell`` span.  ``None`` with no default = zero cost.
    """
    backend = get_backend("sweep")
    if backend is not None:
        return list(
            backend(
                scenarios,
                repetitions=repetitions,
                seed=seed,
                confidence=confidence,
                workers=workers,
                cache_dir=cache_dir,
                progress=progress,
            )
        )
    if workers != 1 or cache_dir is not None or progress is not None:
        raise RuntimeError(
            "parallel/cached sweeps need the repro.runtime backend; "
            "`import repro` registers it"
        )
    obs = resolve_instruments(instruments)
    children = np.random.SeedSequence(seed).spawn(len(scenarios))
    records = []
    for index, (scenario, child) in enumerate(zip(scenarios, children)):
        if obs is None:
            result = run_scenario(
                scenario,
                repetitions=repetitions,
                seed=child,
                confidence=confidence,
            )
        else:
            with obs.spans.span(
                "sweep_cell", index=index, planner=scenario.planner
            ):
                result = run_scenario(
                    scenario,
                    repetitions=repetitions,
                    seed=child,
                    confidence=confidence,
                )
            obs.registry.counter(
                "sim_sweep_cells_total",
                "Completed sweep grid cells.",
                ("planner", "estimator"),
            ).inc(
                planner=scenario.planner, estimator=scenario.estimator
            )
        records.append(record_from_result(result))
    return records


def to_csv(records: Sequence[dict[str, object]]) -> str:
    """Render sweep records as CSV (header from the first record)."""
    if not records:
        return ""
    import csv

    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(records[0].keys()))
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    return buffer.getvalue()
