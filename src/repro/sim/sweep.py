"""Generic scenario sweeps with CSV export.

The figure drivers hand-roll their grids; this utility generalizes the
pattern for users exploring their own parameter spaces:

    from repro.sim import ShuffleScenario
    from repro.sim.sweep import sweep, to_csv

    grid = [
        ShuffleScenario(benign=10_000, bots=bots, n_replicas=p)
        for bots in (20_000, 50_000)
        for p in (500, 1_000)
    ]
    records = sweep(grid, repetitions=5)
    print(to_csv(records))

Each record is a flat dict (scenario parameters + outcome statistics), so
the output drops straight into a spreadsheet or pandas.
"""

from __future__ import annotations

import io
from typing import Sequence

from .shuffle_sim import ScenarioResult, ShuffleScenario, run_scenario

__all__ = ["sweep", "record_from_result", "to_csv"]


def record_from_result(result: ScenarioResult) -> dict[str, object]:
    """Flatten one scenario outcome into a spreadsheet row."""
    scenario = result.scenario
    return {
        "benign": scenario.benign,
        "bots": scenario.bots,
        "n_replicas": scenario.n_replicas,
        "target_fraction": scenario.target_fraction,
        "planner": scenario.planner,
        "estimator": scenario.estimator,
        "preload_bots": scenario.preload_bots,
        "repetitions": result.shuffles.n,
        "shuffles_mean": result.shuffles.mean,
        "shuffles_ci": result.shuffles.half_width,
        "saved_fraction_mean": result.saved_fraction.mean,
        "saved_fraction_ci": result.saved_fraction.half_width,
        "all_reached_target": all(
            run.reached_target for run in result.runs
        ),
    }


def sweep(
    scenarios: Sequence[ShuffleScenario],
    repetitions: int = 5,
    seed: int = 0,
    confidence: float = 0.99,
) -> list[dict[str, object]]:
    """Run every scenario and return one flat record per scenario.

    Scenarios are seeded independently but deterministically (base seed +
    index), so the sweep is reproducible and individual cells can be
    re-run in isolation.
    """
    records = []
    for index, scenario in enumerate(scenarios):
        result = run_scenario(
            scenario,
            repetitions=repetitions,
            seed=seed + index,
            confidence=confidence,
        )
        records.append(record_from_result(result))
    return records


def to_csv(records: Sequence[dict[str, object]]) -> str:
    """Render sweep records as CSV (header from the first record)."""
    if not records:
        return ""
    import csv

    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(records[0].keys()))
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    return buffer.getvalue()
