"""Attack campaigns: repeated waves over a long operating horizon.

The paper argues the defense is *reactive*: "triggered only when an attack
is detected, incurring minimum maintenance costs under normal conditions"
(Section II-A), scaling up for mitigation and back down afterwards
(Section VII).  Single-scenario runs cannot show that; this module
simulates an operating day — alternating quiet periods and attack waves of
varying botnet sizes — and accounts for both outcomes (benign clients
saved per wave) and resources (replica-hours consumed, vs. what an
always-on provisioned defense would burn).

The model works at the same counts level as
:mod:`repro.sim.shuffle_sim`: each wave is one multi-round shuffle run;
between waves the defense holds only its baseline replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from ..core.shuffler import ShuffleEngine
from ..obs.instruments import Instruments, resolve_instruments
from .backend import get_backend
from .stats import SampleSummary, summarize

__all__ = ["AttackWave", "CampaignConfig", "WaveOutcome", "CampaignResult",
           "run_campaign", "run_campaign_batch"]


@dataclass(frozen=True)
class AttackWave:
    """One attack in the campaign timeline."""

    start_hour: float
    bots: int
    benign: int
    target_fraction: float = 0.8


@dataclass(frozen=True)
class CampaignConfig:
    """A full operating-horizon scenario.

    Attributes:
        waves: the attack timeline (sorted by ``start_hour``).
        horizon_hours: total span accounted for.
        baseline_replicas: replicas kept alive when idle (the paper's
            "small number of static servers").
        shuffle_replicas: pool size ``P`` during mitigation.
        shuffle_seconds: wall-clock cost of one shuffle (boot + migrate;
            Figure 12 scale).
    """

    waves: Sequence[AttackWave]
    horizon_hours: float = 24.0
    baseline_replicas: int = 4
    shuffle_replicas: int = 1_000
    shuffle_seconds: float = 30.0

    def __post_init__(self) -> None:
        hours = [wave.start_hour for wave in self.waves]
        if list(hours) != sorted(hours):
            raise ValueError("waves must be sorted by start_hour")
        if hours and hours[-1] > self.horizon_hours:
            raise ValueError("wave starts beyond the horizon")


@dataclass(frozen=True)
class WaveOutcome:
    """Result of mitigating one wave."""

    wave: AttackWave
    shuffles: int
    saved_fraction: float
    mitigation_hours: float


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate outcome of the whole campaign."""

    outcomes: tuple[WaveOutcome, ...]
    replica_hours_reactive: float
    replica_hours_always_on: float

    @property
    def total_shuffles(self) -> int:
        return sum(outcome.shuffles for outcome in self.outcomes)

    @property
    def reactive_saving(self) -> float:
        """Fraction of the always-on replica-hours the reactive defense
        avoids — the paper's "minimum maintenance costs" claim."""
        if self.replica_hours_always_on == 0:
            return 0.0
        return 1.0 - (
            self.replica_hours_reactive / self.replica_hours_always_on
        )

    def summarize_saved(self, confidence: float = 0.95) -> SampleSummary:
        return summarize(
            [outcome.saved_fraction for outcome in self.outcomes],
            confidence=confidence,
        )


def run_campaign(
    config: CampaignConfig,
    seed: int | np.random.SeedSequence = 0,
    planner: str = "greedy",
    estimator: str = "oracle",
    *,
    instruments: Instruments | None = None,
) -> CampaignResult:
    """Simulate every wave and account for replica-hours.

    The reactive defense pays ``baseline`` replicas for the whole horizon
    plus ``2 * shuffle_replicas`` (pool + in-flight replacements) during
    each mitigation window; the always-on comparison keeps the full
    mitigation fleet up around the clock.  ``seed`` may be a ready-made
    :class:`~numpy.random.SeedSequence` (e.g. a spawned batch child).
    """
    rng_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    obs = resolve_instruments(instruments)
    outcomes = []
    mitigation_hours_total = 0.0
    for wave, child in zip(config.waves, rng_seq.spawn(len(config.waves))):
        engine = ShuffleEngine(
            n_replicas=config.shuffle_replicas,
            planner=planner,
            estimator=estimator,
            rng=np.random.default_rng(child),
        )
        state = engine.run(
            benign=wave.benign,
            bots=wave.bots,
            target_fraction=wave.target_fraction,
            max_rounds=5_000,
        )
        mitigation_hours = (
            len(state.rounds) * config.shuffle_seconds / 3600.0
        )
        mitigation_hours_total += mitigation_hours
        if obs is not None:
            obs.registry.counter(
                "sim_campaign_waves_total",
                "Attack waves simulated across campaigns.",
            ).inc()
            obs.registry.histogram(
                "sim_campaign_wave_shuffles",
                "Shuffle rounds needed to absorb one attack wave.",
                buckets=(1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0),
            ).observe(float(len(state.rounds)))
        outcomes.append(
            WaveOutcome(
                wave=wave,
                shuffles=len(state.rounds),
                saved_fraction=state.saved_fraction,
                mitigation_hours=mitigation_hours,
            )
        )
    reactive = (
        config.baseline_replicas * config.horizon_hours
        + 2 * config.shuffle_replicas * mitigation_hours_total
    )
    always_on = (
        config.baseline_replicas + 2 * config.shuffle_replicas
    ) * config.horizon_hours
    return CampaignResult(
        outcomes=tuple(outcomes),
        replica_hours_reactive=reactive,
        replica_hours_always_on=always_on,
    )


def run_campaign_batch(
    configs: Sequence[CampaignConfig],
    seed: int = 0,
    planner: str = "greedy",
    estimator: str = "oracle",
    *,
    workers: int = 1,
    cache_dir: Path | str | None = None,
    progress: Callable[..., Any] | None = None,
) -> list[CampaignResult]:
    """Run several campaign configs; one result per config, in order.

    Campaign ``i`` always draws from the stream of
    ``SeedSequence(seed).spawn(len(configs))[i]``, so results depend
    only on ``(seed, index, config)`` — never on worker count or
    completion order.  ``workers`` and ``cache_dir`` route through the
    :mod:`repro.runtime` backend (wired by ``import repro``), which
    checkpoints completed campaigns and resumes interrupted batches.
    """
    backend = get_backend("campaign_batch")
    if backend is not None:
        return list(
            backend(
                configs,
                seed=seed,
                planner=planner,
                estimator=estimator,
                workers=workers,
                cache_dir=cache_dir,
                progress=progress,
            )
        )
    if workers != 1 or cache_dir is not None or progress is not None:
        raise RuntimeError(
            "parallel/cached campaign batches need the repro.runtime "
            "backend; `import repro` registers it"
        )
    children = np.random.SeedSequence(seed).spawn(len(configs))
    return [
        run_campaign(config, seed=child, planner=planner,
                     estimator=estimator)
        for config, child in zip(configs, children)
    ]
