"""Repeated-run Monte-Carlo harness for the shuffling simulations.

This module reproduces the *methodology* of paper Section VI-A: a scenario
(benign population, bot population, replica count, arrival processes) is
run repeatedly with independent seeds; the quantities the paper plots —
shuffles to reach a saving target (Figures 8 & 9) and the cumulative saved
trajectory (Figure 10) — are summarized with means and confidence
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.shuffler import ShuffleEngine, ShuffleState
from .arrivals import PAPER_BENIGN_RATE, PAPER_BOT_RATE, PoissonArrivals
from .stats import SampleSummary, summarize

__all__ = [
    "ShuffleScenario",
    "RunRecord",
    "ScenarioResult",
    "run_scenario_once",
    "run_scenario",
    "cumulative_saved_curve",
]


@dataclass(frozen=True)
class ShuffleScenario:
    """A fully specified Section VI-A simulation setting.

    Attributes:
        benign: benign clients present when the attack begins.
        bots: target persistent-bot population.  Bots trickle in via the
            Poisson arrival process (rate ``bot_rate``) until this many
            have joined, matching the paper's build-up dynamics; set
            ``preload_bots=True`` to start with all bots present instead.
        n_replicas: constant shuffling replica count ``P``.
        target_fraction: stop once this share of all benign clients seen
            has been saved (0.8 / 0.95 in the paper).
        planner: planner name from :data:`repro.core.shuffler.PLANNERS`.
        estimator: ``"oracle"`` (paper's simulation assumption), ``"mle"``
            or ``"moment"``.
        benign_rate / bot_rate: Poisson arrival means per shuffle.
        preload_bots: start the run with all ``bots`` active (no build-up).
        max_rounds: safety cap on shuffle count.
    """

    benign: int
    bots: int
    n_replicas: int
    target_fraction: float = 0.8
    planner: str = "greedy"
    estimator: str = "oracle"
    benign_rate: float = PAPER_BENIGN_RATE
    bot_rate: float = PAPER_BOT_RATE
    preload_bots: bool = False
    max_rounds: int = 2_000

    def describe(self) -> str:
        return (
            f"benign={self.benign} bots={self.bots} P={self.n_replicas} "
            f"target={self.target_fraction:.0%} planner={self.planner} "
            f"estimator={self.estimator}"
        )


@dataclass(frozen=True)
class RunRecord:
    """Outcome of one simulated run."""

    n_shuffles: int
    benign_saved: int
    benign_initial: int
    benign_total: int
    reached_target: bool
    saved_per_round: tuple[int, ...]

    @property
    def saved_fraction(self) -> float:
        """Saved share of the initial benign population (paper basis)."""
        return self.benign_saved / max(1, self.benign_initial)

    @property
    def saved_fraction_total(self) -> float:
        """Saved share of all benign clients ever seen."""
        return self.benign_saved / max(1, self.benign_total)


@dataclass(frozen=True)
class ScenarioResult:
    """Aggregate of repeated runs of one scenario."""

    scenario: ShuffleScenario
    runs: tuple[RunRecord, ...]
    shuffles: SampleSummary
    saved_fraction: SampleSummary

    @property
    def mean_shuffles(self) -> float:
        return self.shuffles.mean


def run_scenario_once(
    scenario: ShuffleScenario, rng: np.random.Generator
) -> RunRecord:
    """Execute a single run of ``scenario`` with the given generator."""
    engine = ShuffleEngine(
        n_replicas=scenario.n_replicas,
        planner=scenario.planner,
        estimator=scenario.estimator,
        rng=rng,
    )
    if scenario.preload_bots:
        initial_bots = scenario.bots
        arrivals = PoissonArrivals(
            benign_rate=scenario.benign_rate,
            bot_rate=0.0,
            bot_cap=0,
        )
    else:
        initial_bots = 0
        arrivals = PoissonArrivals(
            benign_rate=scenario.benign_rate,
            bot_rate=scenario.bot_rate,
            bot_cap=scenario.bots,
        )
    state = engine.run(
        benign=scenario.benign,
        bots=initial_bots,
        target_fraction=scenario.target_fraction,
        max_rounds=scenario.max_rounds,
        arrivals=arrivals,
    )
    return _record_from_state(state, scenario)


def _record_from_state(
    state: ShuffleState, scenario: ShuffleScenario
) -> RunRecord:
    return RunRecord(
        n_shuffles=len(state.rounds),
        benign_saved=state.benign_saved,
        benign_initial=state.benign_initial,
        benign_total=state.benign_total_seen,
        reached_target=state.saved_fraction >= scenario.target_fraction,
        saved_per_round=tuple(r.benign_saved for r in state.rounds),
    )


def run_scenario(
    scenario: ShuffleScenario,
    repetitions: int = 30,
    seed: int | np.random.SeedSequence = 0,
    confidence: float = 0.99,
) -> ScenarioResult:
    """Run a scenario ``repetitions`` times (paper default: 30, 99% CI).

    ``seed`` may be a ready-made :class:`~numpy.random.SeedSequence`
    (e.g. a spawned child from a sweep) — an int is wrapped in one.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions={repetitions} must be >= 1")
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    runs = []
    for child in seed_seq.spawn(repetitions):
        runs.append(run_scenario_once(scenario, np.random.default_rng(child)))
    shuffles = summarize(
        [run.n_shuffles for run in runs], confidence=confidence
    )
    saved = summarize(
        [run.saved_fraction for run in runs], confidence=confidence
    )
    return ScenarioResult(
        scenario=scenario,
        runs=tuple(runs),
        shuffles=shuffles,
        saved_fraction=saved,
    )


def cumulative_saved_curve(
    result: ScenarioResult, fractions: Sequence[float]
) -> list[SampleSummary]:
    """Shuffles needed to reach each saved fraction (Figure 10's axes).

    For each requested fraction, every run contributes the first shuffle
    index at which its cumulative saved share reached that fraction; runs
    that never reached it contribute their total shuffle count (a lower
    bound, flagged by the run's ``reached_target``).
    """
    summaries = []
    for fraction in fractions:
        counts = []
        for run in result.runs:
            threshold = fraction * run.benign_initial
            cumulative = 0
            reached_at = run.n_shuffles
            for index, saved in enumerate(run.saved_per_round, start=1):
                cumulative += saved
                if cumulative >= threshold:
                    reached_at = index
                    break
            counts.append(reached_at)
        summaries.append(summarize(counts, confidence=0.99))
    return summaries
