"""Statistics helpers for repeated simulation runs.

The paper reports every simulated data point as a mean over repeated runs
(30 for the shuffling simulations, 40 for the MLE evaluation, 15 for the
prototype) with 95% or 99% confidence intervals.  This module reproduces
that reporting convention with Student-t intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["SampleSummary", "summarize", "confidence_interval"]


@dataclass(frozen=True)
class SampleSummary:
    """Mean and confidence half-width of a repeated-measurement sample.

    Attributes:
        mean: sample mean.
        half_width: confidence-interval half width around the mean (0 for a
            single observation).
        n: number of observations.
        confidence: confidence level the half width corresponds to.
        std: sample standard deviation (ddof=1; 0 for a single observation).
    """

    mean: float
    half_width: float
    n: int
    confidence: float
    std: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def format(self, precision: int = 2) -> str:
        """Render as ``mean ± half_width`` for experiment tables."""
        return f"{self.mean:.{precision}f} ± {self.half_width:.{precision}f}"


def summarize(
    values: Iterable[float] | Sequence[float] | np.ndarray,
    confidence: float = 0.99,
) -> SampleSummary:
    """Summarize repeated measurements with a Student-t interval.

    Args:
        values: the repeated observations (at least one).
        confidence: two-sided confidence level, e.g. 0.99 for the paper's
            simulation figures and 0.95 for the prototype figure.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence={confidence} must be in (0, 1)")
    mean = float(arr.mean())
    if arr.size == 1:
        return SampleSummary(
            mean=mean, half_width=0.0, n=1, confidence=confidence, std=0.0
        )
    std = float(arr.std(ddof=1))
    half = confidence_interval(std, arr.size, confidence)
    return SampleSummary(
        mean=mean,
        half_width=half,
        n=int(arr.size),
        confidence=confidence,
        std=std,
    )


def confidence_interval(std: float, n: int, confidence: float) -> float:
    """Student-t half width for a sample of ``n`` with deviation ``std``."""
    if n < 2:
        return 0.0
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return t_crit * std / math.sqrt(n)
