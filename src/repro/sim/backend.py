"""Execution-backend registry: how sim gains parallelism without
importing the runtime layer.

The layering contract (reprolint P1) points ``runtime`` at ``sim``,
never the reverse — yet :func:`repro.sim.sweep.sweep` and
:func:`repro.sim.campaign.run_campaign_batch` offer ``workers=`` fan-out
that only the runtime can provide.  This module is the seam: the runtime
registers callables here when it is imported (``import repro`` wires it
automatically), and the sim entry points look them up by name at call
time.  When no backend is registered the sim entry points fall back to
their own serial loops, so ``repro.sim`` remains importable and fully
functional standalone.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["available_backends", "get_backend", "register_backend"]

_BACKENDS: dict[str, Callable[..., Any]] = {}


def register_backend(name: str, fn: Callable[..., Any]) -> None:
    """Register (or replace) the execution backend for ``name``."""
    _BACKENDS[name] = fn


def get_backend(name: str) -> Callable[..., Any] | None:
    """The registered backend for ``name``, or None (serial fallback)."""
    return _BACKENDS.get(name)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (for diagnostics)."""
    return tuple(sorted(_BACKENDS))
