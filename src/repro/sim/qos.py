"""Shared QoS window schema — one comparison format for sim and live.

The paper's success criterion is "restoring quality of service for
benign-but-affected clients", measured as a time series of per-window
benign outcomes.  Two very different harnesses produce that series:

- :mod:`repro.cloudsim.metrics` — the discrete-event simulation, where
  ``time`` is the DES clock;
- :mod:`repro.service` — the live asyncio defense service, where
  ``time`` is wall-clock seconds since the run started.

Both emit :class:`QoSWindow` records with identical fields and
semantics, so a live load-generator run can be laid over a cloudsim
Figure 8-style curve sample-for-sample (see ``docs/live-vs-sim.md``).

Latency accounting contract: ``latency_sum``/``latency_count`` cover
every *completed* request with a measured duration — successful or
failed.  A request that was throttled or dropped after reaching the
server still cost its client real time; folding those into the mean
(rather than silently dropping them, as an ok-only denominator would)
is what makes the latency series honest during an attack, exactly when
it matters.  Requests that never completed (no response observed) carry
no measurement and stay out of both fields.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Mapping, Sequence

__all__ = ["QoSWindow", "windows_to_dicts", "windows_from_dicts"]


@dataclass(frozen=True)
class QoSWindow:
    """Aggregated benign QoS over one sampling window.

    Attributes:
        time: end of the window — DES clock (cloudsim) or wall-clock
            seconds since run start (service).
        benign_sent: benign requests issued in the window.
        benign_ok: benign requests that succeeded.
        latency_sum: total measured latency (seconds) of *completed*
            requests, successful or failed (see module docstring).
        latency_count: number of completed requests with a measured
            latency.
        attacked_replicas: replicas flagged as under attack when the
            window closed.
        active_replicas: replicas serving traffic when the window
            closed.
        shuffles_completed: cumulative shuffle operations finished by
            the end of the window.
    """

    time: float
    benign_sent: int
    benign_ok: int
    latency_sum: float
    latency_count: int
    attacked_replicas: int
    active_replicas: int
    shuffles_completed: int

    @property
    def success_ratio(self) -> float:
        if self.benign_sent == 0:
            return 1.0
        return self.benign_ok / self.benign_sent

    @property
    def mean_latency(self) -> float:
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count

    def to_dict(self) -> dict[str, float | int]:
        """JSON-ready row, derived ratios included for convenience."""
        row: dict[str, float | int] = dict(asdict(self))
        row["success_ratio"] = self.success_ratio
        row["mean_latency"] = self.mean_latency
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, float | int]) -> "QoSWindow":
        """Inverse of :meth:`to_dict` (derived fields are ignored)."""
        return cls(
            time=float(row["time"]),
            benign_sent=int(row["benign_sent"]),
            benign_ok=int(row["benign_ok"]),
            latency_sum=float(row["latency_sum"]),
            latency_count=int(row["latency_count"]),
            attacked_replicas=int(row["attacked_replicas"]),
            active_replicas=int(row["active_replicas"]),
            shuffles_completed=int(row["shuffles_completed"]),
        )


def windows_to_dicts(
    samples: Sequence[QoSWindow],
) -> list[dict[str, float | int]]:
    """Serialize a QoS series for JSON export."""
    return [sample.to_dict() for sample in samples]


def windows_from_dicts(
    rows: Iterable[Mapping[str, float | int]],
) -> list[QoSWindow]:
    """Parse a QoS series exported by :func:`windows_to_dicts`."""
    return [QoSWindow.from_dict(row) for row in rows]
