"""The trust manager: profiles + ladder + persistence + counters.

One :class:`TrustManager` serves a whole deployment (live pool or
simulated cloud).  It is clock-agnostic — every entry point takes an
explicit ``now`` (wall-clock in the service, sim-time in cloudsim) —
and enforcement-agnostic: backends ask :meth:`admit_decision` and map
the answer onto their own wire verdicts.

Hot-path discipline: the admission decision is a dict lookup plus two
array reads; the transition counter is bound once at construction, so
instrumented request handling never touches the metric registry.
"""

from __future__ import annotations

import numpy as np

from ..obs.instruments import Instruments
from ..obs.metrics import Counter
from .config import TrustConfig
from .profile import ClientProfile, ProfileTable
from .storage import StorageBackend
from .tiers import TIER_NAMES, TrustTier, tier_for_score

__all__ = ["TrustManager", "PROFILE_NAMESPACE"]

#: storage namespace that profile rows persist under.
PROFILE_NAMESPACE = "profiles"


class TrustManager:
    """Per-client trust state machine with optional persistence.

    Args:
        config: trust tunables (see :class:`TrustConfig`).
        storage: optional :class:`StorageBackend`; when given,
            :meth:`persist` writes rows touched since the last call
            and :meth:`restore` reloads them on restart.
        instruments: optional :class:`repro.obs.Instruments`; tier
            transitions land in ``trust_tier_transitions_total``.
    """

    def __init__(
        self,
        config: TrustConfig | None = None,
        storage: StorageBackend | None = None,
        instruments: Instruments | None = None,
    ) -> None:
        self.config = config or TrustConfig()
        self.storage = storage
        self.instruments = instruments
        self.table = ProfileTable(self.config)
        self._dirty: set[str] = set()
        self._transitions: Counter | None = (
            None
            if instruments is None
            else instruments.registry.counter(
                "trust_tier_transitions_total",
                "Tier-ladder transitions by destination tier.",
                ("tier",),
            )
        )

    # ------------------------------------------------------------------
    # enforcement
    # ------------------------------------------------------------------
    def admit_decision(self, client_id: str) -> str:
        """``"ok"`` | ``"throttle"`` | ``"deny"`` for one request.

        Unknown clients pass (their profile starts at the first
        observation).  THROTTLED-tier clients pass one request in
        :attr:`TrustConfig.throttle_every` — deterministic in the
        client's own request count, no randomness.
        """
        tier = self.table.tier_of(client_id)
        if tier is None or tier >= TrustTier.WATCH:
            return "ok"
        if tier is TrustTier.DENIED:
            return "deny"
        if (
            self.table.requests_of(client_id)
            % self.config.throttle_every
            == 0
        ):
            return "ok"
        return "throttle"

    def observe(
        self, client_id: str, now: float, violation: bool = False
    ) -> TrustTier:
        """Fold one request outcome into the client's profile."""
        before = self.table.tier_of(client_id)
        tier = self.table.observe(client_id, now, violation=violation)
        self._dirty.add(client_id)
        if tier is not before and self._transitions is not None:
            self._transitions.inc(tier=tier.name)
        return tier

    def observe_batch(
        self,
        now: float,
        client_ids: list[str],
        violations: list[bool] | np.ndarray,
    ) -> None:
        """Fold a batch of simultaneous request outcomes."""
        self.table.observe_batch(now, client_ids, violations)
        self._dirty.update(client_ids)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def tier(self, client_id: str) -> TrustTier | None:
        return self.table.tier_of(client_id)

    def profile(self, client_id: str) -> ClientProfile | None:
        return self.table.profile(client_id)

    def __len__(self) -> int:
        return len(self.table)

    def low_trust_mass(self, client_ids: list[str]) -> float:
        """Expected bot count among ``client_ids`` under the trust
        model: each client contributes ``1 - trust`` (unknown clients
        contribute ``1 - initial_trust``).  Feeds the estimator prior
        (:func:`repro.trust.prior.bot_count_log_prior`)."""
        initial = self.config.initial_trust
        mass = 0.0
        for client_id in client_ids:
            trust = self.table.trust_of(client_id)
            mass += 1.0 - (initial if trust is None else trust)
        return mass

    def tier_counts(
        self, client_ids: list[str] | None = None
    ) -> dict[str, int]:
        """Clients per tier name (whole table, or a subset — e.g. one
        replica's whitelist).  Unknown clients count as WATCH-alike
        under their initial score's tier."""
        counts = dict.fromkeys(TIER_NAMES, 0)
        initial_tier = tier_for_score(
            self.config.initial_trust, self.config
        )
        ids = (
            self.table.client_ids if client_ids is None else client_ids
        )
        for client_id in ids:
            tier = self.table.tier_of(client_id)
            counts[(initial_tier if tier is None else tier).name] += 1
        return counts

    def mean_trust(self, client_ids: list[str] | None = None) -> float:
        ids = (
            self.table.client_ids if client_ids is None else client_ids
        )
        if not ids:
            return 1.0
        initial = self.config.initial_trust
        total = 0.0
        for client_id in ids:
            trust = self.table.trust_of(client_id)
            total += initial if trust is None else trust
        return total / len(ids)

    def snapshot(self) -> dict[str, object]:
        """JSON-ready summary for telemetry dumps."""
        return {
            "population": len(self.table),
            "tiers": self.tier_counts(),
            "mean_trust": round(self.mean_trust(), 6),
        }

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @property
    def dirty(self) -> bool:
        """True when rows changed since the last :meth:`persist`."""
        return bool(self._dirty)

    def persist(self) -> int:
        """Write rows touched since the last call; returns the count."""
        if self.storage is None or not self._dirty:
            return 0
        batch = [
            (client_id, self.table.to_row(client_id))
            for client_id in sorted(self._dirty)
        ]
        self.storage.put_many(PROFILE_NAMESPACE, batch)
        self._dirty.clear()
        return len(batch)

    def restore(self) -> int:
        """Reload every persisted profile; returns the count."""
        if self.storage is None:
            return 0
        rows = self.storage.items(PROFILE_NAMESPACE)
        for client_id, data in rows:
            self.table.load_row(client_id, data)
        return len(rows)
