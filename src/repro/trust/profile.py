"""Per-client profiles: rate EMA/variance, violations, trust score.

Struct-of-arrays storage (one numpy column per field, clients as rows)
so the batch update is one vectorized kernel — and the scalar update
is the *same* kernel on a one-row view, so the two paths cannot drift
apart numerically (the equivalence is pinned by tests and measured by
``benchmarks/bench_trust.py``).

Update math, applied per observation batch at injected time ``now``
(``dt`` = time since the client's previous observation):

- **rate**: instantaneous rate ``k / max(dt, rate_floor)`` folded into
  an exponentially-weighted mean/variance with time-decay weight
  ``alpha = 1 - exp(-dt / rate_tau)`` — irregular observation spacing
  handled exactly, no fixed tick required.
- **healing**: trust relaxes toward 1 with the same exponential form,
  ``s += (1 - exp(-dt / heal_tau_i)) * (1 - s)``, where
  ``heal_tau_i`` carries the client's seeded jitter.
- **penalty**: a violation is *counted* only when the client's own
  rate EMA exceeds ``violation_rate`` (bystanders on a flooded replica
  keep their score) and at most once per ``penalty_cooldown`` seconds;
  each counted violation multiplies trust by
  ``1 - violation_penalty``.
- **tier**: demotion to the score's bare-floor tier is immediate;
  promotion climbs one rung per update, requires
  ``score >= floor + hysteresis`` and ``promotion_dwell`` seconds at
  the current tier.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from .config import TrustConfig
from .tiers import TrustTier, tier_for_score

__all__ = ["ClientProfile", "ProfileTable"]

#: persisted row schema (column name -> numpy dtype); ``tier`` stores
#: the :class:`TrustTier` integer value.
_COLUMNS: tuple[tuple[str, type], ...] = (
    ("trust", np.float64),
    ("rate_ema", np.float64),
    ("rate_var", np.float64),
    ("last_seen", np.float64),
    ("last_penalty", np.float64),
    ("tier_since", np.float64),
    ("heal_tau", np.float64),
    ("violations", np.int64),
    ("requests", np.int64),
    ("tier", np.int64),
)


def _client_jitter_u(client_id: str, seed: int) -> float:
    """Deterministic uniform draw in [-1, 1] for one client.

    The stream is keyed by ``(seed, blake2b(client_id))`` — a proper
    :class:`numpy.random.SeedSequence` spawn, so the draw is
    reproducible across processes and ``PYTHONHASHSEED`` values and
    independent of client arrival order.
    """
    digest = int.from_bytes(
        hashlib.blake2b(
            client_id.encode("utf-8"), digest_size=8
        ).digest(),
        "little",
    )
    rng = np.random.default_rng(np.random.SeedSequence([seed, digest]))
    return float(rng.uniform(-1.0, 1.0))


@dataclass(frozen=True)
class ClientProfile:
    """Read-only view of one client's row (JSON-ready via ``to_dict``)."""

    client_id: str
    trust: float
    rate_ema: float
    rate_var: float
    violations: int
    requests: int
    tier: TrustTier
    last_seen: float

    def to_dict(self) -> dict[str, object]:
        return {
            "client_id": self.client_id,
            "trust": self.trust,
            "rate_ema": self.rate_ema,
            "rate_var": self.rate_var,
            "violations": self.violations,
            "requests": self.requests,
            "tier": self.tier.name,
            "last_seen": self.last_seen,
        }


class ProfileTable:
    """All client profiles, columns as growable numpy arrays."""

    def __init__(self, config: TrustConfig) -> None:
        self.config = config
        self._index: dict[str, int] = {}
        self._ids: list[str] = []
        capacity = 64
        self._cols: dict[str, np.ndarray] = {
            name: np.zeros(capacity, dtype=dtype)
            for name, dtype in _COLUMNS
        }

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, client_id: str) -> bool:
        return client_id in self._index

    @property
    def client_ids(self) -> list[str]:
        """Known clients in admission order."""
        return list(self._ids)

    # ------------------------------------------------------------------
    # rows
    # ------------------------------------------------------------------
    def _grow(self, needed: int) -> None:
        capacity = self._cols["trust"].shape[0]
        if needed <= capacity:
            return
        new = max(needed, capacity * 2)
        for name, dtype in _COLUMNS:
            grown = np.zeros(new, dtype=dtype)
            grown[:capacity] = self._cols[name]
            self._cols[name] = grown

    def ensure(self, client_id: str, now: float) -> int:
        """Row index for a client, creating a fresh profile on first
        sight (initial trust, jittered heal time constant)."""
        row = self._index.get(client_id)
        if row is not None:
            return row
        row = len(self._ids)
        self._grow(row + 1)
        self._index[client_id] = row
        self._ids.append(client_id)
        cfg = self.config
        jitter = 1.0 + cfg.heal_jitter * _client_jitter_u(
            client_id, cfg.seed
        )
        cols = self._cols
        cols["trust"][row] = cfg.initial_trust
        cols["rate_ema"][row] = 0.0
        cols["rate_var"][row] = 0.0
        cols["last_seen"][row] = now
        cols["last_penalty"][row] = -np.inf
        cols["tier_since"][row] = now
        cols["heal_tau"][row] = cfg.heal_tau * jitter
        cols["violations"][row] = 0
        cols["requests"][row] = 0
        cols["tier"][row] = int(
            tier_for_score(cfg.initial_trust, cfg)
        )
        return row

    # ------------------------------------------------------------------
    # updates (one kernel; scalar path = batch of one)
    # ------------------------------------------------------------------
    def observe(
        self, client_id: str, now: float, violation: bool = False
    ) -> TrustTier:
        """Fold one request into a client's profile; returns the
        (possibly changed) tier."""
        row = self.ensure(client_id, now)
        rows = np.array([row], dtype=np.intp)
        k = np.ones(1, dtype=np.float64)
        v = np.array([1.0 if violation else 0.0])
        self._update(rows, k, v, now)
        return TrustTier(int(self._cols["tier"][row]))

    def observe_batch(
        self,
        now: float,
        client_ids: list[str],
        violations: list[bool] | np.ndarray,
    ) -> np.ndarray:
        """Fold a batch of requests (one entry per request; repeated
        clients are aggregated).  Returns the updated row indices."""
        counts: dict[int, list[float]] = {}
        for client_id, violated in zip(client_ids, violations):
            row = self.ensure(client_id, now)
            entry = counts.setdefault(row, [0.0, 0.0])
            entry[0] += 1.0
            if violated:
                entry[1] += 1.0
        rows = np.array(sorted(counts), dtype=np.intp)
        k = np.array([counts[r][0] for r in rows], dtype=np.float64)
        v = np.array([counts[r][1] for r in rows], dtype=np.float64)
        if rows.size:
            self._update(rows, k, v, now)
        return rows

    def _update(
        self,
        rows: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        now: float,
    ) -> None:
        cfg = self.config
        cols = self._cols
        dt = np.maximum(now - cols["last_seen"][rows], 0.0)

        # Rate EMA/variance with time-decay weighting.
        inst = k / np.maximum(dt, cfg.rate_floor)
        alpha = -np.expm1(-dt / cfg.rate_tau)
        delta = inst - cols["rate_ema"][rows]
        cols["rate_ema"][rows] += alpha * delta
        cols["rate_var"][rows] = (1.0 - alpha) * (
            cols["rate_var"][rows] + alpha * delta * delta
        )

        # Healing toward full trust, then the (gated) penalty.
        trust = cols["trust"][rows]
        heal = -np.expm1(-dt / cols["heal_tau"][rows])
        trust = trust + heal * (1.0 - trust)
        counted = (
            (v > 0.0)
            & (cols["rate_ema"][rows] > cfg.violation_rate)
            & (now - cols["last_penalty"][rows] >= cfg.penalty_cooldown)
        )
        trust = np.where(
            counted, trust * (1.0 - cfg.violation_penalty), trust
        )
        cols["trust"][rows] = np.clip(trust, 0.0, 1.0)
        cols["last_penalty"][rows] = np.where(
            counted, now, cols["last_penalty"][rows]
        )
        cols["violations"][rows] += v.astype(np.int64)
        cols["requests"][rows] += k.astype(np.int64)
        cols["last_seen"][rows] = now

        # Tier ladder: immediate demotion, graduated gated promotion.
        score = cols["trust"][rows]
        current = cols["tier"][rows]
        base = np.select(
            [
                score >= cfg.trusted_floor,
                score >= cfg.watch_floor,
                score >= cfg.throttled_floor,
            ],
            [
                int(TrustTier.TRUSTED),
                int(TrustTier.WATCH),
                int(TrustTier.THROTTLED),
            ],
            default=int(TrustTier.DENIED),
        )
        margin = score - cfg.hysteresis
        promotable = np.select(
            [
                margin >= cfg.trusted_floor,
                margin >= cfg.watch_floor,
                margin >= cfg.throttled_floor,
            ],
            [
                int(TrustTier.TRUSTED),
                int(TrustTier.WATCH),
                int(TrustTier.THROTTLED),
            ],
            default=int(TrustTier.DENIED),
        )
        dwelled = now - cols["tier_since"][rows] >= cfg.promotion_dwell
        new = np.where(
            base < current,
            base,
            np.where(
                (promotable > current) & dwelled,
                np.minimum(promotable, current + 1),
                current,
            ),
        )
        changed = new != current
        cols["tier"][rows] = new
        cols["tier_since"][rows] = np.where(
            changed, now, cols["tier_since"][rows]
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def trust_of(self, client_id: str) -> float | None:
        row = self._index.get(client_id)
        return None if row is None else float(self._cols["trust"][row])

    def tier_of(self, client_id: str) -> TrustTier | None:
        row = self._index.get(client_id)
        return (
            None if row is None else TrustTier(int(self._cols["tier"][row]))
        )

    def requests_of(self, client_id: str) -> int:
        row = self._index.get(client_id)
        return 0 if row is None else int(self._cols["requests"][row])

    def profile(self, client_id: str) -> ClientProfile | None:
        row = self._index.get(client_id)
        if row is None:
            return None
        cols = self._cols
        return ClientProfile(
            client_id=client_id,
            trust=float(cols["trust"][row]),
            rate_ema=float(cols["rate_ema"][row]),
            rate_var=float(cols["rate_var"][row]),
            violations=int(cols["violations"][row]),
            requests=int(cols["requests"][row]),
            tier=TrustTier(int(cols["tier"][row])),
            last_seen=float(cols["last_seen"][row]),
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_row(self, client_id: str) -> dict[str, object]:
        """JSON-ready persistence row (full state, not the view)."""
        row = self._index[client_id]
        cols = self._cols
        out: dict[str, object] = {}
        for name, dtype in _COLUMNS:
            value = cols[name][row]
            if name == "last_penalty" and not np.isfinite(value):
                out[name] = None  # -inf sentinel: never penalised
            elif dtype is np.float64:
                out[name] = float(value)
            else:
                out[name] = int(value)
        return out

    def load_row(self, client_id: str, data: dict) -> None:
        """Restore one persisted row, overwriting any fresh defaults."""
        row = self.ensure(client_id, float(data.get("last_seen", 0.0)))
        cols = self._cols
        for name, dtype in _COLUMNS:
            if name not in data:
                continue
            value = data[name]
            if name == "last_penalty" and value is None:
                cols[name][row] = -np.inf
            elif dtype is np.float64:
                cols[name][row] = float(value)
            else:
                cols[name][row] = int(value)
