"""Trust-weighted prior over the attack scale (log-space).

Zhou et al. (1903.10102) show shuffling decisions improve when
per-client suspicion feeds the planner.  Here the bridge is the
attack-scale estimate: the trust table's *low-trust mass* over the
clients of the attacked replicas — ``sum(1 - trust)`` — is an expected
bot count under the trust model, and this module shapes it into a
log-prior the occupancy estimators of :mod:`repro.core.estimator`
add to their log-likelihoods.

The prior is Laplace-shaped around the expected count and constructed
directly in the log domain (no ``log(exp(...))`` round trip), with a
scale proportional to the expectation itself so its pull is relative:
being off by 5 bots matters at ``expected=5``, not at
``expected=500``.  ``strength=0`` yields the zero array — a no-op
prior, and the estimator call sites pass ``None`` instead so the
disabled path stays bit-identical to the historical one.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bot_count_log_prior"]


def bot_count_log_prior(
    upper: int, expected: float, strength: float = 1.0
) -> np.ndarray:
    """Log-prior ``log p(m)`` (unnormalised) for ``m in [0, upper]``.

    Args:
        upper: largest bot count the estimator will consider; the
            returned array has ``upper + 1`` entries.
        expected: expected bot count (e.g. low-trust mass of the
            clients on attacked replicas); clipped into ``[0, upper]``.
        strength: prior weight; 0 gives a flat (all-zero) log-prior.

    Returns:
        ``-strength * |m - expected| / max(1, expected)`` — already in
        log space, so estimator call sites simply add it to their
        log-likelihoods (normalisation cancels in the argmax).
    """
    if upper < 0:
        raise ValueError(f"upper={upper} must be >= 0")
    if strength < 0:
        raise ValueError(f"strength={strength} must be >= 0")
    center = min(max(float(expected), 0.0), float(upper))
    m = np.arange(upper + 1, dtype=np.float64)
    scale = max(1.0, center)
    return (-strength / scale) * np.abs(m - center)
