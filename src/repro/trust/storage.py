"""Pluggable persistence for coordinator state (bindings, profiles, belief).

The paper's coordination server keeps every client binding and every
belief in process memory: kill the process and the defense re-learns
the attack from scratch.  This module puts a minimal key-value
contract — :class:`StorageBackend` — behind that state so the service
coordinator can be killed mid-scenario, restarted against the same
backend, and resume the detect→estimate→plan→shuffle loop where it
left off.

Three implementations, selected by a ``--state-backend`` spec string:

- ``memory`` — process-local dict; the pre-existing (and default)
  behaviour.  Nothing survives the process.
- ``sqlite:PATH`` — stdlib :mod:`sqlite3`, WAL journal, one ``kv``
  table keyed ``(namespace, key)``.  Every :meth:`~StorageBackend.
  put_many` batch commits, so a SIGKILL loses at most the batch in
  flight.
- ``file:PATH`` — a single JSON document rewritten atomically
  (``tmp`` + :func:`os.replace`), the same crash-safe idiom as
  :mod:`repro.runtime.cache`.  A SIGKILL leaves either the old or the
  new document, never a torn one.

Values are JSON documents (``dict``).  All three backends round-trip
values through JSON so in-memory behaviour cannot silently diverge
from the persistent backends (e.g. tuples come back as lists
everywhere, not just after a restart).
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
from typing import Iterable

__all__ = [
    "JsonFileBackend",
    "MemoryBackend",
    "SqliteBackend",
    "StorageBackend",
    "make_backend",
]


class StorageBackend(abc.ABC):
    """Namespaced JSON key-value store behind the coordinator's state.

    Namespaces in use: ``bindings`` (client -> replica), ``profiles``
    (client -> trust-profile row), ``state`` (singleton belief
    document under key ``belief``).
    """

    @abc.abstractmethod
    def put(self, namespace: str, key: str, value: dict) -> None:
        """Store one JSON document under ``(namespace, key)``."""

    @abc.abstractmethod
    def get(self, namespace: str, key: str) -> dict | None:
        """The stored document, or ``None`` when absent."""

    @abc.abstractmethod
    def delete(self, namespace: str, key: str) -> None:
        """Remove one entry (absent keys are a no-op)."""

    @abc.abstractmethod
    def items(self, namespace: str) -> list[tuple[str, dict]]:
        """Every ``(key, document)`` in a namespace, sorted by key."""

    @abc.abstractmethod
    def flush(self) -> None:
        """Make every prior write durable (no-op where writes are)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Flush and release resources; further calls are undefined."""

    def put_many(
        self, namespace: str, entries: Iterable[tuple[str, dict]]
    ) -> None:
        """Store a batch (overridden where batching is cheaper)."""
        for key, value in entries:
            self.put(namespace, key, value)

    @property
    def persistent(self) -> bool:
        """True when state survives the process."""
        return True


class MemoryBackend(StorageBackend):
    """Process-local store: the default, nothing survives a restart."""

    def __init__(self) -> None:
        self._data: dict[str, dict[str, str]] = {}

    def put(self, namespace: str, key: str, value: dict) -> None:
        self._data.setdefault(namespace, {})[key] = json.dumps(
            value, sort_keys=True
        )

    def get(self, namespace: str, key: str) -> dict | None:
        raw = self._data.get(namespace, {}).get(key)
        return None if raw is None else json.loads(raw)

    def delete(self, namespace: str, key: str) -> None:
        self._data.get(namespace, {}).pop(key, None)

    def items(self, namespace: str) -> list[tuple[str, dict]]:
        bucket = self._data.get(namespace, {})
        return [(key, json.loads(bucket[key])) for key in sorted(bucket)]

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    @property
    def persistent(self) -> bool:
        return False


class SqliteBackend(StorageBackend):
    """Stdlib sqlite3 store: one WAL-journaled ``kv`` table.

    Durability point: :meth:`put_many` commits per batch (the
    coordinator writes one batch per detection sweep), so a SIGKILL
    loses at most the sweep in flight.  The file may be opened
    read-only by another process (e.g. a test polling for progress)
    while the coordinator holds it.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS kv ("
            "namespace TEXT NOT NULL, key TEXT NOT NULL, "
            "value TEXT NOT NULL, PRIMARY KEY (namespace, key))"
        )
        self._conn.commit()

    def put(self, namespace: str, key: str, value: dict) -> None:
        self._conn.execute(
            "INSERT INTO kv (namespace, key, value) VALUES (?, ?, ?) "
            "ON CONFLICT (namespace, key) DO UPDATE SET value=excluded.value",
            (namespace, key, json.dumps(value, sort_keys=True)),
        )
        self._conn.commit()

    def put_many(
        self, namespace: str, entries: Iterable[tuple[str, dict]]
    ) -> None:
        self._conn.executemany(
            "INSERT INTO kv (namespace, key, value) VALUES (?, ?, ?) "
            "ON CONFLICT (namespace, key) DO UPDATE SET value=excluded.value",
            [
                (namespace, key, json.dumps(value, sort_keys=True))
                for key, value in entries
            ],
        )
        self._conn.commit()

    def get(self, namespace: str, key: str) -> dict | None:
        row = self._conn.execute(
            "SELECT value FROM kv WHERE namespace=? AND key=?",
            (namespace, key),
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def delete(self, namespace: str, key: str) -> None:
        self._conn.execute(
            "DELETE FROM kv WHERE namespace=? AND key=?", (namespace, key)
        )
        self._conn.commit()

    def items(self, namespace: str) -> list[tuple[str, dict]]:
        rows = self._conn.execute(
            "SELECT key, value FROM kv WHERE namespace=? ORDER BY key",
            (namespace,),
        ).fetchall()
        return [(key, json.loads(value)) for key, value in rows]

    def flush(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()


class JsonFileBackend(StorageBackend):
    """One JSON document, rewritten atomically on every flush.

    Writes mutate an in-memory copy; :meth:`flush` (called by
    :meth:`put_many` and :meth:`close`) serialises the whole document
    to ``PATH.tmp`` and :func:`os.replace`-renames it over ``PATH``,
    so readers and crash recovery always see a complete document.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._data: dict[str, dict[str, dict]] = {}
        self._dirty = False
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                self._data = json.load(handle)

    def put(self, namespace: str, key: str, value: dict) -> None:
        self._data.setdefault(namespace, {})[key] = json.loads(
            json.dumps(value)
        )
        self._dirty = True

    def put_many(
        self, namespace: str, entries: Iterable[tuple[str, dict]]
    ) -> None:
        super().put_many(namespace, entries)
        self.flush()

    def get(self, namespace: str, key: str) -> dict | None:
        value = self._data.get(namespace, {}).get(key)
        return None if value is None else json.loads(json.dumps(value))

    def delete(self, namespace: str, key: str) -> None:
        bucket = self._data.get(namespace, {})
        if key in bucket:
            del bucket[key]
            self._dirty = True

    def items(self, namespace: str) -> list[tuple[str, dict]]:
        bucket = self._data.get(namespace, {})
        return [
            (key, json.loads(json.dumps(bucket[key])))
            for key in sorted(bucket)
        ]

    def flush(self) -> None:
        if not self._dirty:
            return
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self._data, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)
        self._dirty = False

    def close(self) -> None:
        self.flush()


def make_backend(spec: str) -> StorageBackend:
    """Build a backend from a ``--state-backend`` spec string.

    ``"memory"`` | ``"sqlite:PATH"`` | ``"file:PATH"``.
    """
    if spec == "memory":
        return MemoryBackend()
    kind, _, path = spec.partition(":")
    if not path:
        raise ValueError(
            f"state backend spec {spec!r} needs a path "
            "(memory | sqlite:PATH | file:PATH)"
        )
    if kind == "sqlite":
        return SqliteBackend(path)
    if kind == "file":
        return JsonFileBackend(path)
    raise ValueError(
        f"unknown state backend {kind!r} "
        "(memory | sqlite:PATH | file:PATH)"
    )
