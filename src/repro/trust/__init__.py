"""Adaptive per-client trust: profiles, graduated tiers, persistence.

The paper treats clients as binary — whitelisted or denied — and every
binding and belief dies with the coordinator process.  This package
adds the graceful middle ground (Mirage-style reputation, Mittal et
al.) and the durability the restart/failover path needs:

- :mod:`~repro.trust.config` — :class:`TrustConfig` tunables.
- :mod:`~repro.trust.profile` — per-client rate EMA/variance,
  violation history, and a trust score in [0, 1]; one vectorized
  update kernel shared by the scalar and batch paths.
- :mod:`~repro.trust.tiers` — the TRUSTED→WATCH→THROTTLED→DENIED
  ladder with hysteresis and graduated promotion.
- :mod:`~repro.trust.manager` — :class:`TrustManager`, the
  clock-agnostic facade backends consult per request.
- :mod:`~repro.trust.prior` — the low-trust-mass log-prior fed to the
  attack-scale estimators.
- :mod:`~repro.trust.storage` — the :class:`StorageBackend` contract
  (memory / sqlite / atomic JSON file) behind bindings + profiles +
  belief, enabling kill-and-restart recovery.

Layering: stdlib + numpy + :mod:`repro.obs` only (contract P1), so
the live service and the simulators can both embed it.  The layer
never reads a clock — callers inject ``now`` (wall-clock in service,
sim-time in cloudsim; reprolint P2/P4 apply).
"""

from __future__ import annotations

from .config import TrustConfig
from .manager import PROFILE_NAMESPACE, TrustManager
from .prior import bot_count_log_prior
from .profile import ClientProfile, ProfileTable
from .storage import (
    JsonFileBackend,
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
    make_backend,
)
from .tiers import TIER_NAMES, TrustTier, tier_for_score

__all__ = [
    "ClientProfile",
    "JsonFileBackend",
    "MemoryBackend",
    "PROFILE_NAMESPACE",
    "ProfileTable",
    "SqliteBackend",
    "StorageBackend",
    "TIER_NAMES",
    "TrustConfig",
    "TrustManager",
    "TrustTier",
    "bot_count_log_prior",
    "make_backend",
    "tier_for_score",
]
