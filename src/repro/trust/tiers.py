"""The graduated trust ladder: TRUSTED → WATCH → THROTTLED → DENIED.

Mirage-style graceful degradation (Mittal et al.) instead of the
paper's binary whitelist: a client's tier follows its trust score
through floors with hysteresis.  Demotion is immediate (an attacker
should not enjoy a grace period), promotion climbs one rung at a time
and only after a dwell period, and requires the score to clear the
target floor by the hysteresis margin — a score oscillating around a
floor settles into the lower tier instead of flapping.
"""

from __future__ import annotations

import enum

from .config import TrustConfig

__all__ = ["TrustTier", "tier_for_score", "TIER_NAMES"]


class TrustTier(enum.IntEnum):
    """Admission tiers, ordered least to most trusted.

    Enforcement (service backend and cloudsim replica alike):
    TRUSTED and WATCH pass straight to the token bucket; THROTTLED
    passes one request in :attr:`TrustConfig.throttle_every` and
    answers the rest with the THROTTLED wire verdict; DENIED is
    refused outright (DENY), spending neither tokens nor compute.
    """

    DENIED = 0
    THROTTLED = 1
    WATCH = 2
    TRUSTED = 3


#: stable render order for tables and counters (most trusted first).
TIER_NAMES: tuple[str, ...] = tuple(
    tier.name for tier in sorted(TrustTier, reverse=True)
)


def tier_for_score(score: float, config: TrustConfig) -> TrustTier:
    """The tier a score maps to with *no* hysteresis or dwell.

    Used for a client's very first classification; subsequent moves go
    through the ladder logic in :mod:`repro.trust.profile`.
    """
    if score >= config.trusted_floor:
        return TrustTier.TRUSTED
    if score >= config.watch_floor:
        return TrustTier.WATCH
    if score >= config.throttled_floor:
        return TrustTier.THROTTLED
    return TrustTier.DENIED
