"""Tunables of the per-client trust model.

One frozen dataclass shared by the live service and the cloud
simulator, mirroring how :class:`repro.service.config.ServiceConfig`
and :class:`repro.cloudsim.system.CloudConfig` parallel each other.
Time constants are in the *caller's* clock units (wall-clock seconds
in the service, sim-seconds in cloudsim): the trust layer never reads
a clock itself, every update takes an explicit ``now``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TrustConfig"]


@dataclass(frozen=True)
class TrustConfig:
    """Parameters of profiles, the tier ladder, and the estimator prior.

    Attributes:
        rate_tau: time constant of the request-rate EMA (seconds).
        rate_floor: smallest inter-observation gap used when computing
            an instantaneous rate (guards the division on bursts).
        heal_tau: time constant of trust recovery toward 1.0 — a quiet
            client's score heals as ``1 - (1-s)·exp(-dt/heal_tau)``.
        heal_jitter: ± fractional jitter applied to each client's
            ``heal_tau``, drawn once per client from a generator seeded
            by ``(seed, digest(client_id))`` — deterministic and
            ``PYTHONHASHSEED``-independent.  Desynchronises tier
            promotions so a cohort demoted together does not retry in
            lockstep.
        violation_penalty: multiplicative trust hit per counted
            violation: ``s *= (1 - violation_penalty)``.
        violation_rate: request-rate EMA (req/s) a client must exceed
            before its violations are *counted* — a 2 req/s benign
            client throttled on a flooded replica is a bystander, not
            a cause, and keeps its score.
        penalty_cooldown: at most one counted violation per client per
            this many seconds, so the penalty tracks sustained
            misbehaviour rather than raw request volume.
        initial_trust: score assigned to a never-seen client.
        trusted_floor: minimum score for the TRUSTED tier.
        watch_floor: minimum score for the WATCH tier.
        throttled_floor: minimum score for the THROTTLED tier (below
            it: DENIED).
        hysteresis: extra score above a tier's floor required to be
            *promoted* into it (demotion uses the bare floor), so a
            score hovering at a boundary cannot flap.
        promotion_dwell: seconds a client must hold its current tier
            before the next promotion; promotions climb one rung at a
            time (graduated recovery), demotions are immediate.
        throttle_every: in the THROTTLED tier, one request in this
            many passes through to the replica's token bucket; the
            rest get the THROTTLED wire verdict without spending
            bucket tokens.
        prior_strength: weight of the trust-derived log-prior handed
            to the attack-scale estimators (0 disables the prior).
        seed: base seed for the per-client heal jitter.
    """

    rate_tau: float = 5.0
    rate_floor: float = 1e-3
    heal_tau: float = 30.0
    heal_jitter: float = 0.1
    violation_penalty: float = 0.25
    violation_rate: float = 20.0
    penalty_cooldown: float = 0.5
    initial_trust: float = 0.6
    trusted_floor: float = 0.75
    watch_floor: float = 0.45
    throttled_floor: float = 0.12
    hysteresis: float = 0.08
    promotion_dwell: float = 2.0
    throttle_every: int = 2
    prior_strength: float = 1.0
    seed: int = 2014

    def __post_init__(self) -> None:
        if self.rate_tau <= 0 or self.heal_tau <= 0:
            raise ValueError("rate_tau and heal_tau must be > 0")
        if self.rate_floor <= 0:
            raise ValueError("rate_floor must be > 0")
        if not 0.0 <= self.heal_jitter < 1.0:
            raise ValueError("heal_jitter must be within [0, 1)")
        if not 0.0 < self.violation_penalty < 1.0:
            raise ValueError("violation_penalty must be within (0, 1)")
        if self.violation_rate < 0:
            raise ValueError("violation_rate must be >= 0")
        if self.penalty_cooldown < 0:
            raise ValueError("penalty_cooldown must be >= 0")
        if not 0.0 <= self.initial_trust <= 1.0:
            raise ValueError("initial_trust must be within [0, 1]")
        if not (
            0.0
            < self.throttled_floor
            < self.watch_floor
            < self.trusted_floor
            < 1.0
        ):
            raise ValueError(
                "tier floors must satisfy "
                "0 < throttled < watch < trusted < 1"
            )
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be >= 0")
        if self.promotion_dwell < 0:
            raise ValueError("promotion_dwell must be >= 0")
        if self.throttle_every < 1:
            raise ValueError("throttle_every must be >= 1")
        if self.prior_strength < 0:
            raise ValueError("prior_strength must be >= 0")
